//! Two-phase primal simplex with bounded variables.
//!
//! The solver keeps a dense tableau `T = B⁻¹A` together with an explicit
//! value vector; variables may be non-basic at their lower *or* upper bound,
//! so variable bounds never become rows. Entering variables are priced with
//! Dantzig's rule, falling back to Bland's rule after a run of degenerate
//! iterations (guaranteeing termination).

use crate::error::MilpError;
use crate::expr::Var;
use crate::problem::{Cmp, Objective, Problem};

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal(LpSolution),
    /// No point satisfies constraints and bounds.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

/// An optimal LP vertex in the original variable space.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    values: Vec<f64>,
    objective: f64,
}

impl LpSolution {
    /// Assembles a solution from extracted values (used by the LP
    /// backends; `objective` must already include the constant term).
    pub(crate) fn from_parts(values: Vec<f64>, objective: f64) -> LpSolution {
        LpSolution { values, objective }
    }

    /// Value of a variable at the optimum.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by variable index.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value in the problem's own direction (constant included).
    pub fn objective(&self) -> f64 {
        self.objective
    }
}

/// LP solver configuration.
#[derive(Debug, Clone)]
pub struct Simplex {
    /// Maximum pivots per phase before reporting numerical trouble.
    pub max_iterations: usize,
    /// Feasibility / optimality tolerance.
    pub tol: f64,
    /// Degenerate-iteration run length that triggers Bland's rule.
    pub bland_trigger: usize,
}

impl Default for Simplex {
    fn default() -> Self {
        Simplex {
            max_iterations: 50_000,
            tol: 1e-7,
            bland_trigger: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Internal standardized LP: `rows` equations over `ncols` columns
/// (structural + split + slack), followed by `rows` artificial columns.
struct Tableau {
    m: usize,
    /// Total columns including artificials.
    n: usize,
    /// First artificial column index.
    art0: usize,
    /// Row-major dense `B⁻¹A`, m rows × n cols.
    t: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    status: Vec<ColStatus>,
    basis: Vec<usize>,
    /// Current value of every column.
    x: Vec<f64>,
    /// Phase cost vector (internal minimization).
    cost: Vec<f64>,
    /// Reduced-cost row, maintained by pivots.
    d: Vec<f64>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * self.n + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.t[r * self.n + c]
    }

    fn objective(&self) -> f64 {
        self.cost
            .iter()
            .zip(&self.x)
            .map(|(c, x)| c * x)
            .sum::<f64>()
    }

    /// Recomputes the reduced-cost row from the current cost vector:
    /// `d_j = c_j − Σ_i c_{B(i)} T[i][j]`.
    fn refresh_reduced_costs(&mut self) {
        let mut d = self.cost.clone();
        for r in 0..self.m {
            let cb = self.cost[self.basis[r]];
            if cb != 0.0 {
                for (j, dj) in d.iter_mut().enumerate() {
                    *dj -= cb * self.at(r, j);
                }
            }
        }
        self.d = d;
    }

    /// Applies a pivot at `(row, col)`: row reduction of T and d.
    fn eliminate(&mut self, row: usize, col: usize) {
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > 1e-12, "pivot too small");
        let inv = 1.0 / piv;
        for j in 0..self.n {
            *self.at_mut(row, j) *= inv;
        }
        // Clean the pivot column for exactness.
        *self.at_mut(row, col) = 1.0;
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor != 0.0 {
                for j in 0..self.n {
                    let v = self.at(row, j);
                    *self.at_mut(r, j) -= factor * v;
                }
                *self.at_mut(r, col) = 0.0;
            }
        }
        let dfac = self.d[col];
        if dfac != 0.0 {
            for j in 0..self.n {
                self.d[j] -= dfac * self.at(row, j);
            }
            self.d[col] = 0.0;
        }
    }
}

enum PhaseResult {
    Converged,
    Unbounded,
}

impl Simplex {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the LP relaxation of `problem` (integrality ignored).
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidProblem`] for malformed problems and
    /// [`MilpError::NumericalTrouble`] if a phase fails to converge within
    /// [`Simplex::max_iterations`].
    pub fn solve(&self, problem: &Problem) -> Result<LpOutcome, MilpError> {
        let bounds: Vec<(f64, f64)> = (0..problem.num_vars())
            .map(|i| problem.var_bounds(Var(i)))
            .collect();
        self.solve_with_bounds(problem, &bounds)
    }

    /// Solves the LP relaxation with overridden variable bounds (used by
    /// branch & bound to avoid rebuilding the problem per node).
    ///
    /// # Errors
    ///
    /// See [`Simplex::solve`]. Additionally returns
    /// [`MilpError::InvalidProblem`] if `bounds.len()` differs from the
    /// problem's variable count or a pair is inverted.
    pub fn solve_with_bounds(
        &self,
        problem: &Problem,
        bounds: &[(f64, f64)],
    ) -> Result<LpOutcome, MilpError> {
        self.solve_with_bounds_counted(problem, bounds)
            .map(|(outcome, _)| outcome)
    }

    /// [`Simplex::solve_with_bounds`] plus the number of simplex
    /// iterations performed (pivots and bound flips), feeding
    /// [`SolverStats`](crate::SolverStats).
    ///
    /// # Errors
    ///
    /// See [`Simplex::solve_with_bounds`].
    pub fn solve_with_bounds_counted(
        &self,
        problem: &Problem,
        bounds: &[(f64, f64)],
    ) -> Result<(LpOutcome, u64), MilpError> {
        let mut pivots = 0u64;
        problem.validate()?;
        if bounds.len() != problem.num_vars() {
            return Err(MilpError::InvalidProblem(format!(
                "bounds vector has length {}, expected {}",
                bounds.len(),
                problem.num_vars()
            )));
        }
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if lo > hi {
                return Err(MilpError::InvalidProblem(format!(
                    "override bounds for x{i} are inverted [{lo}, {hi}]"
                )));
            }
        }

        // --- Standardization -------------------------------------------
        // Column layout: for each original var, one column (or two when
        // free in both directions: x = x⁺ − x⁻); then one slack per
        // inequality row; then one artificial per row.
        let nvars = problem.num_vars();
        let m = problem.num_constraints();

        // col_of[i] = (column, optional negative-part column)
        let mut col_of: Vec<(usize, Option<usize>)> = Vec::with_capacity(nvars);
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for &(lo, hi) in bounds {
            if lo == f64::NEG_INFINITY && hi == f64::INFINITY {
                let pos = lower.len();
                lower.push(0.0);
                upper.push(f64::INFINITY);
                let neg = lower.len();
                lower.push(0.0);
                upper.push(f64::INFINITY);
                col_of.push((pos, Some(neg)));
            } else {
                let c = lower.len();
                lower.push(lo);
                upper.push(hi);
                col_of.push((c, None));
            }
        }
        let _structural = lower.len();
        // Slacks.
        let mut slack_of_row: Vec<Option<usize>> = vec![None; m];
        for (k, c) in problem.constraints.iter().enumerate() {
            if matches!(c.cmp, Cmp::Le | Cmp::Ge) {
                let col = lower.len();
                lower.push(0.0);
                upper.push(f64::INFINITY);
                slack_of_row[k] = Some(col);
            }
        }
        let art0 = lower.len();
        for _ in 0..m {
            lower.push(0.0);
            upper.push(f64::INFINITY);
        }
        let n = lower.len();

        // Dense rows.
        let mut t = vec![0.0; m * n];
        let mut b = vec![0.0; m];
        for (k, c) in problem.constraints.iter().enumerate() {
            for (v, coeff) in c.expr.iter() {
                let (pos, neg) = col_of[v.index()];
                t[k * n + pos] += coeff;
                if let Some(negc) = neg {
                    t[k * n + negc] -= coeff;
                }
            }
            if let Some(s) = slack_of_row[k] {
                t[k * n + s] = match c.cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    Cmp::Eq => unreachable!(),
                };
            }
            b[k] = c.rhs;
        }

        // Initial non-basic placement: prefer finite lower bound.
        let mut status = vec![ColStatus::AtLower; n];
        let mut x = vec![0.0; n];
        for j in 0..art0 {
            if lower[j].is_finite() {
                status[j] = ColStatus::AtLower;
                x[j] = lower[j];
            } else {
                // upper must be finite (free vars were split).
                status[j] = ColStatus::AtUpper;
                x[j] = upper[j];
            }
        }

        // Row residuals determine artificial signs; negate rows with
        // negative residual so artificials start at non-negative values.
        let mut basis = Vec::with_capacity(m);
        for k in 0..m {
            let mut resid = b[k];
            for j in 0..art0 {
                resid -= t[k * n + j] * x[j];
            }
            if resid < 0.0 {
                for j in 0..art0 {
                    t[k * n + j] = -t[k * n + j];
                }
                resid = -resid;
            }
            let art = art0 + k;
            t[k * n + art] = 1.0;
            status[art] = ColStatus::Basic(k);
            x[art] = resid;
            basis.push(art);
        }

        let mut tab = Tableau {
            m,
            n,
            art0,
            t,
            lower,
            upper,
            status,
            basis,
            x,
            cost: vec![0.0; n],
            d: vec![0.0; n],
        };

        // --- Phase 1 ----------------------------------------------------
        for j in art0..n {
            tab.cost[j] = 1.0;
        }
        tab.refresh_reduced_costs();
        match self.run_phase(
            &mut tab,
            /*phase=*/ 1,
            /*allow_art=*/ true,
            &mut pivots,
        )? {
            PhaseResult::Unbounded => {
                // Phase-1 objective is bounded below by 0; this cannot
                // happen with exact arithmetic.
                return Err(MilpError::NumericalTrouble {
                    phase: 1,
                    iterations: self.max_iterations,
                });
            }
            PhaseResult::Converged => {}
        }
        if tab.objective() > self.tol * (1.0 + b_norm(problem)) {
            return Ok((LpOutcome::Infeasible, pivots));
        }
        // Drive basic artificials out where possible (degenerate pivots).
        for r in 0..m {
            let bcol = tab.basis[r];
            if bcol >= art0 {
                let mut pivot_col = None;
                for j in 0..art0 {
                    if !matches!(tab.status[j], ColStatus::Basic(_)) && tab.at(r, j).abs() > 1e-9 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(q) = pivot_col {
                    // Degenerate pivot (step 0): statuses swap, values stay.
                    tab.eliminate(r, q);
                    tab.status[q] = ColStatus::Basic(r);
                    tab.status[bcol] = ColStatus::AtLower;
                    tab.x[bcol] = 0.0;
                    tab.basis[r] = q;
                }
                // Otherwise the row is redundant: the artificial stays
                // basic at 0 and, having only zero coefficients against
                // non-basic structurals, never changes value.
            }
        }
        // Artificials may not re-enter: pin their range.
        for j in art0..n {
            tab.upper[j] = 0.0;
            tab.lower[j] = 0.0;
        }

        // --- Phase 2 ----------------------------------------------------
        let sign = match problem.direction() {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        tab.cost = vec![0.0; n];
        for (v, coeff) in problem.objective.iter() {
            let (pos, neg) = col_of[v.index()];
            tab.cost[pos] += sign * coeff;
            if let Some(negc) = neg {
                tab.cost[negc] -= sign * coeff;
            }
        }
        tab.refresh_reduced_costs();
        match self.run_phase(&mut tab, 2, false, &mut pivots)? {
            PhaseResult::Unbounded => return Ok((LpOutcome::Unbounded, pivots)),
            PhaseResult::Converged => {}
        }

        // --- Extraction --------------------------------------------------
        let mut values = vec![0.0; nvars];
        for (i, &(pos, neg)) in col_of.iter().enumerate() {
            values[i] = tab.x[pos] - neg.map(|c| tab.x[c]).unwrap_or(0.0);
        }
        let objective = problem.objective.evaluate(&values);
        Ok((LpOutcome::Optimal(LpSolution { values, objective }), pivots))
    }

    /// Runs one simplex phase to optimality.
    fn run_phase(
        &self,
        tab: &mut Tableau,
        phase: u8,
        allow_artificial_entering: bool,
        pivots: &mut u64,
    ) -> Result<PhaseResult, MilpError> {
        let mut degenerate_run = 0usize;
        let mut use_bland = false;
        let mut last_obj = tab.objective();

        for _iter in 0..self.max_iterations {
            // --- Pricing -------------------------------------------------
            let limit = if allow_artificial_entering {
                tab.n
            } else {
                tab.art0
            };
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, sigma)
            for j in 0..limit {
                let eligible = match tab.status[j] {
                    ColStatus::AtLower => tab.d[j] < -self.tol,
                    ColStatus::AtUpper => tab.d[j] > self.tol,
                    ColStatus::Basic(_) => false,
                };
                if !eligible {
                    continue;
                }
                // Columns with zero range can only produce degenerate
                // bound flips; skip them.
                if tab.upper[j] - tab.lower[j] <= 0.0 {
                    continue;
                }
                let sigma = if matches!(tab.status[j], ColStatus::AtLower) {
                    1.0
                } else {
                    -1.0
                };
                if use_bland {
                    entering = Some((j, tab.d[j].abs(), sigma));
                    break;
                }
                match entering {
                    Some((_, best, _)) if tab.d[j].abs() <= best => {}
                    _ => entering = Some((j, tab.d[j].abs(), sigma)),
                }
            }
            let Some((q, _, sigma)) = entering else {
                return Ok(PhaseResult::Converged);
            };
            *pivots += 1;

            // --- Ratio test ---------------------------------------------
            // Entering variable moves by σ·t, basic values change by
            // −σ·t·T[i][q].
            let mut t_max = tab.upper[q] - tab.lower[q]; // own-range limit
            let mut leaving: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for r in 0..tab.m {
                let a = tab.at(r, q) * sigma;
                if a.abs() <= 1e-9 {
                    continue;
                }
                let bcol = tab.basis[r];
                let (limit_t, at_upper) = if a > 0.0 {
                    // Basic decreases towards its lower bound.
                    if tab.lower[bcol] == f64::NEG_INFINITY {
                        continue;
                    }
                    ((tab.x[bcol] - tab.lower[bcol]) / a, false)
                } else {
                    // Basic increases towards its upper bound.
                    if tab.upper[bcol] == f64::INFINITY {
                        continue;
                    }
                    ((tab.upper[bcol] - tab.x[bcol]) / (-a), true)
                };
                let limit_t = limit_t.max(0.0);
                if limit_t < t_max - 1e-12 {
                    t_max = limit_t;
                    leaving = Some((r, at_upper));
                } else if (limit_t - t_max).abs() <= 1e-12 {
                    // Tie-break on smallest basis column (anti-cycling aid).
                    match leaving {
                        Some((r0, _)) if tab.basis[r0] <= bcol => {}
                        _ => {
                            t_max = t_max.min(limit_t);
                            leaving = Some((r, at_upper));
                        }
                    }
                }
            }

            if t_max == f64::INFINITY {
                return Ok(PhaseResult::Unbounded);
            }

            // --- Apply step ----------------------------------------------
            let step = sigma * t_max;
            if t_max > 0.0 {
                for r in 0..tab.m {
                    let a = tab.at(r, q);
                    if a != 0.0 {
                        let bcol = tab.basis[r];
                        tab.x[bcol] -= step * a;
                    }
                }
                tab.x[q] += step;
            }

            match leaving {
                None => {
                    // Bound flip: entering variable traverses its range.
                    tab.status[q] = if sigma > 0.0 {
                        tab.x[q] = tab.upper[q];
                        ColStatus::AtUpper
                    } else {
                        tab.x[q] = tab.lower[q];
                        ColStatus::AtLower
                    };
                }
                Some((r, at_upper)) => {
                    let bcol = tab.basis[r];
                    // Snap the leaving variable exactly to its bound.
                    tab.x[bcol] = if at_upper {
                        tab.upper[bcol]
                    } else {
                        tab.lower[bcol]
                    };
                    tab.status[bcol] = if at_upper {
                        ColStatus::AtUpper
                    } else {
                        ColStatus::AtLower
                    };
                    tab.status[q] = ColStatus::Basic(r);
                    tab.basis[r] = q;
                    tab.eliminate(r, q);
                }
            }

            // --- Degeneracy bookkeeping ----------------------------------
            let obj = tab.objective();
            if obj < last_obj - self.tol {
                degenerate_run = 0;
                last_obj = obj;
            } else {
                degenerate_run += 1;
                if degenerate_run >= self.bland_trigger {
                    use_bland = true;
                }
            }
        }
        Err(MilpError::NumericalTrouble {
            phase,
            iterations: self.max_iterations,
        })
    }
}

/// Scale factor for the phase-1 infeasibility test.
fn b_norm(problem: &Problem) -> f64 {
    problem
        .constraints
        .iter()
        .map(|c| c.rhs.abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Cmp;

    fn solve(p: &Problem) -> LpOutcome {
        Simplex::new().solve(p).unwrap()
    }

    fn optimal(p: &Problem) -> LpSolution {
        match solve(p) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximize() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 → x=2, y=6, obj=36
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.constrain(1.0 * x, Cmp::Le, 4.0);
        p.constrain(2.0 * y, Cmp::Le, 12.0);
        p.constrain(3.0 * x + 2.0 * y, Cmp::Le, 18.0);
        p.set_objective(3.0 * x + 5.0 * y);
        let s = optimal(&p);
        assert!((s.objective() - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → x=4? no: y=0,x=4 obj 8;
        // or x=1,y=3 obj 11. Optimal x=4,y=0 → 8.
        let mut p = Problem::minimize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.constrain(x + y, Cmp::Ge, 4.0);
        p.constrain(1.0 * x, Cmp::Ge, 1.0);
        p.set_objective(2.0 * x + 3.0 * y);
        let s = optimal(&p);
        assert!((s.objective() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x - y = 1 → x=3, y=2
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Eq, 5.0);
        p.constrain(x - y, Cmp::Eq, 1.0);
        p.set_objective(x + y);
        let s = optimal(&p);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        p.constrain(1.0 * x, Cmp::Ge, 2.0);
        p.set_objective(1.0 * x);
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        p.set_objective(1.0 * x);
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn bounded_by_variable_upper_bounds_only() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 3.5);
        let y = p.continuous("y", 1.0, 2.0);
        p.set_objective(x + y);
        let s = optimal(&p);
        assert!((s.objective() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -3 (bound), x + 5 >= 0 → x = -3
        let mut p = Problem::minimize();
        let x = p.continuous("x", -3.0, 10.0);
        p.constrain(x + 5.0, Cmp::Ge, 0.0);
        p.set_objective(1.0 * x);
        let s = optimal(&p);
        assert!((s.value(x) + 3.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_is_split() {
        // min y s.t. y >= x - 4, y >= -x → min at x=2, y=-2
        let mut p = Problem::minimize();
        let x = p.continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = p.continuous("y", f64::NEG_INFINITY, f64::INFINITY);
        p.constrain(y - x, Cmp::Ge, -4.0);
        p.constrain(y + x, Cmp::Ge, 0.0);
        p.set_objective(1.0 * y);
        let s = optimal(&p);
        assert!((s.objective() + 2.0).abs() < 1e-6, "obj={}", s.objective());
        assert!((s.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_carried_through() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 2.0);
        p.set_objective(x + 10.0);
        let s = optimal(&p);
        assert!((s.objective() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: redundant constraints through the optimum.
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.constrain(x + y, Cmp::Le, 1.0);
        p.constrain(2.0 * x + 2.0 * y, Cmp::Le, 2.0);
        p.constrain(x + 2.0 * y, Cmp::Le, 2.0);
        p.set_objective(x + y);
        let s = optimal(&p);
        assert!((s.objective() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classical cycling LP (terminates thanks to Bland fallback).
        let mut p = Problem::minimize();
        let x1 = p.continuous("x1", 0.0, f64::INFINITY);
        let x2 = p.continuous("x2", 0.0, f64::INFINITY);
        let x3 = p.continuous("x3", 0.0, f64::INFINITY);
        let x4 = p.continuous("x4", 0.0, f64::INFINITY);
        p.constrain(0.25 * x1 - 8.0 * x2 - 1.0 * x3 + 9.0 * x4, Cmp::Le, 0.0);
        p.constrain(0.5 * x1 - 12.0 * x2 - 0.5 * x3 + 3.0 * x4, Cmp::Le, 0.0);
        p.constrain(1.0 * x3, Cmp::Le, 1.0);
        p.set_objective(-0.75 * x1 + 150.0 * x2 - 0.02 * x3 + 6.0 * x4);
        let s = optimal(&p);
        // Optimum: x3=1, x4=0, x2=0, x1 bound by row 2 → x1=1, obj −0.77.
        assert!((s.objective() + 0.77).abs() < 1e-6, "obj={}", s.objective());
    }

    #[test]
    fn solve_with_bounds_overrides() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        p.set_objective(1.0 * x);
        let s = match Simplex::new().solve_with_bounds(&p, &[(0.0, 3.0)]).unwrap() {
            LpOutcome::Optimal(s) => s,
            other => panic!("{other:?}"),
        };
        assert!((s.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn override_bounds_validation() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        p.set_objective(1.0 * x);
        assert!(Simplex::new().solve_with_bounds(&p, &[]).is_err());
        assert!(Simplex::new().solve_with_bounds(&p, &[(5.0, 1.0)]).is_err());
    }

    #[test]
    fn fixed_variables_via_equal_bounds() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 2.0, 2.0);
        let y = p.continuous("y", 0.0, 5.0);
        p.constrain(x + y, Cmp::Le, 4.0);
        p.set_objective(x + y);
        let s = optimal(&p);
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.objective() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_equality_system() {
        let mut p = Problem::minimize();
        let x = p.continuous("x", 0.0, 10.0);
        p.constrain(1.0 * x, Cmp::Eq, 3.0);
        p.constrain(1.0 * x, Cmp::Eq, 4.0);
        p.set_objective(1.0 * x);
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 5.0);
        let y = p.continuous("y", 0.0, 5.0);
        p.constrain(x + y, Cmp::Eq, 4.0);
        p.constrain(2.0 * x + 2.0 * y, Cmp::Eq, 8.0); // same plane
        p.set_objective(1.0 * x);
        let s = optimal(&p);
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn solution_values_slice() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let y = p.continuous("y", 0.0, 2.0);
        p.set_objective(x + y);
        let s = optimal(&p);
        assert_eq!(s.values().len(), 2);
        assert!(p.is_feasible(s.values(), 1e-7));
    }
}
