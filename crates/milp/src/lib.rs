//! # pmcs-milp
//!
//! A self-contained linear-programming and mixed-integer-linear-programming
//! solver, built from scratch for the `pmcs` workspace. It replaces the
//! commercial solver (IBM CPLEX) used by the original paper.
//!
//! The solver is a staged pipeline:
//!
//! 1. **Problem IR** ([`problem`], [`expr`]) — variables, bounds,
//!    constraints, objective.
//! 2. **Presolve** ([`presolve`]) — fixed-variable substitution, bound
//!    tightening, redundant-row elimination and power-of-two
//!    equilibration, each emitting a reversible [`Transform`] so reduced
//!    solutions map back to the original variable space.
//! 3. **LP backends** ([`backend`]) — the original dense-tableau
//!    two-phase simplex ([`simplex`]) retained as the *reference*
//!    backend, and a sparse revised simplex with explicit basis
//!    factorization and warm starts ([`revised`]).
//! 4. **Branch & bound** ([`branch`]) — pluggable branching/node-selection
//!    strategies; each child node warm-starts from its parent's basis
//!    when the backend exports bases.
//!
//! Solver effort (LP pivots, presolve reductions, B&B nodes, warm-start
//! hits) is threaded through every stage as [`SolverStats`].
//!
//! ## Correctness keystone
//!
//! [`Solver::solve_audited`] re-verifies answers with exact rational
//! arithmetic against the **original, pre-presolve** problem: under the
//! revised backend, [`Solver::solve`] restores reduced solutions through
//! the inverse transform chain *before* any caller (including the audit)
//! sees them. A bug anywhere in presolve, the revised simplex, or the
//! transform inversion therefore surfaces as an audit failure instead of
//! silently shifting the analysis. The dense backend solves the original
//! problem directly and remains the differential-testing oracle.
//!
//! On node or iteration limits the solver reports the best *remaining
//! upper bound* which, for the delay-maximization problems of the
//! analysis, is still a **safe** (pessimistic) bound.
//!
//! ## Example
//!
//! ```
//! use pmcs_milp::{Problem, Cmp, Solver};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6, 0 <= x,y, y integer
//! let mut p = Problem::maximize();
//! let x = p.continuous("x", 0.0, f64::INFINITY);
//! let y = p.integer("y", 0.0, 10.0);
//! p.constrain(x + y, Cmp::Le, 4.0);
//! p.constrain(x + 3.0 * y, Cmp::Le, 6.0);
//! p.set_objective(3.0 * x + 2.0 * y);
//! let sol = Solver::new().solve(&p)?;
//! assert!((sol.objective() - 12.0).abs() < 1e-6); // x=4, y=0
//! # Ok::<(), pmcs_milp::MilpError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod backend;
pub mod basis_store;
pub mod branch;
pub mod certify;
pub mod error;
pub mod exact;
pub mod expr;
pub mod presolve;
pub mod problem;
pub mod rational;
pub mod revised;
pub mod simplex;
pub mod solution;
pub mod stats;

pub use audit::{
    verify_bb_tree, verify_bound_multipliers, AuditCheck, AuditReport, AuditedOutcome,
    AuditedSolve, BbNode, BbTree, CheckStatus, InfeasibilityCertificate, NormRow, NormalForm,
};
pub use backend::{
    backend_for, BackendKind, Basis, BasisStatus, DenseBackend, LpBackend, LpRun, RevisedBackend,
    WarmStart,
};
pub use basis_store::{BasisStore, BasisStoreStats, StoredProgram};
pub use branch::{BbRun, BranchAndBound, BranchRule, Limits, NodeOrder, Strategy};
pub use certify::{certify_upper_bound, CertifyLimits};
pub use error::MilpError;
pub use exact::{solve_dual_exact, DualOutcome};
pub use expr::{LinExpr, Var};
pub use presolve::{presolve, PresolveOutcome, PresolvedProblem, Transform};
pub use problem::{Cmp, ConstraintRef, Objective, Problem, VarKind};
pub use rational::Rational;
pub use revised::RevisedSimplex;
pub use simplex::{LpOutcome, LpSolution, Simplex};
pub use solution::{MilpSolution, SolveStatus};
pub use stats::SolverStats;

/// Result of [`Solver::solve_program`]: the restored solution plus the
/// root basis for warm-starting the next re-solve of the same program.
#[derive(Debug, Clone)]
pub struct SolvedProgram {
    /// The MILP solution, already mapped back to original variable space.
    pub solution: MilpSolution,
    /// Root-relaxation basis of the reduced problem (pass to the next
    /// [`Solver::solve_program`] call after [`PresolvedProblem::update_rhs`]).
    pub basis: Option<Basis>,
}

/// Front-door MILP solver with default limits.
///
/// Thin convenience wrapper over [`BranchAndBound`]; see the crate-level
/// example. The [`BackendKind`] selects the LP pipeline: `Dense` solves
/// the original problem on the reference dense simplex (no presolve, no
/// warm starts — bit-identical to the pre-pipeline solver), `Revised`
/// presolves first and prices nodes on the warm-starting revised simplex.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    limits: Limits,
    backend: BackendKind,
    strategy: Strategy,
}

impl Solver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit limits.
    pub fn with_limits(limits: Limits) -> Self {
        Solver {
            limits,
            ..Solver::default()
        }
    }

    /// Selects the LP backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the branch-and-bound strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured LP backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    fn bb(&self) -> BranchAndBound {
        BranchAndBound::new(self.limits.clone())
            .with_strategy(self.strategy)
            .with_backend(self.backend)
    }

    /// Solves the problem to optimality (or to the configured limits).
    ///
    /// Under [`BackendKind::Revised`] the problem is presolved first and
    /// the solution restored to original variable space, so callers see
    /// identical semantics for both backends.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError`] if the problem is infeasible, unbounded, or
    /// numerically intractable. Hitting a node/iteration limit is *not* an
    /// error: the returned solution carries [`SolveStatus::LimitReached`]
    /// together with the best proven bound.
    pub fn solve(&self, problem: &Problem) -> Result<MilpSolution, MilpError> {
        match self.backend {
            BackendKind::Dense => self.bb().solve(problem),
            BackendKind::Revised => match presolve(problem, &[])? {
                PresolveOutcome::Infeasible(_) => Err(MilpError::Infeasible),
                PresolveOutcome::Reduced(program) => {
                    self.solve_program(&program, None).map(|run| run.solution)
                }
            },
        }
    }

    /// Solves a presolved program on the revised backend, optionally
    /// warm-starting the root relaxation from a prior solve's basis.
    ///
    /// The returned solution is restored to *original* variable space and
    /// its [`SolverStats`] include the program's presolve reductions. This
    /// is the incremental-formulation entry point: presolve once, then
    /// per fixed-point round call [`PresolvedProblem::update_rhs`] and
    /// re-solve here with the previous round's [`SolvedProgram::basis`].
    ///
    /// # Errors
    ///
    /// See [`Solver::solve`].
    pub fn solve_program(
        &self,
        program: &PresolvedProblem,
        warm: Option<&Basis>,
    ) -> Result<SolvedProgram, MilpError> {
        let run = self
            .bb()
            .solve_with(program.reduced(), &RevisedBackend::default(), warm)?;
        let mut solution = run.solution;
        if !solution.values.is_empty() {
            // Empty values = limit hit before any incumbent; nothing to
            // restore in that case.
            solution.values = program.restore(&solution.values);
        }
        solution.stats.merge(program.stats());
        Ok(SolvedProgram {
            solution,
            basis: run.root_basis,
        })
    }

    /// Solves the problem and re-verifies the solver's answer with exact
    /// rational arithmetic (see [`audit`]).
    ///
    /// The audit always checks against the problem passed *here* — the
    /// original, pre-presolve formulation. Under the revised backend,
    /// [`Solver::solve`] has already composed the inverse presolve
    /// transforms, so a transform bug fails the audit rather than passing
    /// unnoticed (the correctness keystone of the staged pipeline).
    ///
    /// An `Infeasible` verdict is *not* an error here: the auditor turns
    /// it into an [`AuditedOutcome::Infeasible`] with a checked
    /// infeasibility certificate (or an inconclusive report when no LP
    /// certificate exists).
    ///
    /// # Errors
    ///
    /// Returns [`MilpError`] only for failures the audit layer cannot
    /// re-verify independently (unboundedness, numerical breakdown,
    /// malformed problems).
    pub fn solve_audited(&self, problem: &Problem) -> Result<AuditedSolve, MilpError> {
        match self.solve(problem) {
            Ok(solution) => {
                let report = audit::audit_solution(problem, &solution);
                Ok(AuditedSolve {
                    outcome: AuditedOutcome::Solved(solution),
                    report,
                })
            }
            Err(MilpError::Infeasible) => Ok(AuditedSolve {
                outcome: AuditedOutcome::Infeasible,
                report: audit::audit_infeasibility(problem),
            }),
            Err(e) => Err(e),
        }
    }
}
