//! # pmcs-milp
//!
//! A self-contained linear-programming and mixed-integer-linear-programming
//! solver, built from scratch for the `pmcs` workspace. It replaces the
//! commercial solver (IBM CPLEX) used by the original paper.
//!
//! * **LP**: two-phase primal simplex with *bounded variables* (variables
//!   may be non-basic at either bound, so variable bounds never add rows),
//!   Dantzig pricing with an automatic fallback to Bland's rule to escape
//!   cycling ([`simplex`]).
//! * **MILP**: best-first branch & bound on fractional integer variables
//!   with a rounding heuristic for early incumbents ([`branch`]).
//!
//! The solver is deliberately dense and simple — the schedulability
//! formulations it serves have at most a few hundred variables. On node or
//! iteration limits it reports the best *remaining upper bound* which, for
//! the delay-maximization problems of the analysis, is still a **safe**
//! (pessimistic) bound.
//!
//! ## Example
//!
//! ```
//! use pmcs_milp::{Problem, Cmp, Solver};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6, 0 <= x,y, y integer
//! let mut p = Problem::maximize();
//! let x = p.continuous("x", 0.0, f64::INFINITY);
//! let y = p.integer("y", 0.0, 10.0);
//! p.constrain(x + y, Cmp::Le, 4.0);
//! p.constrain(x + 3.0 * y, Cmp::Le, 6.0);
//! p.set_objective(3.0 * x + 2.0 * y);
//! let sol = Solver::new().solve(&p)?;
//! assert!((sol.objective() - 12.0).abs() < 1e-6); // x=4, y=0
//! # Ok::<(), pmcs_milp::MilpError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod branch;
pub mod error;
pub mod expr;
pub mod problem;
pub mod rational;
pub mod simplex;
pub mod solution;

pub use audit::{
    AuditCheck, AuditReport, AuditedOutcome, AuditedSolve, CheckStatus, InfeasibilityCertificate,
};
pub use branch::{BranchAndBound, Limits};
pub use error::MilpError;
pub use expr::{LinExpr, Var};
pub use problem::{Cmp, ConstraintRef, Objective, Problem, VarKind};
pub use rational::Rational;
pub use simplex::{LpOutcome, LpSolution, Simplex};
pub use solution::{MilpSolution, SolveStatus};

/// Front-door MILP solver with default limits.
///
/// Thin convenience wrapper over [`BranchAndBound`]; see the crate-level
/// example.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    limits: Limits,
}

impl Solver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit limits.
    pub fn with_limits(limits: Limits) -> Self {
        Solver { limits }
    }

    /// Solves the problem to optimality (or to the configured limits).
    ///
    /// # Errors
    ///
    /// Returns [`MilpError`] if the problem is infeasible, unbounded, or
    /// numerically intractable. Hitting a node/iteration limit is *not* an
    /// error: the returned solution carries [`SolveStatus::LimitReached`]
    /// together with the best proven bound.
    pub fn solve(&self, problem: &Problem) -> Result<MilpSolution, MilpError> {
        BranchAndBound::new(self.limits.clone()).solve(problem)
    }

    /// Solves the problem and re-verifies the solver's answer with exact
    /// rational arithmetic (see [`audit`]).
    ///
    /// An `Infeasible` verdict is *not* an error here: the auditor turns
    /// it into an [`AuditedOutcome::Infeasible`] with a checked
    /// infeasibility certificate (or an inconclusive report when no LP
    /// certificate exists).
    ///
    /// # Errors
    ///
    /// Returns [`MilpError`] only for failures the audit layer cannot
    /// re-verify independently (unboundedness, numerical breakdown,
    /// malformed problems).
    pub fn solve_audited(&self, problem: &Problem) -> Result<AuditedSolve, MilpError> {
        match self.solve(problem) {
            Ok(solution) => {
                let report = audit::audit_solution(problem, &solution);
                Ok(AuditedSolve {
                    outcome: AuditedOutcome::Solved(solution),
                    report,
                })
            }
            Err(MilpError::Infeasible) => Ok(AuditedSolve {
                outcome: AuditedOutcome::Infeasible,
                report: audit::audit_infeasibility(problem),
            }),
            Err(e) => Err(e),
        }
    }
}
