//! Problem construction: variables, constraints, objective.

use std::fmt;

use crate::error::MilpError;
use crate::expr::{LinExpr, Var};

/// Variable kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Binary, i.e. integer in `[0, 1]`.
    Binary,
}

impl VarKind {
    /// `true` for integer-restricted kinds (integer and binary).
    pub fn is_integral(self) -> bool {
        !matches!(self, VarKind::Continuous)
    }
}

/// Comparison sense of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
        })
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Maximize the objective expression.
    Maximize,
    /// Minimize the objective expression.
    Minimize,
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub name: String,
    pub kind: VarKind,
    pub lower: f64,
    pub upper: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
    pub name: Option<String>,
}

/// Read-only view of one constraint of a [`Problem`].
///
/// Obtained from [`Problem::constraints`]; used by the audit and lint
/// layers, which need to inspect constraints without mutating them.
#[derive(Debug, Clone, Copy)]
pub struct ConstraintRef<'a> {
    index: usize,
    inner: &'a Constraint,
}

impl<'a> ConstraintRef<'a> {
    /// Position of this constraint in insertion order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Left-hand-side expression (its constant is always zero; see
    /// [`Problem::constrain`]).
    pub fn expr(&self) -> &'a LinExpr {
        &self.inner.expr
    }

    /// Comparison sense.
    pub fn cmp(&self) -> Cmp {
        self.inner.cmp
    }

    /// Right-hand side.
    pub fn rhs(&self) -> f64 {
        self.inner.rhs
    }

    /// Optional name given at construction time.
    pub fn name(&self) -> Option<&'a str> {
        self.inner.name.as_deref()
    }
}

/// A mixed-integer linear program under construction.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) direction: Objective,
}

impl Problem {
    /// Creates an empty maximization problem.
    pub fn maximize() -> Self {
        Problem::new(Objective::Maximize)
    }

    /// Creates an empty minimization problem.
    pub fn minimize() -> Self {
        Problem::new(Objective::Minimize)
    }

    /// Creates an empty problem with the given direction.
    pub fn new(direction: Objective) -> Self {
        Problem {
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::zero(),
            direction,
        }
    }

    /// Adds a continuous variable with bounds `[lower, upper]`
    /// (`f64::INFINITY` / `f64::NEG_INFINITY` allowed).
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.add_var(name.into(), VarKind::Continuous, lower, upper)
    }

    /// Adds an integer variable with bounds `[lower, upper]`.
    pub fn integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.add_var(name.into(), VarKind::Integer, lower, upper)
    }

    /// Adds a binary variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name.into(), VarKind::Binary, 0.0, 1.0)
    }

    fn add_var(&mut self, name: String, kind: VarKind, lower: f64, upper: f64) -> Var {
        self.vars.push(VarData {
            name,
            kind,
            lower,
            upper,
        });
        Var(self.vars.len() - 1)
    }

    /// Adds the constraint `expr cmp rhs`.
    ///
    /// Any constant inside `expr` is moved to the right-hand side.
    pub fn constrain(&mut self, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) {
        self.constrain_named(None::<String>, expr, cmp, rhs)
    }

    /// Adds a named constraint (names appear in debug dumps).
    pub fn constrain_named(
        &mut self,
        name: Option<impl Into<String>>,
        expr: impl Into<LinExpr>,
        cmp: Cmp,
        rhs: f64,
    ) {
        let expr = expr.into();
        let adjusted_rhs = rhs - expr.constant();
        let mut pure = expr;
        pure.add_constant(-pure.constant());
        self.constraints.push(Constraint {
            expr: pure,
            cmp,
            rhs: adjusted_rhs,
            name: name.map(Into::into),
        });
    }

    /// Fixes a variable to a value (convenience for `expr = value`).
    pub fn fix(&mut self, var: Var, value: f64) {
        let v = &mut self.vars[var.0];
        v.lower = value;
        v.upper = value;
    }

    /// Overwrites both bounds of a variable.
    ///
    /// Used by branch-and-bound certificate replay, where a node problem is
    /// the root problem with branching bounds applied; the caller is
    /// responsible for keeping `lower <= upper` (an inverted pair is legal
    /// here and simply makes the problem infeasible, which
    /// [`Problem::validate`] reports).
    pub fn set_var_bounds(&mut self, var: Var, lower: f64, upper: f64) {
        let v = &mut self.vars[var.0];
        v.lower = lower;
        v.upper = upper;
    }

    /// Sets the objective expression (its constant is carried through to
    /// reported objective values).
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// The optimization direction.
    pub fn direction(&self) -> Objective {
        self.direction
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Iterator over all variable handles, in index order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.vars.len()).map(Var)
    }

    /// Iterator over read-only views of all constraints, in insertion
    /// order.
    pub fn constraints(&self) -> impl Iterator<Item = ConstraintRef<'_>> {
        self.constraints
            .iter()
            .enumerate()
            .map(|(index, inner)| ConstraintRef { index, inner })
    }

    /// Variable kind of `var`.
    pub fn var_kind(&self, var: Var) -> VarKind {
        self.vars[var.0].kind
    }

    /// Bounds of `var`.
    pub fn var_bounds(&self, var: Var) -> (f64, f64) {
        let v = &self.vars[var.0];
        (v.lower, v.upper)
    }

    /// Name of `var`.
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.0].name
    }

    /// All integral (integer/binary) variables.
    pub fn integral_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind.is_integral())
            .map(|(i, _)| Var(i))
    }

    /// Validates bounds and coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidProblem`] for inverted bounds or
    /// non-finite coefficients/right-hand sides.
    pub fn validate(&self) -> Result<(), MilpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower > v.upper {
                return Err(MilpError::InvalidProblem(format!(
                    "variable x{i} ({}) has inverted bounds [{}, {}]",
                    v.name, v.lower, v.upper
                )));
            }
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(MilpError::InvalidProblem(format!(
                    "variable x{i} ({}) has NaN bounds",
                    v.name
                )));
            }
        }
        for (k, c) in self.constraints.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(MilpError::InvalidProblem(format!(
                    "constraint {k} has non-finite rhs {}",
                    c.rhs
                )));
            }
            for (v, coeff) in c.expr.iter() {
                if !coeff.is_finite() {
                    return Err(MilpError::InvalidProblem(format!(
                        "constraint {k} has non-finite coefficient on {v}"
                    )));
                }
                if v.0 >= self.vars.len() {
                    return Err(MilpError::InvalidProblem(format!(
                        "constraint {k} references unknown variable {v}"
                    )));
                }
            }
        }
        for (v, coeff) in self.objective.iter() {
            if !coeff.is_finite() {
                return Err(MilpError::InvalidProblem(format!(
                    "objective has non-finite coefficient on {v}"
                )));
            }
            if v.0 >= self.vars.len() {
                return Err(MilpError::InvalidProblem(format!(
                    "objective references unknown variable {v}"
                )));
            }
        }
        Ok(())
    }

    /// Checks whether a candidate point satisfies all constraints and
    /// bounds within `tol` (integrality of integer variables included).
    ///
    /// Useful for tests and for the rounding heuristic.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.num_vars()`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        assert_eq!(values.len(), self.vars.len(), "dimension mismatch");
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if v.kind.is_integral() && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.evaluate(values);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.direction {
            Objective::Maximize => "maximize",
            Objective::Minimize => "minimize",
        };
        writeln!(f, "{dir} {}", self.objective)?;
        writeln!(f, "subject to:")?;
        for c in &self.constraints {
            if let Some(name) = &c.name {
                writeln!(f, "  [{name}] {} {} {}", c.expr, c.cmp, c.rhs)?;
            } else {
                writeln!(f, "  {} {} {}", c.expr, c.cmp, c.rhs)?;
            }
        }
        for (i, v) in self.vars.iter().enumerate() {
            writeln!(
                f,
                "  {:?} x{i} ({}) in [{}, {}]",
                v.kind, v.name, v.lower, v.upper
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_get_sequential_indices() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let y = p.binary("y");
        let z = p.integer("z", -2.0, 7.0);
        assert_eq!((x.index(), y.index(), z.index()), (0, 1, 2));
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.var_kind(y), VarKind::Binary);
        assert_eq!(p.var_bounds(z), (-2.0, 7.0));
        assert_eq!(p.var_name(x), "x");
        let ints: Vec<_> = p.integral_vars().collect();
        assert_eq!(ints, vec![y, z]);
    }

    #[test]
    fn constraint_constant_moves_to_rhs() {
        let mut p = Problem::minimize();
        let x = p.continuous("x", 0.0, 10.0);
        p.constrain(x + 3.0, Cmp::Le, 5.0);
        assert_eq!(p.constraints[0].rhs, 2.0);
        assert_eq!(p.constraints[0].expr.constant(), 0.0);
    }

    #[test]
    fn validate_catches_inverted_bounds() {
        let mut p = Problem::maximize();
        let _ = p.continuous("x", 1.0, 0.0);
        assert!(matches!(p.validate(), Err(MilpError::InvalidProblem(_))));
    }

    #[test]
    fn validate_catches_nonfinite_rhs() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        p.constrain(x, Cmp::Le, f64::INFINITY);
        assert!(matches!(p.validate(), Err(MilpError::InvalidProblem(_))));
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 4.0);
        let y = p.binary("y");
        p.constrain(x + 2.0 * y, Cmp::Le, 4.0);
        assert!(p.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[3.5, 1.0], 1e-9)); // violates constraint
        assert!(!p.is_feasible(&[1.0, 0.5], 1e-9)); // fractional binary
        assert!(!p.is_feasible(&[5.0, 0.0], 1e-9)); // bound violation
    }

    #[test]
    fn fix_pins_both_bounds() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 4.0);
        p.fix(x, 2.5);
        assert_eq!(p.var_bounds(x), (2.5, 2.5));
    }

    #[test]
    fn display_contains_pieces() {
        let mut p = Problem::maximize();
        let x = p.binary("x");
        p.constrain_named(Some("cap"), 2.0 * x, Cmp::Le, 1.0);
        p.set_objective(x);
        let s = p.to_string();
        assert!(s.contains("maximize"));
        assert!(s.contains("[cap]"));
    }
}
