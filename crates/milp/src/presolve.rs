//! Presolve: problem reductions with reversible transforms.
//!
//! The staged pipeline runs a small fixpoint of classical reductions
//! before handing a problem to the revised backend:
//!
//! 1. **Fixed-variable substitution** — variables with `lower == upper`
//!    are removed and their contribution folded into each row's RHS.
//! 2. **Bound tightening** — integral bounds snap to `⌈lower⌉`/`⌊upper⌋`
//!    and singleton rows convert to variable bounds.
//! 3. **Redundant-row elimination** — rows implied by the variable
//!    bounds (activity interval inside the RHS) are dropped, and rows
//!    whose activity interval excludes the RHS prove infeasibility.
//! 4. **Equilibration scaling** — each surviving row is scaled by a
//!    power of two toward unit magnitude. Powers of two are exact in
//!    binary floating point, so scaling changes no solution bits.
//!
//! Every reduction emits a [`Transform`], and [`PresolvedProblem::restore`]
//! composes their inverses to map a reduced-space solution back to the
//! *original* variable space. That inversion is the correctness keystone
//! of the pipeline: `solve_audited` keeps auditing against the original
//! (pre-presolve) problem, so a bug anywhere in the transform chain shows
//! up as an audit failure rather than silently shifting the analysis
//! (pinned by the corrupted-transform negative test).
//!
//! Rows named in `mutable_rows` — the budget rows the incremental window
//! formulation re-targets each fixed-point round — are exempt from
//! dropping and from bound extraction; only their RHS bookkeeping
//! ([`PresolvedProblem::update_rhs`]) is maintained, so the reduced
//! structure stays valid across RHS mutations.

use crate::error::MilpError;
use crate::expr::{LinExpr, Var};
use crate::problem::{Cmp, Problem, VarKind};
use crate::stats::SolverStats;

/// Presolve feasibility / integrality tolerance.
const TOL: f64 = 1e-9;

/// Fixpoint rounds before presolve gives up on further reductions.
const MAX_ROUNDS: usize = 8;

/// One reversible presolve reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Variable `var` (original index) was fixed at `value` and removed.
    FixVar {
        /// Original variable index.
        var: usize,
        /// The pinned value, substituted into every row.
        value: f64,
    },
    /// Row `row` (original index) was dropped as redundant or absorbed
    /// into a variable bound.
    DropRow {
        /// Original row index.
        row: usize,
    },
    /// Row `row` was scaled by `factor` (a power of two, hence exact).
    ScaleRow {
        /// Original row index.
        row: usize,
        /// The exact power-of-two scale factor applied to both sides.
        factor: f64,
    },
    /// Bounds of variable `var` were tightened to `[lower, upper]`.
    TightenBound {
        /// Original variable index.
        var: usize,
        /// New lower bound.
        lower: f64,
        /// New upper bound.
        upper: f64,
    },
}

/// Result of a presolve run.
#[derive(Debug, Clone)]
pub enum PresolveOutcome {
    /// The reduced problem plus the transform chain to invert it
    /// (boxed: the presolve bookkeeping dwarfs the infeasibility string).
    Reduced(Box<PresolvedProblem>),
    /// Presolve proved the problem infeasible (with a human-readable
    /// reason); no reduced problem exists.
    Infeasible(String),
}

/// A presolved problem: the reduced form, the transform chain, and the
/// bookkeeping needed to mutate budget-row RHS values in place.
#[derive(Debug, Clone)]
pub struct PresolvedProblem {
    original_vars: usize,
    reduced: Problem,
    transforms: Vec<Transform>,
    /// Original variable index → reduced column (None = fixed away).
    var_map: Vec<Option<usize>>,
    /// Original row index → reduced row (None = dropped).
    row_map: Vec<Option<usize>>,
    /// Fixed-variable contribution subtracted from each original row's
    /// RHS (`reduced_rhs = (original_rhs − shift) · scale`).
    row_shift: Vec<f64>,
    /// Power-of-two equilibration factor per original row.
    row_scale: Vec<f64>,
    stats: SolverStats,
}

impl PresolvedProblem {
    /// The reduced problem the backend actually solves.
    pub fn reduced(&self) -> &Problem {
        &self.reduced
    }

    /// Number of variables of the original problem.
    pub fn original_vars(&self) -> usize {
        self.original_vars
    }

    /// Presolve reduction counters (vars fixed, rows removed, bounds
    /// tightened).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The recorded transform chain, in application order.
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Mutable access to the transform chain.
    ///
    /// Exists for fault injection in tests: corrupting a transform must
    /// corrupt [`restore`](Self::restore) and therefore fail the
    /// exact-rational audit of the original problem.
    pub fn transforms_mut(&mut self) -> &mut Vec<Transform> {
        &mut self.transforms
    }

    /// Maps a reduced-space solution vector back to the original
    /// variable space by inverting the transform chain (surviving
    /// variables copy through `var_map`, fixed variables replay their
    /// [`Transform::FixVar`] values).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is shorter than the reduced problem's
    /// variable count.
    pub fn restore(&self, values: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.original_vars];
        for (orig, mapped) in self.var_map.iter().enumerate() {
            if let Some(r) = *mapped {
                out[orig] = values[r];
            }
        }
        for t in &self.transforms {
            if let Transform::FixVar { var, value } = *t {
                out[var] = value;
            }
        }
        out
    }

    /// Re-targets the RHS of an original row in the reduced problem,
    /// replaying the fixed-variable shift and equilibration scale so the
    /// reduced row stays equivalent to `original_row cmp new_rhs`.
    ///
    /// This is the incremental-formulation hook: budget rows passed as
    /// `mutable_rows` to [`presolve`] are never dropped, so this always
    /// succeeds for them.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidProblem`] if the row was eliminated
    /// by presolve (possible only for rows *not* marked mutable).
    pub fn update_rhs(&mut self, orig_row: usize, new_rhs: f64) -> Result<(), MilpError> {
        let Some(Some(r)) = self.row_map.get(orig_row).copied() else {
            return Err(MilpError::InvalidProblem(format!(
                "row {orig_row} is not present in the reduced problem"
            )));
        };
        self.reduced.constraints[r].rhs =
            (new_rhs - self.row_shift[orig_row]) * self.row_scale[orig_row];
        Ok(())
    }
}

/// Runs the presolve fixpoint on `problem`.
///
/// `mutable_rows` lists original row indices whose RHS will be mutated
/// later via [`PresolvedProblem::update_rhs`]; those rows are kept
/// verbatim (modulo fixed-variable substitution and scaling).
///
/// # Errors
///
/// Returns [`MilpError::InvalidProblem`] if the problem fails
/// [`Problem::validate`] or a mutable row index is out of range. A
/// problem *proved infeasible* is not an error: it is reported as
/// [`PresolveOutcome::Infeasible`].
pub fn presolve(problem: &Problem, mutable_rows: &[usize]) -> Result<PresolveOutcome, MilpError> {
    problem.validate()?;
    let nvars = problem.num_vars();
    let nrows = problem.num_constraints();
    for &r in mutable_rows {
        if r >= nrows {
            return Err(MilpError::InvalidProblem(format!(
                "mutable row {r} out of range ({nrows} rows)"
            )));
        }
    }
    let mut mutable = vec![false; nrows];
    for &r in mutable_rows {
        mutable[r] = true;
    }

    let mut lower: Vec<f64> = Vec::with_capacity(nvars);
    let mut upper: Vec<f64> = Vec::with_capacity(nvars);
    let mut kind: Vec<VarKind> = Vec::with_capacity(nvars);
    for v in problem.vars() {
        let (lo, hi) = problem.var_bounds(v);
        lower.push(lo);
        upper.push(hi);
        kind.push(problem.var_kind(v));
    }
    let mut fixed: Vec<Option<f64>> = vec![None; nvars];
    let mut alive = vec![true; nrows];
    let mut transforms = Vec::new();
    let mut stats = SolverStats::default();

    for _round in 0..MAX_ROUNDS {
        let mut changed = false;

        // --- Pass 1: integral snapping + fixed-variable substitution ----
        for i in 0..nvars {
            if fixed[i].is_some() {
                continue;
            }
            if kind[i].is_integral() {
                let nl = (lower[i] - TOL).ceil();
                let nu = (upper[i] + TOL).floor();
                if nl > lower[i] || nu < upper[i] {
                    if nl > nu + TOL {
                        return Ok(PresolveOutcome::Infeasible(format!(
                            "integral variable x{i} has empty snapped range [{nl}, {nu}]"
                        )));
                    }
                    lower[i] = lower[i].max(nl);
                    upper[i] = upper[i].min(nu);
                    transforms.push(Transform::TightenBound {
                        var: i,
                        lower: lower[i],
                        upper: upper[i],
                    });
                    stats.presolve_bounds_tightened += 1;
                    changed = true;
                }
            }
            if lower[i] == upper[i] {
                let mut value = lower[i];
                if kind[i].is_integral() {
                    if (value - value.round()).abs() > TOL {
                        return Ok(PresolveOutcome::Infeasible(format!(
                            "integral variable x{i} pinned at fractional value {value}"
                        )));
                    }
                    value = value.round();
                }
                fixed[i] = Some(value);
                transforms.push(Transform::FixVar { var: i, value });
                stats.presolve_vars_fixed += 1;
                changed = true;
            }
        }

        // --- Pass 2: singleton rows (skip mutable) -----------------------
        for (k, c) in problem.constraints().enumerate() {
            if !alive[k] || mutable[k] {
                continue;
            }
            let mut rhs_eff = c.rhs();
            let mut single: Option<(usize, f64)> = None;
            let mut unfixed = 0usize;
            for (v, coeff) in c.expr().iter() {
                match fixed[v.index()] {
                    Some(value) => rhs_eff -= coeff * value,
                    None => {
                        unfixed += 1;
                        single = Some((v.index(), coeff));
                    }
                }
            }
            match (unfixed, single) {
                (0, _) => {
                    // Constant row: either trivially true (drop) or a proof
                    // of infeasibility.
                    let ok = match c.cmp() {
                        Cmp::Le => 0.0 <= rhs_eff + TOL,
                        Cmp::Ge => 0.0 >= rhs_eff - TOL,
                        Cmp::Eq => rhs_eff.abs() <= TOL,
                    };
                    if !ok {
                        return Ok(PresolveOutcome::Infeasible(format!(
                            "row {k} reduces to the false statement 0 {} {rhs_eff}",
                            c.cmp()
                        )));
                    }
                    alive[k] = false;
                    transforms.push(Transform::DropRow { row: k });
                    stats.presolve_rows_removed += 1;
                    changed = true;
                }
                (1, Some((i, a))) if a.abs() > 1e-12 => {
                    let ratio = rhs_eff / a;
                    match c.cmp() {
                        Cmp::Le | Cmp::Ge => {
                            // `a·x ≤ rhs` is `x ≤ rhs/a` (a>0) or `x ≥ rhs/a`
                            // (a<0); Ge mirrors.
                            let is_upper = match c.cmp() {
                                Cmp::Le => a > 0.0,
                                _ => a < 0.0,
                            };
                            let mut tightened = false;
                            if is_upper {
                                if ratio < upper[i] {
                                    upper[i] = ratio;
                                    tightened = true;
                                }
                            } else if ratio > lower[i] {
                                lower[i] = ratio;
                                tightened = true;
                            }
                            if lower[i] > upper[i] + TOL {
                                return Ok(PresolveOutcome::Infeasible(format!(
                                    "row {k} empties the range of x{i}: [{}, {}]",
                                    lower[i], upper[i]
                                )));
                            }
                            if tightened {
                                transforms.push(Transform::TightenBound {
                                    var: i,
                                    lower: lower[i],
                                    upper: upper[i],
                                });
                                stats.presolve_bounds_tightened += 1;
                            }
                            // The row is now implied by the bound.
                            alive[k] = false;
                            transforms.push(Transform::DropRow { row: k });
                            stats.presolve_rows_removed += 1;
                            changed = true;
                        }
                        Cmp::Eq => {
                            let mut value = ratio;
                            if value < lower[i] - TOL || value > upper[i] + TOL {
                                return Ok(PresolveOutcome::Infeasible(format!(
                                    "row {k} pins x{i} at {value}, outside [{}, {}]",
                                    lower[i], upper[i]
                                )));
                            }
                            if kind[i].is_integral() {
                                if (value - value.round()).abs() > TOL {
                                    return Ok(PresolveOutcome::Infeasible(format!(
                                        "row {k} pins integral x{i} at fractional {value}"
                                    )));
                                }
                                value = value.round();
                            }
                            value = value.clamp(lower[i], upper[i]);
                            lower[i] = value;
                            upper[i] = value;
                            fixed[i] = Some(value);
                            transforms.push(Transform::FixVar { var: i, value });
                            stats.presolve_vars_fixed += 1;
                            alive[k] = false;
                            transforms.push(Transform::DropRow { row: k });
                            stats.presolve_rows_removed += 1;
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
        }

        // --- Pass 3: activity-based redundancy (skip mutable) ------------
        for (k, c) in problem.constraints().enumerate() {
            if !alive[k] || mutable[k] {
                continue;
            }
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for (v, coeff) in c.expr().iter() {
                let i = v.index();
                let (lo, hi) = match fixed[i] {
                    Some(value) => (value, value),
                    None => (lower[i], upper[i]),
                };
                if coeff > 0.0 {
                    min_act += coeff * lo;
                    max_act += coeff * hi;
                } else {
                    min_act += coeff * hi;
                    max_act += coeff * lo;
                }
            }
            let rhs = c.rhs();
            let (redundant, impossible) = match c.cmp() {
                Cmp::Le => (max_act <= rhs + TOL, min_act > rhs + TOL),
                Cmp::Ge => (min_act >= rhs - TOL, max_act < rhs - TOL),
                Cmp::Eq => (
                    min_act >= rhs - TOL && max_act <= rhs + TOL,
                    min_act > rhs + TOL || max_act < rhs - TOL,
                ),
            };
            if impossible {
                return Ok(PresolveOutcome::Infeasible(format!(
                    "row {k} has activity range [{min_act}, {max_act}], \
                     incompatible with {} {rhs}",
                    c.cmp()
                )));
            }
            if redundant {
                alive[k] = false;
                transforms.push(Transform::DropRow { row: k });
                stats.presolve_rows_removed += 1;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // --- Build the reduced problem --------------------------------------
    let mut reduced = Problem::new(problem.direction());
    let mut var_map: Vec<Option<usize>> = vec![None; nvars];
    for (i, v) in problem.vars().enumerate() {
        if fixed[i].is_some() {
            continue;
        }
        let name = problem.var_name(v).to_string();
        let rv = match kind[i] {
            VarKind::Continuous => reduced.continuous(name, lower[i], upper[i]),
            VarKind::Binary if lower[i] == 0.0 && upper[i] == 1.0 => reduced.binary(name),
            _ => reduced.integer(name, lower[i], upper[i]),
        };
        var_map[i] = Some(rv.index());
    }

    let mut row_map: Vec<Option<usize>> = vec![None; nrows];
    let mut row_shift = vec![0.0; nrows];
    let mut row_scale = vec![1.0; nrows];
    for (k, c) in problem.constraints().enumerate() {
        if !alive[k] {
            continue;
        }
        let mut shift = 0.0;
        let mut entries: Vec<(usize, f64)> = Vec::new();
        let mut maxabs = 0.0f64;
        for (v, coeff) in c.expr().iter() {
            match fixed[v.index()] {
                Some(value) => shift += coeff * value,
                None => {
                    entries.push((var_map[v.index()].expect("unfixed var is mapped"), coeff));
                    maxabs = maxabs.max(coeff.abs());
                }
            }
        }
        // Equilibrate toward unit magnitude with an exact power of two.
        let factor = if maxabs > 0.0 {
            let e = (maxabs.log2().round() as i32).clamp(-40, 40);
            (2.0f64).powi(-e)
        } else {
            1.0
        };
        let mut expr = LinExpr::zero();
        for (rv, coeff) in entries {
            expr.add_term(Var(rv), coeff * factor);
        }
        let rhs = (c.rhs() - shift) * factor;
        row_map[k] = Some(reduced.num_constraints());
        row_shift[k] = shift;
        row_scale[k] = factor;
        reduced.constrain_named(c.name().map(str::to_string), expr, c.cmp(), rhs);
        if factor != 1.0 {
            transforms.push(Transform::ScaleRow { row: k, factor });
        }
    }

    let mut objective = LinExpr::zero();
    let mut obj_constant = problem.objective().constant();
    for (v, coeff) in problem.objective().iter() {
        match fixed[v.index()] {
            Some(value) => obj_constant += coeff * value,
            None => {
                objective.add_term(
                    Var(var_map[v.index()].expect("unfixed var is mapped")),
                    coeff,
                );
            }
        }
    }
    objective.add_constant(obj_constant);
    reduced.set_objective(objective);

    Ok(PresolveOutcome::Reduced(Box::new(PresolvedProblem {
        original_vars: nvars,
        reduced,
        transforms,
        var_map,
        row_map,
        row_shift,
        row_scale,
        stats,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduced(problem: &Problem, mutable_rows: &[usize]) -> PresolvedProblem {
        match presolve(problem, mutable_rows).unwrap() {
            PresolveOutcome::Reduced(pp) => *pp,
            PresolveOutcome::Infeasible(why) => panic!("unexpectedly infeasible: {why}"),
        }
    }

    #[test]
    fn fixed_variables_are_substituted_and_restored() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 2.0, 2.0); // fixed by bounds
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Le, 7.0);
        p.set_objective(3.0 * x + y);
        let pp = reduced(&p, &[]);
        assert_eq!(pp.reduced().num_vars(), 1);
        assert_eq!(pp.stats().presolve_vars_fixed, 1);
        // After substitution the row is a singleton (y ≤ 5): it becomes
        // a bound and disappears.
        assert_eq!(pp.reduced().num_constraints(), 0);
        let yv = pp.reduced().vars().next().unwrap();
        assert_eq!(pp.reduced().var_bounds(yv), (0.0, 5.0));
        // Objective value is preserved: 3·2 folded into the constant.
        assert_eq!(pp.reduced().objective().constant(), 6.0);
        // Restore maps [y] back to [x, y].
        let full = pp.restore(&[5.0]);
        assert_eq!(full, vec![2.0, 5.0]);
    }

    #[test]
    fn singleton_rows_become_bounds_and_disappear() {
        let mut p = Problem::minimize();
        let x = p.continuous("x", 0.0, 100.0);
        let y = p.continuous("y", 0.0, 100.0);
        p.constrain(2.0 * x, Cmp::Le, 10.0); // x ≤ 5
        p.constrain(-1.0 * y, Cmp::Le, -3.0); // y ≥ 3
        p.constrain(x + y, Cmp::Ge, 1.0); // now redundant
        p.set_objective(x + y);
        let pp = reduced(&p, &[]);
        assert_eq!(pp.reduced().num_constraints(), 0);
        assert_eq!(pp.stats().presolve_rows_removed, 3);
        let xv = pp.reduced().vars().next().unwrap();
        assert_eq!(pp.reduced().var_bounds(xv), (0.0, 5.0));
    }

    #[test]
    fn equality_singleton_fixes_the_variable() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(2.0 * x, Cmp::Eq, 6.0);
        p.constrain(x + y, Cmp::Le, 8.0);
        p.set_objective(x + y);
        let pp = reduced(&p, &[]);
        assert_eq!(pp.reduced().num_vars(), 1);
        let full = pp.restore(&[4.0]);
        assert_eq!(full, vec![3.0, 4.0]);
    }

    #[test]
    fn integral_bounds_snap() {
        let mut p = Problem::maximize();
        let n = p.integer("n", 0.3, 2.7);
        p.set_objective(1.0 * n);
        let pp = reduced(&p, &[]);
        let nv = pp.reduced().vars().next().unwrap();
        assert_eq!(pp.reduced().var_bounds(nv), (1.0, 2.0));
        assert_eq!(pp.stats().presolve_bounds_tightened, 1);
    }

    #[test]
    fn constant_false_row_proves_infeasibility() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 1.0, 1.0);
        p.constrain(1.0 * x, Cmp::Ge, 2.0);
        p.set_objective(1.0 * x);
        match presolve(&p, &[]).unwrap() {
            PresolveOutcome::Infeasible(_) => {}
            PresolveOutcome::Reduced(_) => panic!("expected infeasibility proof"),
        }
    }

    #[test]
    fn activity_redundancy_detects_both_directions() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let y = p.continuous("y", 0.0, 1.0);
        p.constrain(x + y, Cmp::Le, 5.0); // always true
        p.set_objective(x + y);
        let pp = reduced(&p, &[]);
        assert_eq!(pp.reduced().num_constraints(), 0);

        let mut q = Problem::maximize();
        let a = q.continuous("a", 0.0, 1.0);
        q.constrain(1.0 * a, Cmp::Ge, 3.0); // never true
        q.set_objective(1.0 * a);
        match presolve(&q, &[]).unwrap() {
            PresolveOutcome::Infeasible(_) => {}
            PresolveOutcome::Reduced(_) => panic!("expected infeasibility proof"),
        }
    }

    #[test]
    fn equilibration_uses_exact_powers_of_two() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(1024.0 * x + 512.0 * y, Cmp::Le, 4096.0);
        p.set_objective(x + y);
        let pp = reduced(&p, &[]);
        let row = pp.reduced().constraints().next().unwrap();
        let xv = pp.reduced().vars().next().unwrap();
        assert_eq!(row.expr().coefficient(xv), 1.0);
        assert_eq!(row.rhs(), 4.0);
        assert!(pp
            .transforms()
            .iter()
            .any(|t| matches!(t, Transform::ScaleRow { factor, .. } if *factor == 1.0 / 1024.0)));
    }

    #[test]
    fn mutable_rows_survive_and_track_rhs_updates() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 3.0, 3.0); // fixed, shifts the row
        let y = p.continuous("y", 0.0, 100.0);
        // A budget-style row that would otherwise be droppable.
        p.constrain_named(Some("C7_0"), x + y, Cmp::Le, 10.0);
        p.set_objective(1.0 * y);
        let mut pp = reduced(&p, &[0]);
        assert_eq!(pp.reduced().num_constraints(), 1);
        // y ≤ 10 − 3 = 7 initially.
        assert!((pp.reduced().constraints().next().unwrap().rhs() - 7.0).abs() < 1e-12);
        pp.update_rhs(0, 20.0).unwrap();
        assert!((pp.reduced().constraints().next().unwrap().rhs() - 17.0).abs() < 1e-12);
        // Name survives for debugging/lint layers.
        assert_eq!(
            pp.reduced().constraints().next().unwrap().name(),
            Some("C7_0")
        );
    }

    #[test]
    fn update_rhs_rejects_eliminated_rows() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        p.constrain(1.0 * x, Cmp::Le, 5.0); // redundant, dropped
        p.set_objective(1.0 * x);
        let mut pp = reduced(&p, &[]);
        assert!(pp.update_rhs(0, 6.0).is_err());
        assert!(pp.update_rhs(7, 6.0).is_err());
    }

    #[test]
    fn corrupting_a_transform_corrupts_restore() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 4.0, 4.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Le, 9.0);
        p.set_objective(x + y);
        let mut pp = reduced(&p, &[]);
        let honest = pp.restore(&[5.0]);
        assert_eq!(honest, vec![4.0, 5.0]);
        for t in pp.transforms_mut() {
            if let Transform::FixVar { value, .. } = t {
                *value += 1.0;
            }
        }
        let corrupted = pp.restore(&[5.0]);
        assert_eq!(corrupted, vec![5.0, 5.0]);
        assert!(!p.is_feasible(&corrupted, 1e-9));
    }

    #[test]
    fn mutable_row_index_out_of_range_is_invalid() {
        let p = Problem::maximize();
        assert!(matches!(
            presolve(&p, &[3]),
            Err(MilpError::InvalidProblem(_))
        ));
    }
}
