//! Certifying branch & bound: proves `objective ≤ claimed` with a
//! machine-checkable tree.
//!
//! Unlike the production solver ([`crate::branch`]), which computes in
//! `f64` and is trusted only through after-the-fact audits, this module
//! *constructs* a [`BbTree`] certificate in exact rational arithmetic:
//! every leaf carries either an LP-dual bound certificate or a Farkas
//! infeasibility certificate produced by [`crate::exact`], and every
//! branch records the exact integral split. The tree is then verifiable
//! by [`crate::audit::verify_bb_tree`] — code that shares nothing with
//! this finder beyond the `≤`-normal-form contract.
//!
//! This is the VIPR-style proof layer for the MILP path of the analysis:
//! the production engine claims a window delay bound, and this module
//! turns that claim into a proof object (or fails loudly — it can never
//! produce an unsound certificate, because it does not *check* anything,
//! it only *finds* objects the independent checker will re-derive).

use crate::audit::{le_normal_form, BbNode, BbTree, InfeasibilityCertificate, NormalForm};
use crate::exact::{solve_dual_exact, DualOutcome, ExactRow};
use crate::problem::{Objective, Problem};
use crate::rational::Rational;

/// Resource limits for certificate construction.
#[derive(Debug, Clone)]
pub struct CertifyLimits {
    /// Maximum number of tree nodes before the finder gives up.
    pub max_nodes: usize,
}

impl Default for CertifyLimits {
    fn default() -> Self {
        CertifyLimits { max_nodes: 5_000 }
    }
}

/// Builds a branch-and-bound certificate proving `objective ≤ claimed`.
///
/// `problem` must be a maximization problem. The returned tree passes
/// [`crate::audit::verify_bb_tree`] for the same `(problem, claimed)`
/// pair.
///
/// # Errors
///
/// Returns an error string (stable `certify.*` / `exact.*` prefix) when
/// construction is impossible: the claim is *refuted* by an integral
/// feasible point with a larger objective (`certify.bound-understates` —
/// a genuine soundness alarm for the caller's engine), the node or pivot
/// caps are hit, or rational arithmetic overflows. Failure to build a
/// certificate never implies the claim is false unless the error says so.
pub fn certify_upper_bound(
    problem: &Problem,
    claimed: Rational,
    limits: &CertifyLimits,
) -> Result<BbTree, String> {
    if problem.direction() != Objective::Maximize {
        return Err("certify.direction: only maximization problems are supported".to_string());
    }
    let n = problem.num_vars();
    let mut objective = Vec::with_capacity(n);
    for j in 0..n {
        let c = problem.objective().coefficient(crate::expr::Var(j));
        objective.push(
            Rational::from_f64(c)
                .ok_or_else(|| format!("certify.overflow: objective coefficient {c}"))?,
        );
    }
    let obj_const = Rational::from_f64(problem.objective().constant())
        .ok_or("certify.overflow: objective constant")?;
    let root_bounds: Vec<(f64, f64)> = (0..n)
        .map(|j| problem.var_bounds(crate::expr::Var(j)))
        .collect();
    let integral: Vec<bool> = (0..n)
        .map(|j| problem.var_kind(crate::expr::Var(j)).is_integral())
        .collect();

    let mut ctx = Ctx {
        problem,
        claimed,
        objective,
        obj_const,
        integral,
        max_nodes: limits.max_nodes,
        nodes: Vec::new(),
    };
    ctx.build(root_bounds)?;
    Ok(BbTree { nodes: ctx.nodes })
}

struct Ctx<'a> {
    problem: &'a Problem,
    claimed: Rational,
    objective: Vec<Rational>,
    obj_const: Rational,
    integral: Vec<bool>,
    max_nodes: usize,
    nodes: Vec<BbNode>,
}

impl Ctx<'_> {
    /// Builds the subtree for the node with the given variable bounds and
    /// returns its index in `nodes`.
    fn build(&mut self, bounds: Vec<(f64, f64)>) -> Result<usize, String> {
        if self.nodes.len() >= self.max_nodes {
            return Err(format!(
                "certify.node-limit: exceeded {} certificate nodes",
                self.max_nodes
            ));
        }
        let node_problem = apply_bounds(self.problem, &bounds);
        let rows = match le_normal_form(&node_problem).map_err(|e| format!("certify: {e}"))? {
            NormalForm::EmptyBounds { var, .. } => {
                self.nodes.push(BbNode::Infeasible {
                    certificate: InfeasibilityCertificate::EmptyBounds { var },
                });
                return Ok(self.nodes.len() - 1);
            }
            NormalForm::Rows(rows) => rows,
        };
        let exact_rows: Vec<ExactRow> = rows.into_iter().map(|r| (r.coeffs, r.rhs)).collect();
        match solve_dual_exact(&exact_rows, &self.objective)? {
            DualOutcome::PrimalInfeasible { farkas } => {
                self.nodes.push(BbNode::Infeasible {
                    certificate: InfeasibilityCertificate::Farkas {
                        multipliers: farkas,
                    },
                });
                Ok(self.nodes.len() - 1)
            }
            DualOutcome::Bounded {
                multipliers,
                bound,
                primal,
            } => {
                let total = bound
                    .checked_add(self.obj_const)
                    .ok_or("certify.overflow: bound total")?;
                if total <= self.claimed {
                    self.nodes.push(BbNode::Bounded { multipliers });
                    return Ok(self.nodes.len() - 1);
                }
                // Bound above the claim: branch on a fractional integral
                // variable; if none exists the LP vertex is an integral
                // feasible point refuting the claim.
                let split = primal
                    .iter()
                    .enumerate()
                    .find(|(j, x)| self.integral[*j] && !x.is_integer());
                let Some((var, x)) = split else {
                    return Err(format!(
                        "certify.bound-understates: integral point with objective {total} \
                         (~{}) exceeds the claimed bound {} (~{})",
                        total.to_f64(),
                        self.claimed,
                        self.claimed.to_f64()
                    ));
                };
                let floor = x.floor();
                let split_f = floor as f64;
                if split_f as i128 != floor {
                    return Err(format!(
                        "certify.overflow: split point {floor} is not representable"
                    ));
                }
                let placeholder = self.nodes.len();
                // Reserve the branch slot so child indices are final.
                self.nodes.push(BbNode::Branch {
                    var,
                    floor,
                    down: usize::MAX,
                    up: usize::MAX,
                });
                let (lo, hi) = bounds[var];
                let mut down_bounds = bounds.clone();
                down_bounds[var] = (lo, hi.min(split_f));
                let mut up_bounds = bounds;
                up_bounds[var] = (lo.max(split_f + 1.0), hi);
                let down = self.build(down_bounds)?;
                let up = self.build(up_bounds)?;
                self.nodes[placeholder] = BbNode::Branch {
                    var,
                    floor,
                    down,
                    up,
                };
                Ok(placeholder)
            }
        }
    }
}

fn apply_bounds(problem: &Problem, bounds: &[(f64, f64)]) -> Problem {
    let mut p = problem.clone();
    for (j, &(lo, hi)) in bounds.iter().enumerate() {
        p.set_var_bounds(crate::expr::Var(j), lo, hi);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::verify_bb_tree;
    use crate::problem::Cmp;

    fn q(v: i128) -> Rational {
        Rational::from_int(v)
    }

    /// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, y integer: optimum 12.
    fn doc_example() -> Problem {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.integer("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Le, 4.0);
        p.constrain(x + 3.0 * y, Cmp::Le, 6.0);
        p.set_objective(3.0 * x + 2.0 * y);
        p
    }

    #[test]
    fn integral_lp_optimum_needs_a_single_leaf() {
        let p = doc_example();
        let tree = certify_upper_bound(&p, q(12), &CertifyLimits::default()).expect("certify");
        assert_eq!(tree.nodes.len(), 1, "{tree:?}");
        verify_bb_tree(&p, &tree, q(12)).expect("tree must verify");
    }

    #[test]
    fn fractional_relaxation_branches_and_verifies() {
        // max x s.t. 2x <= 3, x integer in [0, 10]: LP bound 3/2, MILP 1.
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.0, 10.0);
        p.constrain(2.0 * x, Cmp::Le, 3.0);
        p.set_objective(1.0 * x);
        let tree = certify_upper_bound(&p, q(1), &CertifyLimits::default()).expect("certify");
        assert!(
            tree.nodes.len() >= 3,
            "expected a branch with two children: {tree:?}"
        );
        assert!(matches!(
            tree.nodes[0],
            BbNode::Branch {
                var: 0,
                floor: 1,
                ..
            }
        ));
        verify_bb_tree(&p, &tree, q(1)).expect("tree must verify");
    }

    #[test]
    fn understated_claim_is_refuted_not_certified() {
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.0, 10.0);
        p.constrain(2.0 * x, Cmp::Le, 3.0);
        p.set_objective(1.0 * x);
        let err = certify_upper_bound(&p, q(0), &CertifyLimits::default()).unwrap_err();
        assert!(err.starts_with("certify.bound-understates"), "{err}");
    }

    #[test]
    fn overstated_claim_still_certifies() {
        let p = doc_example();
        let tree = certify_upper_bound(&p, q(50), &CertifyLimits::default()).expect("certify");
        verify_bb_tree(&p, &tree, q(50)).expect("tree must verify");
        // ... but the same tree must not verify a tighter claim.
        assert!(verify_bb_tree(&p, &tree, q(11)).is_err());
    }

    #[test]
    fn truncated_tree_is_rejected() {
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.0, 10.0);
        p.constrain(2.0 * x, Cmp::Le, 3.0);
        p.set_objective(1.0 * x);
        let mut tree = certify_upper_bound(&p, q(1), &CertifyLimits::default()).expect("certify");
        tree.nodes.truncate(tree.nodes.len() - 1);
        let err = verify_bb_tree(&p, &tree, q(1)).unwrap_err();
        assert!(err.starts_with("bbtree.truncated"), "{err}");
    }

    #[test]
    fn infeasible_branch_side_carries_farkas_leaf() {
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.0, 10.0);
        p.constrain(2.0 * x, Cmp::Le, 3.0);
        p.set_objective(1.0 * x);
        let tree = certify_upper_bound(&p, q(1), &CertifyLimits::default()).expect("certify");
        assert!(
            tree.nodes
                .iter()
                .any(|n| matches!(n, BbNode::Infeasible { .. })),
            "up branch (x >= 2 with 2x <= 3) must be an infeasibility leaf: {tree:?}"
        );
    }

    #[test]
    fn node_limit_fails_closed() {
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.0, 10.0);
        p.constrain(2.0 * x, Cmp::Le, 3.0);
        p.set_objective(1.0 * x);
        let err = certify_upper_bound(&p, q(1), &CertifyLimits { max_nodes: 1 }).unwrap_err();
        assert!(err.starts_with("certify.node-limit"), "{err}");
    }
}
