//! Branch & bound for mixed-integer programs, generic over the LP
//! backend and the search strategy.
//!
//! Node relaxations are priced through the [`LpBackend`] trait, so the
//! same driver runs on the dense reference simplex or the sparse revised
//! simplex. When the backend exports a basis (the revised one does),
//! every child node warm-starts from its parent's optimal basis: the
//! child differs only in one variable bound, so a few dual/primal repair
//! pivots usually replace a full cold solve. The first root basis is also
//! returned ([`BbRun::root_basis`]) so callers re-solving a structurally
//! identical problem — the incremental window formulation across WCRT
//! fixed-point rounds — can warm-start the *next* solve's root too.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::backend::{backend_for, BackendKind, Basis, LpBackend, WarmStart};
use crate::error::MilpError;
use crate::expr::Var;
use crate::problem::{Objective, Problem};
use crate::simplex::LpOutcome;
use crate::solution::{MilpSolution, SolveStatus};
use crate::stats::SolverStats;

/// Search limits for [`BranchAndBound`].
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Relative/absolute optimality gap at which a node is fathomed.
    pub gap_tol: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_nodes: 200_000,
            gap_tol: 1e-6,
            int_tol: 1e-6,
        }
    }
}

/// How the branching variable is chosen at a fractional node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Branch on the integral variable whose LP value is closest to
    /// `.5` (the classic most-fractional rule).
    #[default]
    MostFractional,
    /// Branch on the lowest-index fractional integral variable (cheap,
    /// deterministic; useful as a tie-free baseline).
    FirstFractional,
}

/// How open nodes are ordered for exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeOrder {
    /// Pop the node with the best inherited LP bound (deeper first on
    /// ties, diving toward incumbents).
    #[default]
    BestFirst,
    /// Pop the deepest node first (depth-first dive; best bound breaks
    /// ties). Finds incumbents early at the cost of weaker pruning.
    DepthFirst,
}

/// A branching/node-selection strategy for [`BranchAndBound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Strategy {
    /// Branching-variable rule.
    pub branch: BranchRule,
    /// Node exploration order.
    pub order: NodeOrder,
}

/// Result of [`BranchAndBound::solve_with`]: the solution plus the root
/// relaxation's optimal basis (when the backend exports bases).
#[derive(Debug, Clone)]
pub struct BbRun {
    /// The MILP solution.
    pub solution: MilpSolution,
    /// Optimal basis of the root LP relaxation, for warm-starting the
    /// next structurally identical solve.
    pub root_basis: Option<Basis>,
}

/// A search node: variable-bound overrides plus its parent's LP bound
/// and (when available) the parent's optimal basis for warm-starting.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    /// LP bound inherited from the parent (internal maximization scale).
    bound: f64,
    depth: usize,
    /// Parent's optimal basis, shared between both children.
    basis: Option<Rc<Basis>>,
    /// Heap discipline this node is ordered under (uniform per solve).
    order: NodeOrder,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` keeps the ordering total even if an LP bound is NaN
        // (a `partial_cmp(..).unwrap_or(Equal)` here would silently break
        // transitivity and corrupt the heap). NaN sorts above +∞, so a
        // NaN-bound node is popped first and then fathomed or re-bounded
        // by its own LP solve — never lost.
        match self.order {
            NodeOrder::BestFirst => self
                .bound
                .total_cmp(&other.bound)
                .then(self.depth.cmp(&other.depth)),
            NodeOrder::DepthFirst => self
                .depth
                .cmp(&other.depth)
                .then(self.bound.total_cmp(&other.bound)),
        }
    }
}

/// Branch & bound driver.
///
/// Usually accessed through [`Solver`](crate::Solver); use directly to
/// customize [`Limits`], the [`Strategy`] or the [`BackendKind`].
#[derive(Debug, Clone, Default)]
pub struct BranchAndBound {
    limits: Limits,
    strategy: Strategy,
    backend: BackendKind,
}

impl BranchAndBound {
    /// Creates a driver with the given limits, default strategy and the
    /// dense reference backend.
    pub fn new(limits: Limits) -> Self {
        BranchAndBound {
            limits,
            strategy: Strategy::default(),
            backend: BackendKind::default(),
        }
    }

    /// Selects the LP backend used by [`solve`](Self::solve).
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the branching/node-selection strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Solves a mixed-integer program with the configured backend.
    ///
    /// # Errors
    ///
    /// * [`MilpError::Infeasible`] — no integer-feasible point exists.
    /// * [`MilpError::Unbounded`] — the root relaxation is unbounded.
    /// * [`MilpError::NumericalTrouble`] — the LP backend failed internally.
    /// * [`MilpError::InvalidProblem`] — malformed input.
    ///
    /// Hitting [`Limits::max_nodes`] with an incumbent in hand is reported
    /// via [`SolveStatus::LimitReached`], not an error; without an
    /// incumbent it is reported as `LimitReached` with NaN objective only
    /// if a feasible point was never found — in that case the solution
    /// carries the proven bound and an empty value vector.
    pub fn solve(&self, problem: &Problem) -> Result<MilpSolution, MilpError> {
        let backend = backend_for(self.backend);
        self.solve_with(problem, backend.as_ref(), None)
            .map(|run| run.solution)
    }

    /// [`solve`](Self::solve) against an explicit backend, optionally
    /// warm-starting the root relaxation from `root_basis`, and returning
    /// the root's optimal basis for the caller's next solve.
    ///
    /// # Errors
    ///
    /// See [`solve`](Self::solve).
    pub fn solve_with(
        &self,
        problem: &Problem,
        backend: &dyn LpBackend,
        root_basis: Option<&Basis>,
    ) -> Result<BbRun, MilpError> {
        problem.validate()?;
        // Internal convention: maximize. Flip sign for minimization.
        let sign = match problem.direction() {
            Objective::Maximize => 1.0,
            Objective::Minimize => -1.0,
        };

        let root_bounds: Vec<(f64, f64)> = (0..problem.num_vars())
            .map(|i| {
                let (lo, hi) = problem.var_bounds(Var(i));
                // Tighten integral variable bounds to integers up front.
                if problem.var_kind(Var(i)).is_integral() {
                    (finite_ceil(lo), finite_floor(hi))
                } else {
                    (lo, hi)
                }
            })
            .collect();
        for &(lo, hi) in &root_bounds {
            if lo > hi {
                return Err(MilpError::Infeasible);
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bounds: root_bounds,
            bound: f64::INFINITY,
            depth: 0,
            basis: None,
            order: self.strategy.order,
        });

        let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, internal obj)
        let mut nodes = 0usize;
        let mut limit_hit = false;
        let mut stats = SolverStats::default();
        let mut out_root_basis: Option<Basis> = None;

        while let Some(node) = heap.pop() {
            // Fathom against incumbent using the inherited bound.
            if let Some((_, best)) = &incumbent {
                if node.bound <= *best + self.limits.gap_tol {
                    continue;
                }
            }
            if nodes >= self.limits.max_nodes {
                limit_hit = true;
                // Push back so the remaining-tree bound includes this node.
                heap.push(node);
                break;
            }
            nodes += 1;

            // Warm start: parent basis if inherited, else the caller's
            // root basis for the root node.
            let warm = match &node.basis {
                Some(b) => Some(b.as_ref()),
                None if node.depth == 0 => root_basis,
                None => None,
            };
            let run = backend.solve_lp(problem, &node.bounds, warm)?;
            stats.lp_solves += 1;
            stats.lp_pivots += run.pivots;
            match run.warm {
                WarmStart::Hit => {
                    stats.warm_start_attempts += 1;
                    stats.warm_start_hits += 1;
                }
                WarmStart::Miss => stats.warm_start_attempts += 1,
                WarmStart::NotAttempted => {}
            }
            let lp = match run.outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => {
                    // With all integral vars bounded this means the
                    // continuous part is unbounded — genuinely unbounded.
                    return Err(MilpError::Unbounded);
                }
                LpOutcome::Optimal(s) => s,
            };
            if node.depth == 0 && out_root_basis.is_none() {
                out_root_basis = run.basis.clone();
            }
            let child_basis = run.basis.map(Rc::new);
            let lp_bound = sign * lp.objective();
            if let Some((_, best)) = &incumbent {
                if lp_bound <= *best + self.limits.gap_tol {
                    continue;
                }
            }

            // Branching variable per the configured rule.
            let mut branch_var: Option<(usize, f64, f64)> = None; // (idx, value, score)
            for v in problem.integral_vars() {
                let val = lp.value(v);
                let frac = (val - val.round()).abs();
                if frac > self.limits.int_tol {
                    match self.strategy.branch {
                        BranchRule::MostFractional => {
                            let dist = (val - val.floor() - 0.5).abs(); // 0 = most fractional
                            match branch_var {
                                Some((_, _, d)) if d <= dist => {}
                                _ => branch_var = Some((v.index(), val, dist)),
                            }
                        }
                        BranchRule::FirstFractional => {
                            branch_var = Some((v.index(), val, 0.0));
                            break;
                        }
                    }
                }
            }

            match branch_var {
                None => {
                    // Integer feasible: candidate incumbent.
                    let rounded = round_integrals(problem, lp.values());
                    if problem.is_feasible(&rounded, 1e-6) {
                        let obj = sign * problem.objective().evaluate(&rounded);
                        if incumbent.as_ref().is_none_or(|(_, b)| obj > *b) {
                            incumbent = Some((rounded, obj));
                        }
                    } else {
                        // Within int_tol but rounding broke feasibility:
                        // extremely rare; treat the LP point itself.
                        let obj = lp_bound;
                        if incumbent.as_ref().is_none_or(|(_, b)| obj > *b) {
                            incumbent = Some((lp.values().to_vec(), obj));
                        }
                    }
                }
                Some((idx, val, _)) => {
                    // Rounding heuristic at the root for an early incumbent.
                    if node.depth == 0 {
                        let rounded = round_integrals(problem, lp.values());
                        if problem.is_feasible(&rounded, 1e-6) {
                            let obj = sign * problem.objective().evaluate(&rounded);
                            if incumbent.as_ref().is_none_or(|(_, b)| obj > *b) {
                                incumbent = Some((rounded, obj));
                            }
                        }
                    }
                    let (lo, hi) = node.bounds[idx];
                    let floor = val.floor();
                    // Down child: x <= floor(val).
                    if floor >= lo - 1e-12 {
                        let mut b = node.bounds.clone();
                        b[idx] = (lo, floor.min(hi));
                        if b[idx].0 <= b[idx].1 {
                            heap.push(Node {
                                bounds: b,
                                bound: lp_bound,
                                depth: node.depth + 1,
                                basis: child_basis.clone(),
                                order: self.strategy.order,
                            });
                        }
                    }
                    // Up child: x >= ceil(val).
                    let ceil = val.ceil();
                    if ceil <= hi + 1e-12 {
                        let mut b = node.bounds.clone();
                        b[idx] = (ceil.max(lo), hi);
                        if b[idx].0 <= b[idx].1 {
                            heap.push(Node {
                                bounds: b,
                                bound: lp_bound,
                                depth: node.depth + 1,
                                basis: child_basis,
                                order: self.strategy.order,
                            });
                        }
                    }
                }
            }
        }

        stats.bb_nodes = nodes as u64;
        let remaining_bound = heap
            .iter()
            .map(|n| n.bound)
            .fold(f64::NEG_INFINITY, f64::max);

        let solution = match incumbent {
            Some((values, internal_obj)) => {
                let status = if limit_hit && remaining_bound > internal_obj + self.limits.gap_tol {
                    SolveStatus::LimitReached {
                        bound: sign * remaining_bound,
                    }
                } else {
                    SolveStatus::Optimal
                };
                MilpSolution {
                    objective: sign * internal_obj,
                    values,
                    status,
                    stats,
                }
            }
            None => {
                if limit_hit {
                    MilpSolution {
                        values: Vec::new(),
                        objective: f64::NAN,
                        status: SolveStatus::LimitReached {
                            bound: sign * remaining_bound,
                        },
                        stats,
                    }
                } else {
                    return Err(MilpError::Infeasible);
                }
            }
        };
        Ok(BbRun {
            solution,
            root_basis: out_root_basis,
        })
    }
}

fn round_integrals(problem: &Problem, values: &[f64]) -> Vec<f64> {
    let mut out = values.to_vec();
    for v in problem.integral_vars() {
        out[v.index()] = out[v.index()].round();
    }
    out
}

fn finite_ceil(v: f64) -> f64 {
    if v.is_finite() {
        v.ceil()
    } else {
        v
    }
}

fn finite_floor(v: f64) -> f64 {
    if v.is_finite() {
        v.floor()
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RevisedBackend;
    use crate::problem::Cmp;
    use crate::Solver;

    #[test]
    fn pure_binary_knapsack() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6 → a + c (17) vs b + c (20)
        let mut p = Problem::maximize();
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.constrain(3.0 * a + 4.0 * b + 2.0 * c, Cmp::Le, 6.0);
        p.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        let s = Solver::new().solve(&p).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 20.0).abs() < 1e-6);
        assert!(s.value(b) > 0.5 && s.value(c) > 0.5 && s.value(a) < 0.5);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers → obj 2 (LP gives 2.5)
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.0, 10.0);
        let y = p.integer("y", 0.0, 10.0);
        p.constrain(2.0 * x + 2.0 * y, Cmp::Le, 5.0);
        p.set_objective(x + y);
        let s = Solver::new().solve(&p).unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_direction() {
        // min 3x + 2y s.t. x + y >= 3, x,y integer >= 0 → y=3, obj 6
        let mut p = Problem::minimize();
        let x = p.integer("x", 0.0, 10.0);
        let y = p.integer("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Ge, 3.0);
        p.set_objective(3.0 * x + 2.0 * y);
        let s = Solver::new().solve(&p).unwrap();
        assert!((s.objective() - 6.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_program() {
        // 0.4 <= x <= 0.6, x binary → infeasible after bound tightening.
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.4, 0.6);
        p.set_objective(1.0 * x);
        assert_eq!(Solver::new().solve(&p), Err(MilpError::Infeasible));
    }

    #[test]
    fn infeasible_via_constraints() {
        let mut p = Problem::maximize();
        let x = p.binary("x");
        p.constrain(1.0 * x, Cmp::Ge, 2.0);
        p.set_objective(1.0 * x);
        assert_eq!(Solver::new().solve(&p), Err(MilpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let b = p.binary("b");
        p.set_objective(x + b);
        assert_eq!(Solver::new().solve(&p), Err(MilpError::Unbounded));
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + 3b s.t. x + 4b <= 5, x <= 3 → b=0: x=3 obj 6;
        // b=1: x=1 obj 5. Optimal 6.
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 3.0);
        let b = p.binary("b");
        p.constrain(x + 4.0 * b, Cmp::Le, 5.0);
        p.set_objective(2.0 * x + 3.0 * b);
        let s = Solver::new().solve(&p).unwrap();
        assert!((s.objective() - 6.0).abs() < 1e-6);
    }

    fn twelve_item_knapsack() -> Problem {
        let mut p = Problem::maximize();
        let vars: Vec<_> = (0..12).map(|i| p.binary(format!("b{i}"))).collect();
        let weights = [5.0, 7.0, 4.0, 3.0, 9.0, 6.0, 5.5, 4.5, 8.0, 2.0, 7.5, 3.5];
        let mut cap = crate::LinExpr::zero();
        let mut obj = crate::LinExpr::zero();
        for (v, w) in vars.iter().zip(weights) {
            cap += *v * w;
            obj += *v * (w + 0.9);
        }
        p.constrain(cap, Cmp::Le, 20.0);
        p.set_objective(obj);
        p
    }

    #[test]
    fn node_limit_reports_bound() {
        // A problem forcing branching with a tiny node budget.
        let p = twelve_item_knapsack();
        let limited = BranchAndBound::new(Limits {
            max_nodes: 2,
            ..Limits::default()
        });
        let s = limited.solve(&p).unwrap();
        // The proven bound must dominate the true optimum.
        let exact = Solver::new().solve(&p).unwrap();
        assert!(exact.is_optimal());
        assert!(s.proven_bound() >= exact.objective() - 1e-6);
    }

    #[test]
    fn strategies_agree_on_the_optimum() {
        let p = twelve_item_knapsack();
        let reference = Solver::new().solve(&p).unwrap();
        for branch in [BranchRule::MostFractional, BranchRule::FirstFractional] {
            for order in [NodeOrder::BestFirst, NodeOrder::DepthFirst] {
                for backend in [BackendKind::Dense, BackendKind::Revised] {
                    let bb = BranchAndBound::new(Limits::default())
                        .with_strategy(Strategy { branch, order })
                        .with_backend(backend);
                    let s = bb.solve(&p).unwrap();
                    assert!(
                        (s.objective() - reference.objective()).abs() < 1e-6,
                        "{branch:?}/{order:?}/{backend:?} found {} instead of {}",
                        s.objective(),
                        reference.objective()
                    );
                }
            }
        }
    }

    #[test]
    fn children_warm_start_from_parent_bases() {
        let p = twelve_item_knapsack();
        let bb = BranchAndBound::new(Limits::default());
        let run = bb.solve_with(&p, &RevisedBackend::default(), None).unwrap();
        let stats = run.solution.stats();
        assert!(stats.bb_nodes > 1, "knapsack must branch");
        assert_eq!(stats.lp_solves, stats.bb_nodes);
        assert!(
            stats.warm_start_hits > 0,
            "children inherit parent bases: {stats}"
        );
        assert!(run.root_basis.is_some(), "root basis is exported");
        // Warm-starting a fresh solve from the exported root basis is a
        // recorded attempt too (the fixed-point-round scenario).
        let rerun = bb
            .solve_with(&p, &RevisedBackend::default(), run.root_basis.as_ref())
            .unwrap();
        assert!(rerun.solution.stats().warm_start_hits >= stats.warm_start_hits);
        assert!((rerun.solution.objective() - run.solution.objective()).abs() < 1e-9);
    }

    #[test]
    fn node_ordering_is_total_with_nan_bounds() {
        let mk = |bound: f64, depth: usize| Node {
            bounds: Vec::new(),
            bound,
            depth,
            basis: None,
            order: NodeOrder::BestFirst,
        };
        let nan = mk(f64::NAN, 0);
        let fin = mk(5.0, 3);
        // The old `partial_cmp(..).unwrap_or(Equal)` made NaN compare
        // Equal to everything, breaking antisymmetry (and with it the
        // BinaryHeap invariants). `total_cmp` sorts NaN above +∞.
        assert_eq!(nan.cmp(&fin), Ordering::Greater);
        assert_eq!(fin.cmp(&nan), Ordering::Less);
        assert_eq!(nan.cmp(&mk(f64::NAN, 0)), Ordering::Equal);
        assert_eq!(nan.cmp(&mk(f64::INFINITY, 0)), Ordering::Greater);
        // PartialEq must agree with Ord (Eq is derived from it).
        assert!(nan == mk(f64::NAN, 0));
        assert!(nan != fin);
        assert!(mk(5.0, 1) != mk(5.0, 2));
        // A heap seeded with a NaN bound still drains in total order.
        let mut heap = BinaryHeap::from(vec![
            mk(1.0, 0),
            mk(f64::NAN, 1),
            mk(7.0, 2),
            mk(f64::NEG_INFINITY, 0),
            mk(f64::INFINITY, 0),
        ]);
        let mut popped = Vec::new();
        while let Some(n) = heap.pop() {
            popped.push(n.bound);
        }
        assert_eq!(popped.len(), 5);
        assert!(popped[0].is_nan());
        assert_eq!(popped[1], f64::INFINITY);
        assert_eq!(popped[2], 7.0);
        assert_eq!(popped[3], 1.0);
        assert_eq!(popped[4], f64::NEG_INFINITY);
    }

    #[test]
    fn depth_first_ordering_prefers_deeper_nodes() {
        let mk = |bound: f64, depth: usize| Node {
            bounds: Vec::new(),
            bound,
            depth,
            basis: None,
            order: NodeOrder::DepthFirst,
        };
        assert_eq!(mk(1.0, 5).cmp(&mk(100.0, 2)), Ordering::Greater);
        assert_eq!(mk(1.0, 3).cmp(&mk(2.0, 3)), Ordering::Less);
    }

    #[test]
    fn equality_constrained_assignment() {
        // 2x2 assignment: minimize cost, each row/col exactly one.
        let costs = [[4.0, 2.0], [1.0, 5.0]];
        let mut p = Problem::minimize();
        let mut x = vec![];
        for i in 0..2 {
            for j in 0..2 {
                x.push(p.binary(format!("x{i}{j}")));
            }
        }
        for i in 0..2 {
            p.constrain(x[2 * i] + x[2 * i + 1], Cmp::Eq, 1.0);
            p.constrain(x[i] + x[i + 2], Cmp::Eq, 1.0);
        }
        p.set_objective(
            costs[0][0] * x[0] + costs[0][1] * x[1] + costs[1][0] * x[2] + costs[1][1] * x[3],
        );
        let s = Solver::new().solve(&p).unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-6); // 2 + 1
    }

    #[test]
    fn big_m_disjunction() {
        // y >= x - M(1-b), y >= -x - M·b — the max() gadget used by the
        // schedulability formulation (Constraint 13 of the paper).
        let mut p = Problem::maximize();
        let y = p.continuous("y", 0.0, 100.0);
        let b = p.binary("b");
        let big_m = 1000.0;
        // maximize y s.t. y <= 7 + M·b, y <= 12 + M(1-b) → y can reach 12
        // only when b = 1... wait: y <= 7 + Mb (b=1 relaxes), y <= 12 +
        // M(1-b) (b=0 relaxes). Max y = max(7, 12) = 12 with b = 1.
        p.constrain(y - big_m * b, Cmp::Le, 7.0);
        p.constrain(y + big_m * b, Cmp::Le, 12.0 + big_m);
        p.set_objective(1.0 * y);
        let s = Solver::new().solve(&p).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-6);
    }
}
