//! Exact re-verification of MILP solver results.
//!
//! The branch & bound solver ([`crate::branch`]) computes in `f64`; this
//! module independently re-checks what it reports using exact rational
//! arithmetic ([`crate::rational::Rational`]):
//!
//! * **primal feasibility** of the incumbent — every constraint and bound,
//!   evaluated exactly, must hold within the audit tolerance;
//! * **integrality** of integer/binary variables in the incumbent;
//! * **objective consistency** — the reported objective must equal the
//!   exact objective value at the incumbent;
//! * **bound sandwich** for [`SolveStatus::LimitReached`] — the reported
//!   proven bound must dominate the incumbent objective on the correct
//!   side;
//! * **infeasibility certificates** — when the solver reports
//!   [`MilpError::Infeasible`], a Farkas-style certificate is searched for
//!   (Fourier–Motzkin elimination with multiplier tracking, after exact
//!   integral bound tightening) and then *verified from scratch* against
//!   the original problem.
//!
//! Every check has three possible outcomes ([`CheckStatus`]): `Passed`,
//! `Failed` (the solver's claim is provably wrong), and `Inconclusive`
//! (exact verification was not possible — e.g. `i128` overflow in the
//! rational arithmetic, or an infeasibility that stems from integrality
//! rather than the LP relaxation). Inconclusive is deliberately distinct
//! from failure: the auditor never converts "could not verify" into
//! "wrong".

use std::collections::BTreeMap;

use crate::expr::LinExpr;
use crate::problem::{Cmp, Objective, Problem};
use crate::rational::Rational;
use crate::solution::{MilpSolution, SolveStatus};

/// Audit tolerance, `1 / 10^6` as an exact rational.
///
/// Matches the solver's `f64` tolerances ([`crate::branch::Limits`]):
/// solver incumbents satisfy constraints only to within `~1e-6`, so an
/// exact zero-tolerance check would reject correct solves over harmless
/// last-bit rounding.
pub fn audit_tolerance() -> Rational {
    Rational::new(1, 1_000_000).expect("1/1e6 is representable")
}

/// Outcome of one audit check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// The solver's claim was re-verified exactly.
    Passed,
    /// The solver's claim is provably wrong.
    Failed,
    /// Exact verification was not possible (overflow, or a certificate
    /// outside the auditor's reach); the claim is neither confirmed nor
    /// refuted.
    Inconclusive,
}

/// One named audit check with its outcome and a human-readable detail.
#[derive(Debug, Clone)]
pub struct AuditCheck {
    /// Stable check name (e.g. `primal-feasibility`).
    pub name: &'static str,
    /// Outcome.
    pub status: CheckStatus,
    /// Explanation: what was verified, or why it failed / was skipped.
    pub detail: String,
}

/// The full result of auditing one solve.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// All checks performed, in execution order.
    pub checks: Vec<AuditCheck>,
}

impl AuditReport {
    fn new() -> Self {
        AuditReport { checks: Vec::new() }
    }

    fn push(&mut self, name: &'static str, status: CheckStatus, detail: impl Into<String>) {
        self.checks.push(AuditCheck {
            name,
            status,
            detail: detail.into(),
        });
    }

    /// `true` iff every check passed (no failures, no inconclusive ones).
    pub fn certified(&self) -> bool {
        self.checks.iter().all(|c| c.status == CheckStatus::Passed)
    }

    /// `true` iff at least one check failed (the solver result is provably
    /// wrong).
    pub fn failed(&self) -> bool {
        self.checks.iter().any(|c| c.status == CheckStatus::Failed)
    }

    /// Iterator over the checks that did not pass.
    pub fn problems(&self) -> impl Iterator<Item = &AuditCheck> {
        self.checks
            .iter()
            .filter(|c| c.status != CheckStatus::Passed)
    }
}

/// What the audited solve concluded.
#[derive(Debug, Clone)]
pub enum AuditedOutcome {
    /// The solver produced a solution (optimal or limit-reached).
    Solved(MilpSolution),
    /// The solver reported the problem infeasible.
    Infeasible,
}

/// A solver result together with its exact-arithmetic audit.
#[derive(Debug, Clone)]
pub struct AuditedSolve {
    /// The solver's answer.
    pub outcome: AuditedOutcome,
    /// The exact re-verification of that answer.
    pub report: AuditReport,
}

impl AuditedSolve {
    /// The solution, if the solver found one.
    pub fn solution(&self) -> Option<&MilpSolution> {
        match &self.outcome {
            AuditedOutcome::Solved(s) => Some(s),
            AuditedOutcome::Infeasible => None,
        }
    }
}

/// An exactly-checkable certificate that a problem is infeasible.
#[derive(Debug, Clone)]
pub enum InfeasibilityCertificate {
    /// Exact ceiling/floor tightening of an integral variable's bounds
    /// leaves an empty domain.
    EmptyBounds {
        /// Index of the variable with an empty tightened domain.
        var: usize,
    },
    /// Farkas multipliers: a non-negative combination of the rows of the
    /// `≤`-normal form (see [`le_normal_form`]) that sums to the
    /// contradiction `0 ≤ negative`.
    Farkas {
        /// One multiplier per normal-form row, all `≥ 0`.
        multipliers: Vec<Rational>,
    },
}

// ---------------------------------------------------------------------------
// Solution audit
// ---------------------------------------------------------------------------

/// Exactly evaluates `expr` at the rational point `qvals`.
fn eval_expr(expr: &LinExpr, qvals: &[Rational]) -> Option<Rational> {
    let mut acc = Rational::from_f64(expr.constant())?;
    for (v, coeff) in expr.iter() {
        let c = Rational::from_f64(coeff)?;
        acc = acc.checked_add(c.checked_mul(*qvals.get(v.index())?)?)?;
    }
    Some(acc)
}

/// Re-verifies a solver solution in exact arithmetic.
///
/// Prefer [`crate::Solver::solve_audited`], which runs this automatically;
/// call this directly to audit a solution obtained elsewhere.
pub fn audit_solution(problem: &Problem, solution: &MilpSolution) -> AuditReport {
    let mut report = AuditReport::new();
    let tol = audit_tolerance();
    let values = solution.values();

    if values.is_empty() && problem.num_vars() > 0 {
        // Limit hit before any incumbent: only the bound claim exists, and
        // there is no primal point to check it against.
        report.push(
            "incumbent",
            CheckStatus::Inconclusive,
            "no incumbent to verify (limit reached before the first feasible point)",
        );
        return report;
    }
    if values.len() != problem.num_vars() {
        report.push(
            "incumbent",
            CheckStatus::Failed,
            format!(
                "solution has {} values but the problem has {} variables",
                values.len(),
                problem.num_vars()
            ),
        );
        return report;
    }

    let qvals: Option<Vec<Rational>> = values.iter().map(|&v| Rational::from_f64(v)).collect();
    let Some(qvals) = qvals else {
        report.push(
            "primal-feasibility",
            CheckStatus::Inconclusive,
            "a solution value is not exactly representable (non-finite or out of i128 range)",
        );
        return report;
    };

    check_feasibility(problem, &qvals, tol, &mut report);
    check_integrality(problem, &qvals, tol, &mut report);
    check_objective(problem, solution, &qvals, tol, &mut report);
    if let SolveStatus::LimitReached { bound } = solution.status() {
        check_bound_sandwich(problem, solution, bound, tol, &mut report);
    }
    report
}

fn check_feasibility(
    problem: &Problem,
    qvals: &[Rational],
    tol: Rational,
    report: &mut AuditReport,
) {
    let mut violations = Vec::new();
    let mut inconclusive = false;

    for (i, &x) in qvals.iter().enumerate().take(problem.num_vars()) {
        let (lo, hi) = problem.var_bounds(crate::expr::Var(i));
        if lo.is_finite() {
            match Rational::from_f64(lo).and_then(|l| l.checked_sub(tol)) {
                Some(l) if x < l => violations.push(format!(
                    "x{i} ({}) = {} violates lower bound {lo}",
                    problem.var_name(crate::expr::Var(i)),
                    x.to_f64()
                )),
                Some(_) => {}
                None => inconclusive = true,
            }
        }
        if hi.is_finite() {
            match Rational::from_f64(hi).and_then(|h| h.checked_add(tol)) {
                Some(h) if x > h => violations.push(format!(
                    "x{i} ({}) = {} violates upper bound {hi}",
                    problem.var_name(crate::expr::Var(i)),
                    x.to_f64()
                )),
                Some(_) => {}
                None => inconclusive = true,
            }
        }
    }

    for cref in problem.constraints() {
        let Some(lhs) = eval_expr(cref.expr(), qvals) else {
            inconclusive = true;
            continue;
        };
        let Some(rhs) = Rational::from_f64(cref.rhs()) else {
            inconclusive = true;
            continue;
        };
        let Some(diff) = lhs.checked_sub(rhs) else {
            inconclusive = true;
            continue;
        };
        let ok = match cref.cmp() {
            Cmp::Le => diff <= tol,
            Cmp::Ge => -diff <= tol,
            Cmp::Eq => diff.abs() <= tol,
        };
        if !ok {
            violations.push(format!(
                "constraint #{}{} violated: lhs - rhs = {} (~{:e})",
                cref.index(),
                cref.name().map(|n| format!(" [{n}]")).unwrap_or_default(),
                diff,
                diff.to_f64()
            ));
        }
    }

    if !violations.is_empty() {
        report.push(
            "primal-feasibility",
            CheckStatus::Failed,
            violations.join("; "),
        );
    } else if inconclusive {
        report.push(
            "primal-feasibility",
            CheckStatus::Inconclusive,
            "some constraints could not be evaluated exactly (rational overflow)",
        );
    } else {
        report.push(
            "primal-feasibility",
            CheckStatus::Passed,
            format!(
                "{} constraints and {} variable bounds hold exactly within 1e-6",
                problem.num_constraints(),
                problem.num_vars()
            ),
        );
    }
}

fn check_integrality(
    problem: &Problem,
    qvals: &[Rational],
    tol: Rational,
    report: &mut AuditReport,
) {
    let mut violations = Vec::new();
    let mut n = 0usize;
    for v in problem.integral_vars() {
        n += 1;
        let dist = qvals[v.index()].dist_to_nearest_int();
        if dist > tol {
            violations.push(format!(
                "x{} ({}) = {} is {} (~{:e}) away from the nearest integer",
                v.index(),
                problem.var_name(v),
                qvals[v.index()].to_f64(),
                dist,
                dist.to_f64()
            ));
        }
    }
    if !violations.is_empty() {
        report.push("integrality", CheckStatus::Failed, violations.join("; "));
    } else {
        report.push(
            "integrality",
            CheckStatus::Passed,
            format!("{n} integral variables are integer-valued within 1e-6"),
        );
    }
}

fn check_objective(
    problem: &Problem,
    solution: &MilpSolution,
    qvals: &[Rational],
    tol: Rational,
    report: &mut AuditReport,
) {
    let exact = eval_expr(problem.objective(), qvals);
    let reported = Rational::from_f64(solution.objective());
    match (exact, reported) {
        (Some(exact), Some(reported)) => match exact.checked_sub(reported) {
            Some(diff) if diff.abs() <= tol => report.push(
                "objective-consistency",
                CheckStatus::Passed,
                format!(
                    "reported objective matches exact evaluation ({})",
                    exact.to_f64()
                ),
            ),
            Some(diff) => report.push(
                "objective-consistency",
                CheckStatus::Failed,
                format!(
                    "reported objective {} differs from exact evaluation {} by {} (~{:e})",
                    solution.objective(),
                    exact.to_f64(),
                    diff,
                    diff.to_f64()
                ),
            ),
            None => report.push(
                "objective-consistency",
                CheckStatus::Inconclusive,
                "objective comparison overflowed rational arithmetic",
            ),
        },
        _ => report.push(
            "objective-consistency",
            CheckStatus::Inconclusive,
            "objective could not be evaluated exactly (overflow or non-finite value)",
        ),
    }
}

fn check_bound_sandwich(
    problem: &Problem,
    solution: &MilpSolution,
    bound: f64,
    tol: Rational,
    report: &mut AuditReport,
) {
    let (Some(obj), Some(qbound)) = (
        Rational::from_f64(solution.objective()),
        Rational::from_f64(bound),
    ) else {
        report.push(
            "bound-sandwich",
            CheckStatus::Inconclusive,
            "objective or bound is not exactly representable",
        );
        return;
    };
    // The proven bound must dominate the incumbent on the optimizing side:
    // incumbent ≤ bound when maximizing, incumbent ≥ bound when minimizing.
    let ok = match problem.direction() {
        Objective::Maximize => obj.checked_sub(qbound).map(|d| d <= tol),
        Objective::Minimize => qbound.checked_sub(obj).map(|d| d <= tol),
    };
    match ok {
        Some(true) => report.push(
            "bound-sandwich",
            CheckStatus::Passed,
            format!(
                "incumbent {} and proven bound {bound} sandwich the optimum ({:?})",
                solution.objective(),
                problem.direction()
            ),
        ),
        Some(false) => report.push(
            "bound-sandwich",
            CheckStatus::Failed,
            format!(
                "proven bound {bound} does not dominate the incumbent {} when {:?}",
                solution.objective(),
                problem.direction()
            ),
        ),
        None => report.push(
            "bound-sandwich",
            CheckStatus::Inconclusive,
            "bound comparison overflowed rational arithmetic",
        ),
    }
}

// ---------------------------------------------------------------------------
// Infeasibility certificates
// ---------------------------------------------------------------------------

/// One row of the `≤`-normal form: `coeffs · x ≤ rhs` (dense coefficients).
#[derive(Debug, Clone)]
pub struct NormRow {
    /// Dense coefficient vector, one entry per problem variable.
    pub coeffs: Vec<Rational>,
    /// Right-hand side of the `≤` inequality.
    pub rhs: Rational,
}

/// Result of normalization: either the row system, or a variable whose
/// integral bound tightening already contradicts itself.
#[derive(Debug)]
pub enum NormalForm {
    /// The `≤`-row system, in the canonical order documented on
    /// [`le_normal_form`].
    Rows(Vec<NormRow>),
    /// Tightening left a variable with an empty domain; the problem is
    /// infeasible outright and no row system is needed.
    EmptyBounds {
        /// Index of the contradictory variable.
        var: usize,
        /// Human-readable description of the empty domain.
        detail: String,
    },
}

/// Exactly tightened bounds: integral variables get `ceil(lo)` / `floor(hi)`
/// (mirroring the solver's root tightening in [`crate::branch`]).
fn tightened_bounds(
    problem: &Problem,
    var: usize,
) -> Result<(Option<Rational>, Option<Rational>), String> {
    let v = crate::expr::Var(var);
    let (lo, hi) = problem.var_bounds(v);
    let integral = problem.var_kind(v).is_integral();
    let conv = |b: f64, up: bool| -> Result<Option<Rational>, String> {
        if !b.is_finite() {
            return Ok(None);
        }
        let q = Rational::from_f64(b)
            .ok_or_else(|| format!("bound {b} of x{var} is not exactly representable"))?;
        if integral {
            let t = if up { q.floor() } else { q.ceil() };
            Ok(Some(Rational::from_int(t)))
        } else {
            Ok(Some(q))
        }
    };
    Ok((conv(lo, false)?, conv(hi, true)?))
}

/// Builds the `≤`-normal form of `problem` with integral bounds tightened.
///
/// Row order (the order Farkas and bound multipliers refer to): each
/// constraint in problem order (`Le` as is, `Ge` negated, `Eq` split into
/// `≤` then negated-`≥`), then for each variable its finite lower bound as
/// `-x ≤ -lo`, then its finite upper bound as `x ≤ hi`.
///
/// This order is a public contract: certificates serialized by `pmcs-cert`
/// reference rows positionally, and the independent checker rebuilds the
/// same system from the embedded problem.
///
/// # Errors
///
/// Returns an error when a coefficient, bound, or right-hand side is not
/// exactly representable as a [`Rational`].
pub fn le_normal_form(problem: &Problem) -> Result<NormalForm, String> {
    let n = problem.num_vars();
    let mut rows = Vec::new();

    let rationalize_row = |expr: &LinExpr, rhs: f64, negate: bool| -> Result<NormRow, String> {
        let mut coeffs = vec![Rational::ZERO; n];
        for (v, c) in expr.iter() {
            let q = Rational::from_f64(c)
                .ok_or_else(|| format!("coefficient {c} is not exactly representable"))?;
            coeffs[v.index()] = if negate { -q } else { q };
        }
        let mut q_rhs = Rational::from_f64(rhs)
            .ok_or_else(|| format!("rhs {rhs} is not exactly representable"))?;
        if negate {
            q_rhs = -q_rhs;
        }
        Ok(NormRow { coeffs, rhs: q_rhs })
    };

    for cref in problem.constraints() {
        match cref.cmp() {
            Cmp::Le => rows.push(rationalize_row(cref.expr(), cref.rhs(), false)?),
            Cmp::Ge => rows.push(rationalize_row(cref.expr(), cref.rhs(), true)?),
            Cmp::Eq => {
                rows.push(rationalize_row(cref.expr(), cref.rhs(), false)?);
                rows.push(rationalize_row(cref.expr(), cref.rhs(), true)?);
            }
        }
    }
    for j in 0..n {
        let (lo, hi) = tightened_bounds(problem, j)?;
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return Ok(NormalForm::EmptyBounds {
                    var: j,
                    detail: format!(
                        "x{j} ({}) has empty tightened domain [{}, {}]",
                        problem.var_name(crate::expr::Var(j)),
                        l,
                        h
                    ),
                });
            }
        }
        if let Some(l) = lo {
            let mut coeffs = vec![Rational::ZERO; n];
            coeffs[j] = -Rational::ONE;
            rows.push(NormRow { coeffs, rhs: -l });
        }
        if let Some(h) = hi {
            let mut coeffs = vec![Rational::ZERO; n];
            coeffs[j] = Rational::ONE;
            rows.push(NormRow { coeffs, rhs: h });
        }
    }
    Ok(NormalForm::Rows(rows))
}

/// Verifies an infeasibility certificate from scratch against `problem`.
///
/// Independent of the certificate *finder*: a bug there cannot vouch for
/// itself. Returns a human-readable confirmation, or an error describing
/// why the certificate is invalid / unverifiable.
pub fn verify_certificate(
    problem: &Problem,
    certificate: &InfeasibilityCertificate,
) -> Result<String, String> {
    match certificate {
        InfeasibilityCertificate::EmptyBounds { var } => {
            let (lo, hi) = tightened_bounds(problem, *var)?;
            match (lo, hi) {
                (Some(l), Some(h)) if l > h => Ok(format!(
                    "integral tightening leaves x{var} with empty domain [{l}, {h}]"
                )),
                _ => Err(format!("x{var} does not have an empty tightened domain")),
            }
        }
        InfeasibilityCertificate::Farkas { multipliers } => {
            let rows = match le_normal_form(problem)? {
                NormalForm::Rows(rows) => rows,
                NormalForm::EmptyBounds { detail, .. } => {
                    return Err(format!(
                        "normal form degenerates to a bound contradiction ({detail}); \
                         a Farkas certificate is not applicable"
                    ))
                }
            };
            if multipliers.len() != rows.len() {
                return Err(format!(
                    "certificate has {} multipliers for {} rows",
                    multipliers.len(),
                    rows.len()
                ));
            }
            let n = problem.num_vars();
            let mut combo = vec![Rational::ZERO; n];
            let mut rhs = Rational::ZERO;
            for (y, row) in multipliers.iter().zip(&rows) {
                if y.is_negative() {
                    return Err(format!("negative multiplier {y}"));
                }
                if y.is_zero() {
                    continue;
                }
                for (acc, &coeff) in combo.iter_mut().zip(&row.coeffs).take(n) {
                    if !coeff.is_zero() {
                        let term = y
                            .checked_mul(coeff)
                            .ok_or("rational overflow combining rows")?;
                        *acc = acc
                            .checked_add(term)
                            .ok_or("rational overflow combining rows")?;
                    }
                }
                let term = y
                    .checked_mul(row.rhs)
                    .ok_or("rational overflow combining rhs")?;
                rhs = rhs
                    .checked_add(term)
                    .ok_or("rational overflow combining rhs")?;
            }
            if let Some(j) = (0..n).find(|&j| !combo[j].is_zero()) {
                return Err(format!(
                    "combination does not eliminate x{j} (coefficient {})",
                    combo[j]
                ));
            }
            if !rhs.is_negative() {
                return Err(format!("combined rhs {rhs} is not negative"));
            }
            Ok(format!(
                "Farkas combination of {} active rows derives 0 <= {rhs} (contradiction)",
                multipliers.iter().filter(|y| !y.is_zero()).count()
            ))
        }
    }
}

/// A working row during Fourier–Motzkin elimination: the inequality plus
/// the (sparse) multipliers over original normal-form rows that derive it.
#[derive(Debug, Clone)]
struct FmRow {
    coeffs: Vec<Rational>,
    rhs: Rational,
    mults: BTreeMap<usize, Rational>,
}

/// Caps on Fourier–Motzkin growth; beyond them the finder gives up and the
/// audit reports `Inconclusive` rather than running unboundedly.
const FM_MAX_ROWS: usize = 4_096;

/// Searches for an exactly-checkable infeasibility certificate.
///
/// Uses Fourier–Motzkin elimination with multiplier tracking over the
/// `≤`-normal form (after exact integral bound tightening, mirroring the
/// solver's root tightening). Complete for LP infeasibility on problems
/// small enough to stay under [`FM_MAX_ROWS`]; infeasibility that arises
/// only from integrality (a feasible LP relaxation with no integer point)
/// is out of reach and reported as an error string.
pub fn find_certificate(problem: &Problem) -> Result<InfeasibilityCertificate, String> {
    let rows = match le_normal_form(problem)? {
        NormalForm::EmptyBounds { var, .. } => {
            return Ok(InfeasibilityCertificate::EmptyBounds { var })
        }
        NormalForm::Rows(rows) => rows,
    };
    let n = problem.num_vars();
    let num_rows = rows.len();
    let mut work: Vec<FmRow> = rows
        .into_iter()
        .enumerate()
        .map(|(i, r)| FmRow {
            coeffs: r.coeffs,
            rhs: r.rhs,
            mults: BTreeMap::from([(i, Rational::ONE)]),
        })
        .collect();

    let contradiction = |rows: &[FmRow]| -> Option<usize> {
        rows.iter()
            .position(|r| r.coeffs.iter().all(|c| c.is_zero()) && r.rhs.is_negative())
    };

    for j in 0..n {
        if let Some(i) = contradiction(&work) {
            return Ok(extract_farkas(&work[i], num_rows));
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut keep = Vec::new();
        for r in work {
            if r.coeffs[j].is_positive() {
                pos.push(r);
            } else if r.coeffs[j].is_negative() {
                neg.push(r);
            } else if r.coeffs.iter().any(|c| !c.is_zero()) || r.rhs.is_negative() {
                // Drop trivially true 0 <= nonneg rows; keep the rest.
                keep.push(r);
            }
        }
        if keep.len() + pos.len().saturating_mul(neg.len()) > FM_MAX_ROWS {
            return Err(format!(
                "Fourier-Motzkin row explosion eliminating x{j} \
                 ({} x {} combinations); certificate search abandoned",
                pos.len(),
                neg.len()
            ));
        }
        for p in &pos {
            for q in &neg {
                let combined = combine_rows(p, q, j)
                    .ok_or("rational overflow during Fourier-Motzkin elimination")?;
                if combined.coeffs.iter().all(|c| c.is_zero()) {
                    if combined.rhs.is_negative() {
                        return Ok(extract_farkas(&combined, num_rows));
                    }
                    continue; // trivially true, drop
                }
                keep.push(combined);
            }
        }
        work = keep;
    }

    if let Some(i) = contradiction(&work) {
        return Ok(extract_farkas(&work[i], num_rows));
    }
    Err(
        "the LP relaxation (with integer-tightened bounds) is feasible; \
         infeasibility, if real, stems from integrality and has no LP certificate"
            .to_string(),
    )
}

/// Eliminates `x_j` from `p` (positive coefficient) and `q` (negative):
/// the combination `(-c_q)·p + c_p·q`, scaled by `1/(c_p - c_q)` to slow
/// magnitude growth (any positive scaling preserves validity).
fn combine_rows(p: &FmRow, q: &FmRow, j: usize) -> Option<FmRow> {
    let s = -q.coeffs[j]; // > 0
    let t = p.coeffs[j]; // > 0
    let scale = s.checked_add(t)?;
    let sp = s.checked_div(scale)?;
    let tq = t.checked_div(scale)?;

    let coeffs = p
        .coeffs
        .iter()
        .zip(&q.coeffs)
        .map(|(&pc, &qc)| {
            let a = sp.checked_mul(pc)?;
            let b = tq.checked_mul(qc)?;
            a.checked_add(b)
        })
        .collect::<Option<Vec<_>>>()?;
    let rhs = sp.checked_mul(p.rhs)?.checked_add(tq.checked_mul(q.rhs)?)?;

    let mut mults = p
        .mults
        .iter()
        .map(|(&i, &m)| sp.checked_mul(m).map(|v| (i, v)))
        .collect::<Option<BTreeMap<_, _>>>()?;
    for (&i, &m) in &q.mults {
        let term = tq.checked_mul(m)?;
        let entry = mults.entry(i).or_insert(Rational::ZERO);
        *entry = entry.checked_add(term)?;
    }
    Some(FmRow { coeffs, rhs, mults })
}

fn extract_farkas(row: &FmRow, num_rows: usize) -> InfeasibilityCertificate {
    let mut multipliers = vec![Rational::ZERO; num_rows];
    for (&i, &m) in &row.mults {
        multipliers[i] = m;
    }
    InfeasibilityCertificate::Farkas { multipliers }
}

/// Audits a solver's `Infeasible` verdict: searches for a certificate and
/// verifies it from scratch.
pub fn audit_infeasibility(problem: &Problem) -> AuditReport {
    let mut report = AuditReport::new();
    match find_certificate(problem) {
        Ok(cert) => match verify_certificate(problem, &cert) {
            Ok(detail) => report.push("infeasibility-certificate", CheckStatus::Passed, detail),
            Err(reason) => report.push(
                "infeasibility-certificate",
                CheckStatus::Failed,
                format!("found certificate does not verify: {reason}"),
            ),
        },
        Err(reason) => report.push(
            "infeasibility-certificate",
            CheckStatus::Inconclusive,
            reason,
        ),
    }
    report
}

// ---------------------------------------------------------------------------
// Branch-and-bound certificate trees (VIPR-style)
// ---------------------------------------------------------------------------

/// One node of a branch-and-bound certificate tree.
///
/// Leaves carry self-contained proofs; branch nodes record the exact
/// integral split so the checker can rebuild each node's problem from the
/// root problem alone.
#[derive(Debug, Clone)]
pub enum BbNode {
    /// Integral branching: the subtree `down` has `x_var ≤ floor`, the
    /// subtree `up` has `x_var ≥ floor + 1`. Together they cover every
    /// integral value of `x_var`, so bounds proven on both children hold
    /// for the parent.
    Branch {
        /// Index of the (integral) branching variable.
        var: usize,
        /// The split point (`⌊x_var⌋` at the node's LP vertex).
        floor: i128,
        /// Index of the `x_var ≤ floor` child in [`BbTree::nodes`].
        down: usize,
        /// Index of the `x_var ≥ floor + 1` child in [`BbTree::nodes`].
        up: usize,
    },
    /// LP-dual bound certificate: the multipliers prove that the node's
    /// objective cannot exceed the claimed bound (weak duality, checked by
    /// substitution via [`verify_bound_multipliers`]).
    Bounded {
        /// One non-negative multiplier per `≤`-normal-form row of the
        /// node's problem.
        multipliers: Vec<Rational>,
    },
    /// The node's LP relaxation is infeasible; carries a Farkas or
    /// empty-domain certificate checked by [`verify_certificate`].
    Infeasible {
        /// The infeasibility certificate for the node's problem.
        certificate: InfeasibilityCertificate,
    },
}

/// A branch-and-bound certificate tree; node `0` is the root.
///
/// The tree proves `objective ≤ claimed` for a *maximization* problem:
/// every leaf either bounds its subproblem by the claim or proves it
/// infeasible, and branch nodes partition the integral search space.
#[derive(Debug, Clone, Default)]
pub struct BbTree {
    /// All nodes; internal references index into this vector.
    pub nodes: Vec<BbNode>,
}

/// Upper limit on accepted tree sizes; larger trees are rejected as
/// malformed rather than walked unboundedly.
pub const BB_TREE_MAX_NODES: usize = 1_000_000;

/// Verifies an LP-dual bound certificate by substitution.
///
/// Checks, in exact arithmetic, that `multipliers ≥ 0`, that they
/// recombine the rows of `problem`'s `≤`-normal form into exactly the
/// objective coefficient vector, and that the implied bound
/// `yᵀr + objective-constant` does not exceed `claimed`. Returns the
/// implied bound.
///
/// Independent of any solver: a buggy certificate *finder* cannot make an
/// unsound claim pass here.
///
/// # Errors
///
/// Returns a reason string prefixed with a stable machine-readable code
/// (`bound.*`) when the certificate does not verify.
pub fn verify_bound_multipliers(
    problem: &Problem,
    multipliers: &[Rational],
    claimed: Rational,
) -> Result<Rational, String> {
    if problem.direction() != Objective::Maximize {
        return Err("bound.direction: only maximization problems are supported".to_string());
    }
    let rows = match le_normal_form(problem).map_err(|e| format!("bound.normal-form: {e}"))? {
        NormalForm::Rows(rows) => rows,
        NormalForm::EmptyBounds { detail, .. } => {
            return Err(format!(
                "bound.normal-form: problem is infeasible by bound tightening ({detail}); \
                 expected an infeasibility leaf, not a bound leaf"
            ))
        }
    };
    if multipliers.len() != rows.len() {
        return Err(format!(
            "bound.shape: certificate has {} multipliers for {} rows",
            multipliers.len(),
            rows.len()
        ));
    }
    let n = problem.num_vars();
    let mut combo = vec![Rational::ZERO; n];
    let mut bound = Rational::from_f64(problem.objective().constant())
        .ok_or("bound.overflow: objective constant is not exactly representable")?;
    for (y, row) in multipliers.iter().zip(&rows) {
        if y.is_negative() {
            return Err(format!("bound.negative-multiplier: {y}"));
        }
        if y.is_zero() {
            continue;
        }
        for (acc, &coeff) in combo.iter_mut().zip(&row.coeffs) {
            if !coeff.is_zero() {
                let term = y
                    .checked_mul(coeff)
                    .ok_or("bound.overflow: combining rows")?;
                *acc = acc
                    .checked_add(term)
                    .ok_or("bound.overflow: combining rows")?;
            }
        }
        let term = y
            .checked_mul(row.rhs)
            .ok_or("bound.overflow: combining rhs")?;
        bound = bound
            .checked_add(term)
            .ok_or("bound.overflow: combining rhs")?;
    }
    for (j, acc) in combo.iter().enumerate() {
        let c = Rational::from_f64(problem.objective().coefficient(crate::expr::Var(j)))
            .ok_or("bound.overflow: objective coefficient not representable")?;
        if *acc != c {
            return Err(format!(
                "bound.combination: column {j} recombines to {acc}, objective needs {c}"
            ));
        }
    }
    if bound > claimed {
        return Err(format!(
            "bound.exceeds-claim: certified bound {bound} (~{}) exceeds claimed {claimed}",
            bound.to_f64()
        ));
    }
    Ok(bound)
}

/// Verifies a branch-and-bound certificate tree against `problem`.
///
/// Walks the tree from the root, rebuilding every node's problem by
/// applying the recorded integral splits to a clone of `problem` (via
/// [`Problem::set_var_bounds`]), and re-checks each leaf from scratch:
/// [`verify_bound_multipliers`] for bound leaves, [`verify_certificate`]
/// for infeasibility leaves. Structural defects — dangling child indices,
/// shared or unreachable nodes, branching on non-integral variables — are
/// rejected with stable `bbtree.*` reason codes.
///
/// On success the tree proves `objective(x) ≤ claimed` for every feasible
/// point `x` of `problem` with integral variables integral.
///
/// # Errors
///
/// Returns a reason string prefixed with a stable machine-readable code
/// (`bbtree.*` or a leaf's `bound.*`).
pub fn verify_bb_tree(
    problem: &Problem,
    tree: &BbTree,
    claimed: Rational,
) -> Result<String, String> {
    if tree.nodes.is_empty() {
        return Err("bbtree.empty: certificate tree has no nodes".to_string());
    }
    if tree.nodes.len() > BB_TREE_MAX_NODES {
        return Err(format!(
            "bbtree.malformed: {} nodes exceeds the {} cap",
            tree.nodes.len(),
            BB_TREE_MAX_NODES
        ));
    }
    if problem.direction() != Objective::Maximize {
        return Err("bbtree.direction: only maximization problems are supported".to_string());
    }
    let nvars = problem.num_vars();
    let root_bounds: Vec<(f64, f64)> = (0..nvars)
        .map(|j| problem.var_bounds(crate::expr::Var(j)))
        .collect();

    let mut visited = vec![false; tree.nodes.len()];
    let mut leaves = 0usize;
    let mut stack: Vec<(usize, Vec<(f64, f64)>)> = vec![(0, root_bounds)];
    while let Some((idx, bounds)) = stack.pop() {
        let node = tree
            .nodes
            .get(idx)
            .ok_or_else(|| format!("bbtree.truncated: node index {idx} out of range"))?;
        if visited[idx] {
            return Err(format!(
                "bbtree.malformed: node {idx} is referenced more than once"
            ));
        }
        visited[idx] = true;
        match node {
            BbNode::Branch {
                var,
                floor,
                down,
                up,
            } => {
                if *var >= nvars {
                    return Err(format!(
                        "bbtree.branch-var: node {idx} branches on unknown variable x{var}"
                    ));
                }
                if !problem.var_kind(crate::expr::Var(*var)).is_integral() {
                    return Err(format!(
                        "bbtree.branch-var: node {idx} branches on non-integral variable x{var}"
                    ));
                }
                let split = *floor as f64;
                if split as i128 != *floor {
                    return Err(format!(
                        "bbtree.branch-var: node {idx} split point {floor} is not exactly \
                         representable"
                    ));
                }
                let (lo, hi) = bounds[*var];
                let mut down_bounds = bounds.clone();
                down_bounds[*var] = (lo, hi.min(split));
                let mut up_bounds = bounds;
                up_bounds[*var] = (lo.max(split + 1.0), hi);
                stack.push((*down, down_bounds));
                stack.push((*up, up_bounds));
            }
            BbNode::Bounded { multipliers } => {
                let node_problem = apply_bounds(problem, &bounds);
                verify_bound_multipliers(&node_problem, multipliers, claimed)
                    .map_err(|e| format!("bbtree.leaf: node {idx}: {e}"))?;
                leaves += 1;
            }
            BbNode::Infeasible { certificate } => {
                let node_problem = apply_bounds(problem, &bounds);
                verify_certificate(&node_problem, certificate)
                    .map_err(|e| format!("bbtree.leaf: node {idx}: {e}"))?;
                leaves += 1;
            }
        }
    }
    if let Some(unreachable) = visited.iter().position(|v| !v) {
        return Err(format!(
            "bbtree.malformed: node {unreachable} is unreachable from the root"
        ));
    }
    Ok(format!(
        "branch-and-bound tree with {} nodes ({} leaves) proves objective <= {claimed}",
        tree.nodes.len(),
        leaves
    ))
}

fn apply_bounds(problem: &Problem, bounds: &[(f64, f64)]) -> Problem {
    let mut p = problem.clone();
    for (j, &(lo, hi)) in bounds.iter().enumerate() {
        p.set_var_bounds(crate::expr::Var(j), lo, hi);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveStatus, Solver};

    fn doc_example() -> Problem {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.integer("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Le, 4.0);
        p.constrain(x + 3.0 * y, Cmp::Le, 6.0);
        p.set_objective(3.0 * x + 2.0 * y);
        p
    }

    #[test]
    fn optimal_solve_certifies() {
        let p = doc_example();
        let sol = Solver::new().solve(&p).unwrap();
        let report = audit_solution(&p, &sol);
        assert!(report.certified(), "audit should pass: {report:?}");
        assert!(report.checks.iter().any(|c| c.name == "primal-feasibility"));
        assert!(report.checks.iter().any(|c| c.name == "integrality"));
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "objective-consistency"));
    }

    #[test]
    fn corrupted_values_fail_feasibility() {
        let p = doc_example();
        let mut sol = Solver::new().solve(&p).unwrap();
        sol.values[0] = 100.0; // violates x + y <= 4
        let report = audit_solution(&p, &sol);
        assert!(report.failed());
        let fail = report
            .problems()
            .find(|c| c.status == CheckStatus::Failed)
            .unwrap();
        assert_eq!(fail.name, "primal-feasibility");
    }

    #[test]
    fn corrupted_integrality_detected() {
        let p = doc_example();
        let mut sol = Solver::new().solve(&p).unwrap();
        sol.values[1] = 0.5; // y must be integral
        let report = audit_solution(&p, &sol);
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "integrality" && c.status == CheckStatus::Failed));
    }

    #[test]
    fn corrupted_objective_detected() {
        let p = doc_example();
        let mut sol = Solver::new().solve(&p).unwrap();
        sol.objective += 1.0;
        let report = audit_solution(&p, &sol);
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "objective-consistency" && c.status == CheckStatus::Failed));
    }

    #[test]
    fn invalid_bound_sandwich_detected() {
        let p = doc_example();
        let mut sol = Solver::new().solve(&p).unwrap();
        // Claim a "proven bound" below the incumbent while maximizing.
        sol.status = SolveStatus::LimitReached {
            bound: sol.objective - 1.0,
        };
        let report = audit_solution(&p, &sol);
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "bound-sandwich" && c.status == CheckStatus::Failed));
    }

    #[test]
    fn farkas_certificate_found_and_verified() {
        // x >= 2 and x <= 1: classically infeasible LP.
        let mut p = Problem::maximize();
        let x = p.continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        p.constrain(1.0 * x, Cmp::Ge, 2.0);
        p.constrain(1.0 * x, Cmp::Le, 1.0);
        let cert = find_certificate(&p).expect("certificate must exist");
        assert!(matches!(cert, InfeasibilityCertificate::Farkas { .. }));
        verify_certificate(&p, &cert).expect("certificate must verify");
        let report = audit_infeasibility(&p);
        assert!(report.certified(), "{report:?}");
    }

    #[test]
    fn empty_integer_domain_certified() {
        // Integer variable confined to (0.4, 0.6): ceil(0.4)=1 > floor(0.6)=0.
        let mut p = Problem::maximize();
        let _x = p.integer("x", 0.4, 0.6);
        let cert = find_certificate(&p).expect("certificate must exist");
        assert!(matches!(
            cert,
            InfeasibilityCertificate::EmptyBounds { var: 0 }
        ));
        verify_certificate(&p, &cert).expect("certificate must verify");
    }

    #[test]
    fn integral_infeasibility_is_honestly_inconclusive() {
        // 2x = 1 with x integer: LP relaxation feasible (x = 1/2), so no
        // Farkas certificate exists; the auditor must say so, not guess.
        let mut p = Problem::maximize();
        let x = p.integer("x", 0.0, 10.0);
        p.constrain(2.0 * x, Cmp::Eq, 1.0);
        assert!(find_certificate(&p).is_err());
        let report = audit_infeasibility(&p);
        assert!(!report.failed());
        assert!(report
            .checks
            .iter()
            .any(|c| c.status == CheckStatus::Inconclusive));
    }

    #[test]
    fn tampered_certificate_rejected() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        p.constrain(1.0 * x, Cmp::Ge, 20.0);
        let cert = find_certificate(&p).unwrap();
        if let InfeasibilityCertificate::Farkas { mut multipliers } = cert {
            multipliers[0] = multipliers[0].checked_add(Rational::ONE).unwrap();
            let bad = InfeasibilityCertificate::Farkas { multipliers };
            assert!(verify_certificate(&p, &bad).is_err());
        } else {
            panic!("expected a Farkas certificate");
        }
    }

    #[test]
    fn mixed_system_infeasibility_certified() {
        // x + y <= 1, x >= 1, y >= 1 (via bounds): infeasible through a
        // combination of a constraint row and two bound rows.
        let mut p = Problem::minimize();
        let x = p.continuous("x", 1.0, 10.0);
        let y = p.continuous("y", 1.0, 10.0);
        p.constrain(x + y, Cmp::Le, 1.0);
        let report = audit_infeasibility(&p);
        assert!(report.certified(), "{report:?}");
    }
}
