//! Session-scoped reuse of presolved programs and warm-start bases.
//!
//! The revised backend's incremental path presolves a window program
//! once per *structure* and warm-starts every re-solve from the previous
//! round's basis. A single cached slot suffices within one WCRT fixed
//! point — consecutive rounds share a structure — but a long-running
//! analysis session interleaves queries over many task configurations,
//! revisiting a handful of window structures over and over. A
//! [`BasisStore`] keeps the N most-recently-used structures alive, keyed
//! by the caller's structural fingerprint, so a structure seen by *any*
//! earlier query re-solves without re-presolving and with a warm basis.
//!
//! Reuse is sound by construction: the fingerprint hashes everything
//! about the problem except the mutable budget-row right-hand sides, and
//! a warm-start basis is only ever a hint — the simplex re-solves to
//! optimality from whatever starting point it is given.

use std::collections::HashMap;
use std::fmt;

use crate::backend::Basis;
use crate::presolve::PresolvedProblem;

/// One cached structure: the presolved program plus the basis its next
/// re-solve warm-starts from.
#[derive(Debug, Clone)]
pub struct StoredProgram {
    /// The presolved program; budget-row RHS values are mutated in place
    /// between re-solves via [`PresolvedProblem::update_rhs`].
    pub program: Box<PresolvedProblem>,
    /// Root basis of the most recent solve of this structure, if any.
    pub basis: Option<Basis>,
    stamp: u64,
}

/// Reuse counters of a [`BasisStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BasisStoreStats {
    /// Lookups that found their structure cached (presolve skipped).
    pub hits: u64,
    /// Lookups that required a fresh presolve.
    pub misses: u64,
    /// Structures dropped to honor the entry budget.
    pub evictions: u64,
}

impl BasisStoreStats {
    /// `hits / (hits + misses)`, or `0.0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for BasisStoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} presolves reused / {} fresh ({:.1}%), {} evicted",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.evictions
        )
    }
}

/// A bounded most-recently-used map from structural fingerprints to
/// [`StoredProgram`]s.
///
/// The generalization of the single-slot program cache: it answers for
/// any of the last N distinct structures instead of only the most recent
/// one. When full, the least-recently-looked-up structure is evicted.
#[derive(Debug, Clone)]
pub struct BasisStore {
    map: HashMap<u64, StoredProgram>,
    max_entries: usize,
    tick: u64,
    stats: BasisStoreStats,
}

/// Default number of structures a [`BasisStore`] keeps alive.
pub const DEFAULT_STORE_ENTRIES: usize = 64;

impl Default for BasisStore {
    fn default() -> Self {
        BasisStore::with_capacity(DEFAULT_STORE_ENTRIES)
    }
}

impl BasisStore {
    /// Creates a store holding at most `max_entries` structures
    /// (clamped to at least 1).
    pub fn with_capacity(max_entries: usize) -> Self {
        BasisStore {
            map: HashMap::new(),
            max_entries: max_entries.max(1),
            tick: 0,
            stats: BasisStoreStats::default(),
        }
    }

    /// Looks a fingerprint up, counting the outcome and refreshing the
    /// entry's recency on a hit. Returns `true` iff the structure is
    /// cached; fetch it with [`entry_mut`](BasisStore::entry_mut).
    pub fn lookup(&mut self, fingerprint: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&fingerprint) {
            Some(entry) => {
                entry.stamp = tick;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Mutable access to a cached structure (no counting).
    pub fn entry_mut(&mut self, fingerprint: u64) -> Option<&mut StoredProgram> {
        self.map.get_mut(&fingerprint)
    }

    /// Stores a freshly presolved structure, evicting the
    /// least-recently-used one first when at capacity.
    pub fn insert(&mut self, fingerprint: u64, program: Box<PresolvedProblem>) {
        while self.map.len() >= self.max_entries {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&fp, _)| fp)
                .expect("non-empty map at capacity");
            self.map.remove(&lru);
            self.stats.evictions += 1;
        }
        self.tick += 1;
        self.map.insert(
            fingerprint,
            StoredProgram {
                program,
                basis: None,
                stamp: self.tick,
            },
        );
    }

    /// Number of cached structures.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no structure is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reuse counters.
    pub fn stats(&self) -> BasisStoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presolve::{presolve, PresolveOutcome};
    use crate::problem::{Cmp, Problem};

    fn presolved(rhs: f64) -> Box<PresolvedProblem> {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        p.constrain_named(Some("row"), x, Cmp::Le, rhs);
        p.set_objective(x);
        match presolve(&p, &[0]).expect("presolve") {
            PresolveOutcome::Reduced(prog) => prog,
            PresolveOutcome::Infeasible(_) => panic!("feasible by construction"),
        }
    }

    #[test]
    fn lookup_counts_and_insert_retrieves() {
        let mut store = BasisStore::with_capacity(4);
        assert!(!store.lookup(42));
        store.insert(42, presolved(5.0));
        assert!(store.lookup(42));
        assert!(store.entry_mut(42).is_some());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut store = BasisStore::with_capacity(2);
        store.insert(1, presolved(1.0));
        store.insert(2, presolved(2.0));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(store.lookup(1));
        store.insert(3, presolved(3.0));
        assert_eq!(store.len(), 2);
        assert!(store.entry_mut(1).is_some(), "recently used survives");
        assert!(store.entry_mut(2).is_none(), "LRU structure evicted");
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn stats_display_mentions_reuse() {
        let mut store = BasisStore::default();
        let _ = store.lookup(7);
        assert!(store.stats().to_string().contains("fresh"));
        assert!(store.is_empty());
    }
}
