//! Linear expressions over problem variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Handle to a variable of a [`Problem`](crate::Problem).
///
/// Cheap to copy; only valid for the problem that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Column index of this variable within its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Built with the usual operators on [`Var`], `f64` and other expressions:
///
/// ```
/// use pmcs_milp::{Problem, LinExpr};
///
/// let mut p = Problem::maximize();
/// let x = p.continuous("x", 0.0, 1.0);
/// let y = p.continuous("y", 0.0, 1.0);
/// let e = 2.0 * x - y + 3.0;
/// assert_eq!(e.coefficient(x), 2.0);
/// assert_eq!(e.coefficient(y), -1.0);
/// assert_eq!(e.constant(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: BTreeMap<usize, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// An expression consisting of a constant only.
    pub fn constant_expr(value: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// Adds `coefficient * var` to this expression.
    pub fn add_term(&mut self, var: Var, coefficient: f64) -> &mut Self {
        let entry = self.terms.entry(var.0).or_insert(0.0);
        *entry += coefficient;
        if *entry == 0.0 {
            self.terms.remove(&var.0);
        }
        self
    }

    /// Adds a constant to this expression.
    pub fn add_constant(&mut self, value: f64) -> &mut Self {
        self.constant += value;
        self
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: Var) -> f64 {
        self.terms.get(&var.0).copied().unwrap_or(0.0)
    }

    /// The constant term.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(&i, &c)| (Var(i), c))
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression at a point given by a dense value vector
    /// indexed by variable index.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range of `values`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(&i, &c)| c * values[i]).sum::<f64>()
    }

    /// Sum of expressions (convenience for folds).
    pub fn sum<I: IntoIterator<Item = LinExpr>>(items: I) -> LinExpr {
        items.into_iter().fold(LinExpr::zero(), |acc, e| acc + e)
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (&i, &c) in &rhs.terms {
            self.add_term(Var(i), c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (&i, &c) in &rhs.terms {
            self.add_term(Var(i), c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        if rhs == 0.0 {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

// --- Var operator sugar -------------------------------------------------

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Add<f64> for Var {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) + LinExpr::constant_expr(rhs)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Sub<LinExpr> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) * rhs
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        LinExpr::from(rhs) * self
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        iter.fold(LinExpr::zero(), |acc, e| acc + e)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&i, &c) in &self.terms {
            if first {
                write!(f, "{c}·x{i}")?;
                first = false;
            } else if c >= 0.0 {
                write!(f, " + {c}·x{i}")?;
            } else {
                write!(f, " - {}·x{i}", -c)?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant >= 0.0 {
                write!(f, " + {}", self.constant)?;
            } else {
                write!(f, " - {}", -self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_and_coefficients() {
        let x = Var(0);
        let y = Var(1);
        let e = 2.0 * x + y * 3.0 - 1.5;
        assert_eq!(e.coefficient(x), 2.0);
        assert_eq!(e.coefficient(y), 3.0);
        assert_eq!(e.coefficient(Var(9)), 0.0);
        assert_eq!(e.constant(), -1.5);
        assert_eq!(e.num_terms(), 2);
    }

    #[test]
    fn cancellation_removes_terms() {
        let x = Var(0);
        let e = LinExpr::from(x) - x;
        assert_eq!(e.num_terms(), 0);
        assert!(e.is_constant());
    }

    #[test]
    fn evaluate_at_point() {
        let x = Var(0);
        let y = Var(1);
        let e = 2.0 * x - 0.5 * y + 4.0;
        assert_eq!(e.evaluate(&[3.0, 2.0]), 2.0 * 3.0 - 0.5 * 2.0 + 4.0);
    }

    #[test]
    fn negation_and_subtraction() {
        let x = Var(0);
        let e = -(2.0 * x + 1.0);
        assert_eq!(e.coefficient(x), -2.0);
        assert_eq!(e.constant(), -1.0);
        let d = (x + 5.0) - (x + 2.0);
        assert!(d.is_constant());
        assert_eq!(d.constant(), 3.0);
    }

    #[test]
    fn scaling_by_zero_clears() {
        let x = Var(0);
        let e = (3.0 * x + 2.0) * 0.0;
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn sum_folds_expressions() {
        let x = Var(0);
        let y = Var(1);
        let e: LinExpr = vec![LinExpr::from(x), LinExpr::from(y), LinExpr::from(x)]
            .into_iter()
            .sum();
        assert_eq!(e.coefficient(x), 2.0);
        assert_eq!(e.coefficient(y), 1.0);
    }

    #[test]
    fn display_is_stable() {
        let x = Var(0);
        let y = Var(1);
        assert_eq!((2.0 * x - 1.0 * y + 1.0).to_string(), "2·x0 - 1·x1 + 1");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }

    #[test]
    fn iter_in_index_order() {
        let e = 1.0 * Var(5) + 1.0 * Var(2) + 1.0 * Var(9);
        let idx: Vec<usize> = e.iter().map(|(v, _)| v.index()).collect();
        assert_eq!(idx, vec![2, 5, 9]);
    }
}
