//! Sparse revised simplex with explicit basis factorization and warm
//! starts.
//!
//! Where the dense reference solver ([`crate::simplex`]) maintains the
//! full tableau `B⁻¹A`, this solver stores the constraint matrix as
//! sparse columns and maintains only `B⁻¹` (dense `m×m`, product-form
//! pivot updates with periodic refactorization). Pricing computes
//! `y = c_B B⁻¹` and reduced costs column by column, so each iteration
//! costs `O(m² + nnz)` instead of `O(m·n)` dense row operations.
//!
//! Two further differences from the dense solver:
//!
//! * **No artificial variables for inequalities.** The standardization
//!   gives every row a *logical* column (slack for `≤`/`≥`, a `[0, 0]`
//!   artificial only for `=`), and phase 1 minimizes the total bound
//!   violation of the basic variables directly (dynamic composite costs:
//!   `+1` above the upper bound, `−1` below the lower). Starting from
//!   *any* basis — the all-logical cold basis or a supplied warm basis —
//!   phase 1 repairs primal feasibility in place.
//! * **Warm starts.** [`RevisedSimplex::solve_with_bounds`] accepts a
//!   [`Basis`] from a previous solve of a structurally identical problem
//!   (same rows, same column layout; only bounds/RHS changed). If the
//!   basis still factorizes, the solve resumes from it — typically a few
//!   repair pivots instead of a full two-phase cold start. This is what
//!   branch & bound exploits between parent and child nodes, and what
//!   the incremental window formulation exploits across fixed-point
//!   rounds.
//!
//! Degenerate iterations fall back to Bland's rule exactly like the
//! dense solver, so the anti-cycling termination guarantee carries over
//! (pinned by the Beale-example regression tests).

use crate::backend::{Basis, BasisStatus, LpRun, WarmStart};
use crate::error::MilpError;
use crate::problem::{Cmp, Objective, Problem};
use crate::simplex::{LpOutcome, LpSolution};

/// Revised-simplex configuration.
#[derive(Debug, Clone)]
pub struct RevisedSimplex {
    /// Maximum pivots per phase before reporting numerical trouble.
    pub max_iterations: usize,
    /// Feasibility / optimality tolerance.
    pub tol: f64,
    /// Degenerate-iteration run length that triggers Bland's rule.
    pub bland_trigger: usize,
    /// Pivots between full refactorizations of `B⁻¹` (bounds drift from
    /// the product-form updates).
    pub refactor_every: usize,
}

impl Default for RevisedSimplex {
    fn default() -> Self {
        RevisedSimplex {
            max_iterations: 50_000,
            tol: 1e-7,
            bland_trigger: 64,
            refactor_every: 64,
        }
    }
}

/// Standardized problem: sparse columns over `m` equality rows.
///
/// Column layout (deterministic, the coordinate system of [`Basis`]):
/// for each variable one column — or two (`x⁺`, `x⁻`) when free in both
/// directions under the override bounds — then one slack per `≤`/`≥`
/// row, then one `[0, 0]` artificial per `=` row.
struct Std {
    m: usize,
    ncols: usize,
    /// Sparse columns: `(row, coefficient)` in row order.
    cols: Vec<Vec<(usize, f64)>>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Per original variable: `(column, optional negative-part column)`.
    col_of: Vec<(usize, Option<usize>)>,
    b: Vec<f64>,
    /// Cold-start basis column per row (slack or artificial).
    logical: Vec<usize>,
    /// Phase-2 cost per column (internal minimization).
    cost2: Vec<f64>,
    /// `1 + max |b|`, scaling the feasibility tolerance.
    feas_scale: f64,
}

/// Mutable solver state: factorized basis inverse plus column values.
struct State {
    /// Dense row-major `B⁻¹`, `m × m` (rows are basis slots).
    binv: Vec<f64>,
    /// Basic column per slot.
    basis: Vec<usize>,
    status: Vec<BasisStatus>,
    /// Current value of every column.
    x: Vec<f64>,
}

enum Phase {
    /// Minimize total bound violation of the basic variables.
    Feasibility,
    /// Minimize the (sign-normalized) objective.
    Objective,
}

enum PhaseOutcome {
    Converged,
    /// Feasibility phase stalled with violation remaining.
    Infeasible,
    /// Objective phase found an uncapped improving ray.
    Unbounded,
}

impl RevisedSimplex {
    /// Solves the LP relaxation of `problem` under `bounds` overrides,
    /// optionally warm-starting from `warm`.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::simplex::Simplex::solve_with_bounds`]:
    /// [`MilpError::InvalidProblem`] for malformed input,
    /// [`MilpError::NumericalTrouble`] if a phase fails to converge.
    pub fn solve_with_bounds(
        &self,
        problem: &Problem,
        bounds: &[(f64, f64)],
        warm: Option<&Basis>,
    ) -> Result<LpRun, MilpError> {
        problem.validate()?;
        if bounds.len() != problem.num_vars() {
            return Err(MilpError::InvalidProblem(format!(
                "bounds vector has length {}, expected {}",
                bounds.len(),
                problem.num_vars()
            )));
        }
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if lo > hi {
                return Err(MilpError::InvalidProblem(format!(
                    "override bounds for x{i} are inverted [{lo}, {hi}]"
                )));
            }
        }

        let std = standardize(problem, bounds);
        let mut pivots = 0u64;
        let mut warm_result = WarmStart::NotAttempted;
        let mut state = match warm {
            Some(basis) => match warm_state(&std, basis) {
                Some(st) => {
                    warm_result = WarmStart::Hit;
                    st
                }
                None => {
                    warm_result = WarmStart::Miss;
                    cold_state(&std)
                }
            },
            None => cold_state(&std),
        };

        match self.optimize(&std, &mut state, Phase::Feasibility, &mut pivots)? {
            PhaseOutcome::Infeasible => {
                return Ok(LpRun {
                    outcome: LpOutcome::Infeasible,
                    basis: None,
                    pivots,
                    warm: warm_result,
                })
            }
            PhaseOutcome::Unbounded => unreachable!("feasibility phase never reports unbounded"),
            PhaseOutcome::Converged => {}
        }
        match self.optimize(&std, &mut state, Phase::Objective, &mut pivots)? {
            PhaseOutcome::Unbounded => {
                return Ok(LpRun {
                    outcome: LpOutcome::Unbounded,
                    basis: None,
                    pivots,
                    warm: warm_result,
                })
            }
            PhaseOutcome::Infeasible => unreachable!("objective phase never reports infeasible"),
            PhaseOutcome::Converged => {}
        }

        let mut values = vec![0.0; problem.num_vars()];
        for (value, &(pos, neg)) in values.iter_mut().zip(&std.col_of) {
            *value = state.x[pos] - neg.map(|c| state.x[c]).unwrap_or(0.0);
        }
        let objective = problem.objective().evaluate(&values);
        let basis = Some(Basis {
            statuses: state.status.clone(),
        });
        Ok(LpRun {
            outcome: LpOutcome::Optimal(LpSolution::from_parts(values, objective)),
            basis,
            pivots,
            warm: warm_result,
        })
    }

    /// Runs one phase to optimality (or stall/ray detection).
    fn optimize(
        &self,
        std: &Std,
        st: &mut State,
        phase: Phase,
        pivots: &mut u64,
    ) -> Result<PhaseOutcome, MilpError> {
        let m = std.m;
        let ftol = self.tol * std.feas_scale;
        let phase_no: u8 = match phase {
            Phase::Feasibility => 1,
            Phase::Objective => 2,
        };
        let mut degenerate_run = 0usize;
        let mut use_bland = false;
        let mut last_obj = f64::INFINITY;
        let mut since_refactor = 0usize;
        let mut cb = vec![0.0; m];

        for _iter in 0..self.max_iterations {
            // --- Phase cost on the basis + current objective -------------
            let objective = match phase {
                Phase::Feasibility => {
                    let mut infeas = 0.0;
                    for (r, &j) in st.basis.iter().enumerate() {
                        let v = st.x[j];
                        cb[r] = if v > std.upper[j] + ftol {
                            infeas += v - std.upper[j];
                            1.0
                        } else if v < std.lower[j] - ftol {
                            infeas += std.lower[j] - v;
                            -1.0
                        } else {
                            0.0
                        };
                    }
                    if infeas <= ftol {
                        return Ok(PhaseOutcome::Converged);
                    }
                    infeas
                }
                Phase::Objective => {
                    for (r, &j) in st.basis.iter().enumerate() {
                        cb[r] = std.cost2[j];
                    }
                    std.cost2.iter().zip(&st.x).map(|(c, x)| c * x).sum::<f64>()
                }
            };
            if objective < last_obj - self.tol {
                degenerate_run = 0;
                last_obj = objective;
            } else {
                degenerate_run += 1;
                if degenerate_run >= self.bland_trigger {
                    use_bland = true;
                }
            }

            // --- Pricing: y = c_B B⁻¹, then d_j = c_j − y·A_j ------------
            let y = btran(&st.binv, &cb, m);
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, sigma)
            for j in 0..std.ncols {
                if matches!(st.status[j], BasisStatus::Basic(_)) {
                    continue;
                }
                // Zero-range columns (fixed vars, equality artificials)
                // can only produce degenerate flips; skip them.
                if std.upper[j] - std.lower[j] <= 0.0 {
                    continue;
                }
                let cj = match phase {
                    Phase::Feasibility => 0.0, // non-basic columns sit feasibly at a bound
                    Phase::Objective => std.cost2[j],
                };
                let mut d = cj;
                for &(k, a) in &std.cols[j] {
                    d -= y[k] * a;
                }
                let eligible = match st.status[j] {
                    BasisStatus::AtLower => d < -self.tol,
                    BasisStatus::AtUpper => d > self.tol,
                    BasisStatus::Basic(_) => false,
                };
                if !eligible {
                    continue;
                }
                let sigma = if matches!(st.status[j], BasisStatus::AtLower) {
                    1.0
                } else {
                    -1.0
                };
                if use_bland {
                    entering = Some((j, d.abs(), sigma));
                    break;
                }
                match entering {
                    Some((_, best, _)) if d.abs() <= best => {}
                    _ => entering = Some((j, d.abs(), sigma)),
                }
            }
            let Some((q, _, sigma)) = entering else {
                return Ok(match phase {
                    // No improving direction while violation remains.
                    Phase::Feasibility => PhaseOutcome::Infeasible,
                    Phase::Objective => PhaseOutcome::Converged,
                });
            };
            *pivots += 1;

            // --- Ratio test: w = B⁻¹ A_q ---------------------------------
            let w = ftran(&st.binv, &std.cols[q], m);
            let mut t_max = std.upper[q] - std.lower[q]; // own-range limit
            let mut leaving: Option<(usize, bool)> = None; // (slot, leaves_at_upper)
            for (r, &wv) in w.iter().enumerate() {
                if wv.abs() <= 1e-9 {
                    continue;
                }
                let delta = -sigma * wv; // basic value change per unit t
                let bcol = st.basis[r];
                let v = st.x[bcol];
                let (l, u) = (std.lower[bcol], std.upper[bcol]);
                // Generalized bound cap: an infeasible basic variable caps
                // at its *violated* bound when moving back toward it (and
                // becomes feasible there); a feasible one caps at the
                // bound it is moving toward, exactly like the dense rule.
                let (target, at_upper) = if delta < 0.0 {
                    if v > u + ftol {
                        (u, true)
                    } else if v < l - ftol || l == f64::NEG_INFINITY {
                        continue;
                    } else {
                        (l, false)
                    }
                } else if v < l - ftol {
                    (l, false)
                } else if v > u + ftol || u == f64::INFINITY {
                    continue;
                } else {
                    (u, true)
                };
                let limit_t = ((target - v) / delta).max(0.0);
                if limit_t < t_max - 1e-12 {
                    t_max = limit_t;
                    leaving = Some((r, at_upper));
                } else if (limit_t - t_max).abs() <= 1e-12 {
                    // Tie-break on smallest basis column (anti-cycling aid).
                    match leaving {
                        Some((r0, _)) if st.basis[r0] <= bcol => {}
                        _ => {
                            t_max = t_max.min(limit_t);
                            leaving = Some((r, at_upper));
                        }
                    }
                }
            }
            if t_max == f64::INFINITY {
                return match phase {
                    // The composite infeasibility objective is bounded
                    // below by zero; an uncapped ray is numerical noise.
                    Phase::Feasibility => Err(MilpError::NumericalTrouble {
                        phase: phase_no,
                        iterations: self.max_iterations,
                    }),
                    Phase::Objective => Ok(PhaseOutcome::Unbounded),
                };
            }

            // --- Apply step ----------------------------------------------
            let step = sigma * t_max;
            if t_max > 0.0 {
                for (r, &wv) in w.iter().enumerate() {
                    if wv != 0.0 {
                        st.x[st.basis[r]] -= step * wv;
                    }
                }
                st.x[q] += step;
            }
            match leaving {
                None => {
                    // Bound flip: entering traverses its whole range.
                    st.status[q] = if sigma > 0.0 {
                        st.x[q] = std.upper[q];
                        BasisStatus::AtUpper
                    } else {
                        st.x[q] = std.lower[q];
                        BasisStatus::AtLower
                    };
                }
                Some((r, at_upper)) => {
                    let bcol = st.basis[r];
                    st.x[bcol] = if at_upper {
                        std.upper[bcol]
                    } else {
                        std.lower[bcol]
                    };
                    st.status[bcol] = if at_upper {
                        BasisStatus::AtUpper
                    } else {
                        BasisStatus::AtLower
                    };
                    st.status[q] = BasisStatus::Basic(r);
                    st.basis[r] = q;
                    pivot_update(&mut st.binv, r, &w, m);
                    since_refactor += 1;
                    if since_refactor >= self.refactor_every {
                        since_refactor = 0;
                        if !refactor(std, st) {
                            return Err(MilpError::NumericalTrouble {
                                phase: phase_no,
                                iterations: self.max_iterations,
                            });
                        }
                    }
                }
            }
        }
        Err(MilpError::NumericalTrouble {
            phase: phase_no,
            iterations: self.max_iterations,
        })
    }
}

/// Builds the standardized sparse form (see [`Std`] for the layout).
fn standardize(problem: &Problem, bounds: &[(f64, f64)]) -> Std {
    let m = problem.num_constraints();
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    let mut col_of = Vec::with_capacity(problem.num_vars());
    for &(lo, hi) in bounds {
        if lo == f64::NEG_INFINITY && hi == f64::INFINITY {
            let pos = lower.len();
            lower.push(0.0);
            upper.push(f64::INFINITY);
            let neg = lower.len();
            lower.push(0.0);
            upper.push(f64::INFINITY);
            col_of.push((pos, Some(neg)));
        } else {
            let c = lower.len();
            lower.push(lo);
            upper.push(hi);
            col_of.push((c, None));
        }
    }
    let mut logical = Vec::with_capacity(m);
    for c in problem.constraints() {
        let col = lower.len();
        lower.push(0.0);
        match c.cmp() {
            // Slack with its natural sign; its value must be ≥ 0.
            Cmp::Le | Cmp::Ge => upper.push(f64::INFINITY),
            // Artificial pinned to zero: it can start basic at the row
            // residual (phase 1 repairs it) but can never re-enter.
            Cmp::Eq => upper.push(0.0),
        }
        logical.push(col);
    }
    let ncols = lower.len();

    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
    let mut b = vec![0.0; m];
    for (k, c) in problem.constraints().enumerate() {
        for (v, coeff) in c.expr().iter() {
            let (pos, neg) = col_of[v.index()];
            cols[pos].push((k, coeff));
            if let Some(negc) = neg {
                cols[negc].push((k, -coeff));
            }
        }
        let logical_coeff = match c.cmp() {
            Cmp::Le => 1.0,
            Cmp::Ge => -1.0,
            Cmp::Eq => 1.0,
        };
        cols[logical[k]].push((k, logical_coeff));
        b[k] = c.rhs();
    }

    let sign = match problem.direction() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    let mut cost2 = vec![0.0; ncols];
    for (v, coeff) in problem.objective().iter() {
        let (pos, neg) = col_of[v.index()];
        cost2[pos] += sign * coeff;
        if let Some(negc) = neg {
            cost2[negc] -= sign * coeff;
        }
    }
    let feas_scale = 1.0 + b.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    Std {
        m,
        ncols,
        cols,
        lower,
        upper,
        col_of,
        b,
        logical,
        cost2,
        feas_scale,
    }
}

/// All columns at a finite bound, logical columns basic (B is ±diagonal).
fn cold_state(std: &Std) -> State {
    let mut status = Vec::with_capacity(std.ncols);
    for &lo in &std.lower {
        status.push(if lo.is_finite() {
            BasisStatus::AtLower
        } else {
            // Upper must be finite: fully-free variables were split.
            BasisStatus::AtUpper
        });
    }
    let mut basis = Vec::with_capacity(std.m);
    for (r, &col) in std.logical.iter().enumerate() {
        status[col] = BasisStatus::Basic(r);
        basis.push(col);
    }
    rebuild(std, basis, status).expect("the ±diagonal logical basis always factorizes")
}

/// Adopts a warm basis if it still fits this standardization; `None`
/// (→ cold start) when it does not.
fn warm_state(std: &Std, basis: &Basis) -> Option<State> {
    if basis.statuses.len() != std.ncols {
        return None;
    }
    let mut slots: Vec<Option<usize>> = vec![None; std.m];
    for (j, &s) in basis.statuses.iter().enumerate() {
        match s {
            BasisStatus::Basic(r) => {
                if r >= std.m || slots[r].is_some() {
                    return None;
                }
                slots[r] = Some(j);
            }
            BasisStatus::AtLower => {
                if !std.lower[j].is_finite() {
                    return None;
                }
            }
            BasisStatus::AtUpper => {
                if !std.upper[j].is_finite() {
                    return None;
                }
            }
        }
    }
    let cols: Option<Vec<usize>> = slots.into_iter().collect();
    rebuild(std, cols?, basis.statuses.clone())
}

/// Factorizes the basis and recomputes all column values; `None` if the
/// basis matrix is singular.
fn rebuild(std: &Std, basis: Vec<usize>, status: Vec<BasisStatus>) -> Option<State> {
    let binv = factorize(std, &basis)?;
    let mut st = State {
        binv,
        basis,
        status,
        x: vec![0.0; std.ncols],
    };
    {
        let State { status, x, .. } = &mut st;
        let bnds = std.lower.iter().zip(&std.upper);
        for ((xv, s), (lo, up)) in x.iter_mut().zip(status.iter()).zip(bnds) {
            *xv = match s {
                BasisStatus::AtLower => *lo,
                BasisStatus::AtUpper => *up,
                BasisStatus::Basic(_) => 0.0, // set below
            };
        }
    }
    set_basic_values(std, &mut st);
    Some(st)
}

/// Inverts the `m × m` basis matrix by Gauss–Jordan with partial
/// pivoting; `None` if (numerically) singular.
fn factorize(std: &Std, basis: &[usize]) -> Option<Vec<f64>> {
    let m = std.m;
    let mut mat = vec![0.0; m * m];
    for (slot, &col) in basis.iter().enumerate() {
        for &(k, a) in &std.cols[col] {
            mat[k * m + slot] = a;
        }
    }
    let mut inv = vec![0.0; m * m];
    for r in 0..m {
        inv[r * m + r] = 1.0;
    }
    for c in 0..m {
        let mut piv_row = c;
        let mut best = mat[c * m + c].abs();
        for r in c + 1..m {
            let a = mat[r * m + c].abs();
            if a > best {
                best = a;
                piv_row = r;
            }
        }
        if best < 1e-10 {
            return None;
        }
        if piv_row != c {
            for j in 0..m {
                mat.swap(c * m + j, piv_row * m + j);
                inv.swap(c * m + j, piv_row * m + j);
            }
        }
        let pinv = 1.0 / mat[c * m + c];
        for j in 0..m {
            mat[c * m + j] *= pinv;
            inv[c * m + j] *= pinv;
        }
        mat[c * m + c] = 1.0;
        for r in 0..m {
            if r == c {
                continue;
            }
            let f = mat[r * m + c];
            if f != 0.0 {
                for j in 0..m {
                    let mv = mat[c * m + j];
                    let iv = inv[c * m + j];
                    mat[r * m + j] -= f * mv;
                    inv[r * m + j] -= f * iv;
                }
                mat[r * m + c] = 0.0;
            }
        }
    }
    // `inv` now solves B_slot x = e_row; reorder so rows are slots:
    // Gauss-Jordan on [B | I] yields B⁻¹ directly in slot-major rows.
    Some(inv)
}

/// Recomputes the basic values `x_B = B⁻¹ (b − A_N x_N)` in place.
fn set_basic_values(std: &Std, st: &mut State) {
    let m = std.m;
    let mut rhs_eff = std.b.clone();
    for j in 0..std.ncols {
        if matches!(st.status[j], BasisStatus::Basic(_)) {
            continue;
        }
        let xj = st.x[j];
        if xj != 0.0 {
            for &(k, a) in &std.cols[j] {
                rhs_eff[k] -= a * xj;
            }
        }
    }
    for (r, &col) in st.basis.iter().enumerate() {
        let mut v = 0.0;
        for (k, &re) in rhs_eff.iter().enumerate() {
            v += st.binv[r * m + k] * re;
        }
        st.x[col] = v;
    }
}

/// Refactorizes `B⁻¹` from scratch and cleans the basic values.
fn refactor(std: &Std, st: &mut State) -> bool {
    match factorize(std, &st.basis) {
        Some(binv) => {
            st.binv = binv;
            set_basic_values(std, st);
            true
        }
        None => false,
    }
}

/// `y = c_B B⁻¹` (only rows with non-zero basis cost contribute).
fn btran(binv: &[f64], cb: &[f64], m: usize) -> Vec<f64> {
    let mut y = vec![0.0; m];
    for (r, &c) in cb.iter().enumerate() {
        if c != 0.0 {
            for (k, yk) in y.iter_mut().enumerate() {
                *yk += c * binv[r * m + k];
            }
        }
    }
    y
}

/// `w = B⁻¹ A_q` from the sparse column.
fn ftran(binv: &[f64], col: &[(usize, f64)], m: usize) -> Vec<f64> {
    let mut w = vec![0.0; m];
    for &(k, a) in col {
        for (r, wr) in w.iter_mut().enumerate() {
            *wr += binv[r * m + k] * a;
        }
    }
    w
}

/// Product-form update after a pivot at slot `r` with column image `w`:
/// `B⁻¹ ← E B⁻¹` where `E` differs from identity only in column `r`.
fn pivot_update(binv: &mut [f64], r: usize, w: &[f64], m: usize) {
    let piv = w[r];
    debug_assert!(piv.abs() > 1e-12, "pivot too small");
    let inv = 1.0 / piv;
    for j in 0..m {
        binv[r * m + j] *= inv;
    }
    for (i, &wi) in w.iter().enumerate() {
        if i == r || wi == 0.0 {
            continue;
        }
        for j in 0..m {
            let rv = binv[r * m + j];
            binv[i * m + j] -= wi * rv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &Problem) -> LpRun {
        let bounds: Vec<(f64, f64)> = p.vars().map(|v| p.var_bounds(v)).collect();
        RevisedSimplex::default()
            .solve_with_bounds(p, &bounds, None)
            .unwrap()
    }

    fn optimal(p: &Problem) -> LpSolution {
        match solve(p).outcome {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximize() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.constrain(1.0 * x, Cmp::Le, 4.0);
        p.constrain(2.0 * y, Cmp::Le, 12.0);
        p.constrain(3.0 * x + 2.0 * y, Cmp::Le, 18.0);
        p.set_objective(3.0 * x + 5.0 * y);
        let s = optimal(&p);
        assert!((s.objective() - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Eq, 5.0);
        p.constrain(x - y, Cmp::Eq, 1.0);
        p.set_objective(x + y);
        let s = optimal(&p);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        p.constrain(1.0 * x, Cmp::Ge, 2.0);
        p.set_objective(1.0 * x);
        assert_eq!(solve(&p).outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        p.set_objective(1.0 * x);
        assert_eq!(solve(&p).outcome, LpOutcome::Unbounded);
    }

    #[test]
    fn free_variable_is_split() {
        let mut p = Problem::minimize();
        let x = p.continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = p.continuous("y", f64::NEG_INFINITY, f64::INFINITY);
        p.constrain(y - x, Cmp::Ge, -4.0);
        p.constrain(y + x, Cmp::Ge, 0.0);
        p.set_objective(1.0 * y);
        let s = optimal(&p);
        assert!((s.objective() + 2.0).abs() < 1e-6, "obj={}", s.objective());
        assert!((s.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 5.0);
        let y = p.continuous("y", 0.0, 5.0);
        p.constrain(x + y, Cmp::Eq, 4.0);
        p.constrain(2.0 * x + 2.0 * y, Cmp::Eq, 8.0); // same plane
        p.set_objective(1.0 * x);
        let s = optimal(&p);
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_only_problem() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 3.5);
        let y = p.continuous("y", 1.0, 2.0);
        p.set_objective(x + y);
        let s = optimal(&p);
        assert!((s.objective() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classical cycling LP; Bland fallback guarantees
        // termination for the revised backend exactly as for the dense one.
        let mut p = Problem::minimize();
        let x1 = p.continuous("x1", 0.0, f64::INFINITY);
        let x2 = p.continuous("x2", 0.0, f64::INFINITY);
        let x3 = p.continuous("x3", 0.0, f64::INFINITY);
        let x4 = p.continuous("x4", 0.0, f64::INFINITY);
        p.constrain(0.25 * x1 - 8.0 * x2 - 1.0 * x3 + 9.0 * x4, Cmp::Le, 0.0);
        p.constrain(0.5 * x1 - 12.0 * x2 - 0.5 * x3 + 3.0 * x4, Cmp::Le, 0.0);
        p.constrain(1.0 * x3, Cmp::Le, 1.0);
        p.set_objective(-0.75 * x1 + 150.0 * x2 - 0.02 * x3 + 6.0 * x4);
        let s = optimal(&p);
        assert!((s.objective() + 0.77).abs() < 1e-6, "obj={}", s.objective());
    }

    #[test]
    fn warm_start_from_own_optimal_basis_is_cheap() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.constrain(1.0 * x, Cmp::Le, 4.0);
        p.constrain(2.0 * y, Cmp::Le, 12.0);
        p.constrain(3.0 * x + 2.0 * y, Cmp::Le, 18.0);
        p.set_objective(3.0 * x + 5.0 * y);
        let bounds: Vec<(f64, f64)> = p.vars().map(|v| p.var_bounds(v)).collect();
        let solver = RevisedSimplex::default();
        let cold = solver.solve_with_bounds(&p, &bounds, None).unwrap();
        assert_eq!(cold.warm, WarmStart::NotAttempted);
        let basis = cold.basis.clone().expect("optimal solve exports a basis");
        let warm = solver.solve_with_bounds(&p, &bounds, Some(&basis)).unwrap();
        assert_eq!(warm.warm, WarmStart::Hit);
        assert!(
            warm.pivots <= cold.pivots / 2,
            "re-solving from the optimal basis ({} pivots) should be much \
             cheaper than cold ({} pivots)",
            warm.pivots,
            cold.pivots
        );
        match (cold.outcome, warm.outcome) {
            (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                assert!((a.objective() - b.objective()).abs() < 1e-9);
            }
            other => panic!("expected optimal pair, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_repairs_after_bound_change() {
        // Tighten a bound so the warm basis is primal-infeasible: the
        // solve must repair it (the branch-and-bound child scenario).
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Le, 8.0);
        p.set_objective(2.0 * x + y);
        let bounds: Vec<(f64, f64)> = p.vars().map(|v| p.var_bounds(v)).collect();
        let solver = RevisedSimplex::default();
        let cold = solver.solve_with_bounds(&p, &bounds, None).unwrap();
        let basis = cold.basis.expect("basis exported");
        // New bounds exclude the previous optimum x = 8.
        let tightened = vec![(0.0, 3.0), (0.0, 10.0)];
        let warm = solver
            .solve_with_bounds(&p, &tightened, Some(&basis))
            .unwrap();
        assert_eq!(warm.warm, WarmStart::Hit);
        match warm.outcome {
            LpOutcome::Optimal(s) => {
                assert!((s.value(x) - 3.0).abs() < 1e-6);
                assert!((s.value(y) - 5.0).abs() < 1e-6);
                assert!((s.objective() - 11.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_warm_basis_is_a_miss() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 5.0);
        p.constrain(1.0 * x, Cmp::Le, 3.0);
        p.set_objective(1.0 * x);
        let bounds = vec![(0.0, 5.0)];
        let bogus = Basis {
            statuses: vec![BasisStatus::AtLower; 7], // wrong width
        };
        let run = RevisedSimplex::default()
            .solve_with_bounds(&p, &bounds, Some(&bogus))
            .unwrap();
        assert_eq!(run.warm, WarmStart::Miss);
        match run.outcome {
            LpOutcome::Optimal(s) => assert!((s.objective() - 3.0).abs() < 1e-9),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = Problem::minimize();
        let run = RevisedSimplex::default()
            .solve_with_bounds(&p, &[], None)
            .unwrap();
        match run.outcome {
            LpOutcome::Optimal(s) => assert_eq!(s.objective(), 0.0),
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
