//! # pmcs-audit
//!
//! Static analysis and certification tooling for the `pmcs` workspace —
//! three independent passes that cross-check the analysis pipeline
//! without trusting any single component:
//!
//! 1. **Exact MILP certificate checking** (re-exported from
//!    [`pmcs_milp::audit`]): every floating-point solver answer is
//!    re-verified with `i128` rational arithmetic — primal feasibility,
//!    integrality, the bound sandwich for limit-reached solves, and
//!    Farkas-style infeasibility certificates.
//! 2. **Formulation linting** ([`lint`], [`lint_sequence`]): structural
//!    diagnostics (`A001`–`A010`) over [`pmcs_milp::Problem`] instances —
//!    unused variables, contradictory bounds, unbounded objectives,
//!    duplicate constraints, big-M conditioning and looseness hazards,
//!    symmetric variable groups, presolve-ghost variables, and
//!    budget-row monotonicity across fixed-point rounds.
//! 3. **Protocol conformance analysis** (re-exported from
//!    [`pmcs_sim::conformance`]): rule-addressable R1–R6 checks over
//!    simulator traces, cross-referenced with
//!    [`pmcs_core::protocol::RULES`].
//!
//! The `pmcs-audit` binary drives all three:
//!
//! ```text
//! cargo run -p pmcs-audit -- trace   # simulate + conformance-check + corruption demo
//! cargo run -p pmcs-audit -- milp    # solve_audited over generated WCRT windows
//! cargo run -p pmcs-audit -- lint    # lint generated formulations + a demo problem
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod lint;

pub use lint::{
    lint, lint_sequence, LintCode, LintDiagnostic, LintReport, Severity, BIG_M_SPREAD,
    BUDGET_ROW_PREFIX, LINT_CODES, LOOSE_BIG_M_FACTOR, SYMMETRY_GROUP_MIN,
};

// One-stop re-exports: the other two analysis passes live next to the
// data they check, but `pmcs_audit::…` exposes the whole toolbox.
pub use pmcs_milp::{
    AuditCheck, AuditReport, AuditedOutcome, AuditedSolve, CheckStatus, InfeasibilityCertificate,
};
pub use pmcs_sim::{check_conformance, ConformanceReport, RuleDiagnostic, RuleTag};
