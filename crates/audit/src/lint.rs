//! Formulation linter: static diagnostics over a [`Problem`].
//!
//! The linter never solves anything — every check is a pure structural
//! pass over the variables, bounds, constraints, and objective. Each
//! finding carries a stable diagnostic code so tests and downstream
//! tooling can address individual rules:
//!
//! | code | severity | finding |
//! |---|---|---|
//! | `A001` | warning | variable used in no constraint and not in the objective |
//! | `A002` | error | contradictory bounds or trivially-infeasible constraint |
//! | `A003` | error | objective can grow without bound through an unconstrained variable |
//! | `A004` | warning | duplicate constraint (identical up to positive scaling) |
//! | `A005` | warning | badly conditioned constraint (big-M coefficient spread) |
//! | `A006` | info | constraint is trivially true and can never bind |
//! | `A007` | warning | big-M far looser than the derivable variable bounds require |
//! | `A008` | info | large group of interchangeable variables (symmetry blowup signature) |
//! | `A009` | warning | variable referenced only by presolve-removable rows |
//! | `A010` | warning | budget-row RHS shrinks across fixed-point rounds ([`lint_sequence`]) |
//!
//! `A001`–`A009` are single-problem checks run by [`lint`]; `A010` is a
//! cross-problem check over the successive formulations of one
//! fixed-point iteration, run by [`lint_sequence`].
//!
//! A *clean* report ([`LintReport::is_clean`]) has no warnings and no
//! errors; `A006`/`A008` findings are informational and do not dirty a
//! report.

use std::collections::HashMap;
use std::fmt;

use pmcs_milp::{Cmp, ConstraintRef, Objective, Problem, Var, VarKind};

/// Coefficient-magnitude spread within one constraint above which `A005`
/// fires. Simplex pivots divide by coefficients; spreads beyond ~1e7
/// erode the `1e-6`-scale feasibility tolerances the solver works with.
pub const BIG_M_SPREAD: f64 = 1e7;

/// Slack factor above which `A007` fires: a big-M on an indicator is
/// *loose* when it exceeds this multiple of the bound derivable from the
/// remaining terms' variable ranges. Anything past ~8× weakens the LP
/// relaxation (fractional indicators get cheap) without buying any
/// correctness.
pub const LOOSE_BIG_M_FACTOR: f64 = 8.0;

/// Minimum number of mutually interchangeable variables before `A008`
/// fires. Smaller symmetric groups are routine; at eight and beyond the
/// unbroken-symmetry branching blowup (up to `8! = 40320` equivalent
/// subtrees) dominates solve time — the signature the paper's `n ≥ 8`
/// runtime cliff shows.
pub const SYMMETRY_GROUP_MIN: usize = 8;

/// Constraint-name prefix identifying per-task budget rows
/// (`C7_{j}`: `η_j` supply in the formulation). `A010` tracks the RHS of
/// these rows across fixed-point rounds.
pub const BUDGET_ROW_PREFIX: &str = "C7";

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; the formulation is still correct.
    Info,
    /// Suspicious structure: likely a formulation bug or a numerical
    /// hazard, but not provably wrong.
    Warning,
    /// The formulation is provably broken (infeasible or unbounded).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// `A001`: variable appears in no constraint and not in the objective.
    UnusedVariable,
    /// `A002`: contradictory variable bounds (including integer-empty
    /// ranges) or a constraint no point within the bounds can satisfy.
    InfeasibleBounds,
    /// `A003`: the objective improves without limit along a variable that
    /// no constraint touches and whose improving bound is infinite.
    UnboundedObjective,
    /// `A004`: two constraints are identical up to positive scaling.
    DuplicateConstraint,
    /// `A005`: coefficient magnitudes within one constraint span more
    /// than [`BIG_M_SPREAD`].
    BigMConditioning,
    /// `A006`: the constraint holds for every point within the variable
    /// bounds and can never bind.
    TrivialConstraint,
    /// `A007`: a big-M coefficient on a binary indicator exceeds
    /// [`LOOSE_BIG_M_FACTOR`] times the bound the other terms' variable
    /// ranges make sufficient.
    LooseBigM,
    /// `A008`: at least [`SYMMETRY_GROUP_MIN`] variables are mutually
    /// interchangeable (identical kind, bounds, objective coefficient,
    /// and constraint-coefficient multiset) — the branching-blowup
    /// signature.
    SymmetricVariables,
    /// `A009`: a variable outside the objective is referenced only by
    /// trivially-true constraints, so presolve removes every row that
    /// mentions it and the variable survives with no effect.
    UnreferencedAfterPresolve,
    /// `A010`: a budget row's RHS (`η_j` supply, rows named
    /// [`BUDGET_ROW_PREFIX`]`_{j}`) shrinks between successive
    /// fixed-point rounds; budgets must be non-decreasing in the window
    /// length for the iteration to be monotone.
    BudgetNonMonotonic,
}

/// All lint codes, in code order (useful for documentation dumps).
pub const LINT_CODES: [LintCode; 10] = [
    LintCode::UnusedVariable,
    LintCode::InfeasibleBounds,
    LintCode::UnboundedObjective,
    LintCode::DuplicateConstraint,
    LintCode::BigMConditioning,
    LintCode::TrivialConstraint,
    LintCode::LooseBigM,
    LintCode::SymmetricVariables,
    LintCode::UnreferencedAfterPresolve,
    LintCode::BudgetNonMonotonic,
];

impl LintCode {
    /// The stable textual code (`A001` …).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UnusedVariable => "A001",
            LintCode::InfeasibleBounds => "A002",
            LintCode::UnboundedObjective => "A003",
            LintCode::DuplicateConstraint => "A004",
            LintCode::BigMConditioning => "A005",
            LintCode::TrivialConstraint => "A006",
            LintCode::LooseBigM => "A007",
            LintCode::SymmetricVariables => "A008",
            LintCode::UnreferencedAfterPresolve => "A009",
            LintCode::BudgetNonMonotonic => "A010",
        }
    }

    /// Severity every diagnostic of this code carries.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::UnusedVariable => Severity::Warning,
            LintCode::InfeasibleBounds => Severity::Error,
            LintCode::UnboundedObjective => Severity::Error,
            LintCode::DuplicateConstraint => Severity::Warning,
            LintCode::BigMConditioning => Severity::Warning,
            LintCode::TrivialConstraint => Severity::Info,
            LintCode::LooseBigM => Severity::Warning,
            LintCode::SymmetricVariables => Severity::Info,
            LintCode::UnreferencedAfterPresolve => Severity::Warning,
            LintCode::BudgetNonMonotonic => Severity::Warning,
        }
    }

    /// One-line description of the rule.
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::UnusedVariable => "variable used in no constraint and not in the objective",
            LintCode::InfeasibleBounds => "contradictory bounds or trivially-infeasible constraint",
            LintCode::UnboundedObjective => {
                "objective grows without bound through an unconstrained variable"
            }
            LintCode::DuplicateConstraint => "duplicate constraint",
            LintCode::BigMConditioning => "badly conditioned constraint (big-M spread)",
            LintCode::TrivialConstraint => "constraint is trivially true and never binds",
            LintCode::LooseBigM => "big-M far looser than the derivable variable bounds require",
            LintCode::SymmetricVariables => {
                "large group of interchangeable variables (symmetry blowup signature)"
            }
            LintCode::UnreferencedAfterPresolve => {
                "variable referenced only by presolve-removable rows"
            }
            LintCode::BudgetNonMonotonic => "budget-row RHS shrinks across fixed-point rounds",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One linter finding.
#[derive(Debug, Clone)]
pub struct LintDiagnostic {
    /// The rule that fired.
    pub code: LintCode,
    /// The offending variable, if the finding is about a variable.
    pub var: Option<Var>,
    /// Index of the offending constraint, if any (see
    /// [`ConstraintRef::index`]).
    pub constraint: Option<usize>,
    /// Human-readable explanation with names and numbers.
    pub message: String,
}

impl LintDiagnostic {
    /// The severity (always [`LintCode::severity`] of the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.code, self.severity(), self.message)
    }
}

/// Result of linting one [`Problem`].
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    diagnostics: Vec<LintDiagnostic>,
}

impl LintReport {
    /// All findings, in check order.
    pub fn diagnostics(&self) -> &[LintDiagnostic] {
        &self.diagnostics
    }

    /// `true` iff there are no warnings and no errors (info findings are
    /// tolerated).
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity() == Severity::Info)
    }

    /// `true` iff at least one finding is an error (the formulation is
    /// provably infeasible or unbounded).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// Findings with the given code.
    pub fn with_code(&self, code: LintCode) -> impl Iterator<Item = &LintDiagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Appends every finding of `other` (useful to pool the per-problem
    /// [`lint`] reports with a cross-round [`lint_sequence`] report).
    pub fn merge(&mut self, other: &LintReport) {
        self.diagnostics.extend(other.diagnostics.iter().cloned());
    }

    fn push(
        &mut self,
        code: LintCode,
        var: Option<Var>,
        constraint: Option<usize>,
        message: String,
    ) {
        self.diagnostics.push(LintDiagnostic {
            code,
            var,
            constraint,
            message,
        });
    }
}

/// Runs every single-problem lint rule (`A001`–`A009`) over `problem`.
pub fn lint(problem: &Problem) -> LintReport {
    let mut report = LintReport::default();
    check_unused_variables(problem, &mut report);
    check_bounds(problem, &mut report);
    check_constraint_ranges(problem, &mut report);
    check_unbounded_objective(problem, &mut report);
    check_duplicates(problem, &mut report);
    check_conditioning(problem, &mut report);
    check_loose_big_m(problem, &mut report);
    check_symmetry(problem, &mut report);
    check_unreferenced_after_presolve(problem, &mut report);
    report
}

/// Runs the cross-problem rules (`A010`) over the successive formulations
/// of one fixed-point iteration, in round order.
///
/// The budget rows ([`BUDGET_ROW_PREFIX`]`_{j}`) carry the per-task
/// supply `η_j(t)`, which is non-decreasing in the window length `t`;
/// the fixed point only grows windows between rounds, so a shrinking
/// budget RHS means rounds were passed out of order or the supply curve
/// is wrong — either way the iteration loses its monotonicity argument.
pub fn lint_sequence(problems: &[Problem]) -> LintReport {
    let mut report = LintReport::default();
    let mut prev: HashMap<String, (usize, f64)> = HashMap::new();
    for (round, problem) in problems.iter().enumerate() {
        for c in problem.constraints() {
            let Some(name) = c.name() else {
                continue;
            };
            if !name.starts_with(BUDGET_ROW_PREFIX) {
                continue;
            }
            let rhs = c.rhs();
            if let Some(&(prev_round, prev_rhs)) = prev.get(name) {
                if rhs < prev_rhs {
                    report.push(
                        LintCode::BudgetNonMonotonic,
                        None,
                        Some(c.index()),
                        format!(
                            "budget row {name}: RHS shrank from {prev_rhs} (round \
                             {prev_round}) to {rhs} (round {round}); budgets must be \
                             non-decreasing across fixed-point rounds"
                        ),
                    );
                }
            }
            prev.insert(name.to_string(), (round, rhs));
        }
    }
    report
}

/// `true` if `var` has a non-zero coefficient in any constraint.
fn used_in_constraints(problem: &Problem, var: Var) -> bool {
    problem
        .constraints()
        .any(|c| c.expr().coefficient(var) != 0.0)
}

// --- A001 ---------------------------------------------------------------

fn check_unused_variables(problem: &Problem, report: &mut LintReport) {
    for var in problem.vars() {
        if problem.objective().coefficient(var) == 0.0 && !used_in_constraints(problem, var) {
            report.push(
                LintCode::UnusedVariable,
                Some(var),
                None,
                format!(
                    "variable x{} ({}) appears in no constraint and not in the objective",
                    var.index(),
                    problem.var_name(var)
                ),
            );
        }
    }
}

// --- A002 (variable bounds) ---------------------------------------------

fn check_bounds(problem: &Problem, report: &mut LintReport) {
    for var in problem.vars() {
        let (lo, hi) = problem.var_bounds(var);
        let name = problem.var_name(var);
        let i = var.index();
        if lo > hi {
            report.push(
                LintCode::InfeasibleBounds,
                Some(var),
                None,
                format!("variable x{i} ({name}) has inverted bounds [{lo}, {hi}]"),
            );
        } else if problem.var_kind(var).is_integral() && lo.ceil() > hi.floor() {
            report.push(
                LintCode::InfeasibleBounds,
                Some(var),
                None,
                format!("integer variable x{i} ({name}) has no integer point in [{lo}, {hi}]"),
            );
        }
    }
}

// --- A002 / A006 (constraint achievability) -----------------------------

/// Range `[min, max]` the left-hand side of `c` can take over the variable
/// bounds (interval arithmetic; infinities propagate).
fn lhs_range(problem: &Problem, c: &ConstraintRef<'_>) -> (f64, f64) {
    let mut min = 0.0_f64;
    let mut max = 0.0_f64;
    for (var, coeff) in c.expr().iter() {
        if coeff == 0.0 {
            continue;
        }
        let (lo, hi) = problem.var_bounds(var);
        // Skip over inverted bounds: A002 already fired on the variable
        // and any range statement about this constraint would be vacuous.
        if lo > hi {
            return (f64::NEG_INFINITY, f64::INFINITY);
        }
        let (a, b) = if coeff > 0.0 {
            (coeff * lo, coeff * hi)
        } else {
            (coeff * hi, coeff * lo)
        };
        // `0 * inf` is NaN; a zero endpoint times an infinite bound
        // contributes zero, not NaN.
        min += if a.is_nan() { 0.0 } else { a };
        max += if b.is_nan() { 0.0 } else { b };
    }
    (min, max)
}

fn check_constraint_ranges(problem: &Problem, report: &mut LintReport) {
    for c in problem.constraints() {
        let (min, max) = lhs_range(problem, &c);
        let rhs = c.rhs();
        let label = constraint_label(&c);
        let (infeasible, trivial) = match c.cmp() {
            Cmp::Le => (min > rhs, max <= rhs),
            Cmp::Ge => (max < rhs, min >= rhs),
            Cmp::Eq => (min > rhs || max < rhs, min == rhs && max == rhs),
        };
        if infeasible {
            report.push(
                LintCode::InfeasibleBounds,
                None,
                Some(c.index()),
                format!(
                    "constraint {label} is infeasible over the variable bounds: \
                     lhs range [{min}, {max}] never satisfies {} {rhs}",
                    c.cmp()
                ),
            );
        } else if trivial {
            report.push(
                LintCode::TrivialConstraint,
                None,
                Some(c.index()),
                format!(
                    "constraint {label} is trivially true: lhs range [{min}, {max}] \
                     always satisfies {} {rhs}",
                    c.cmp()
                ),
            );
        }
    }
}

fn constraint_label(c: &ConstraintRef<'_>) -> String {
    match c.name() {
        Some(name) => format!("#{} [{name}]", c.index()),
        None => format!("#{}", c.index()),
    }
}

// --- A003 ---------------------------------------------------------------

fn check_unbounded_objective(problem: &Problem, report: &mut LintReport) {
    for (var, coeff) in problem.objective().iter() {
        if coeff == 0.0 || used_in_constraints(problem, var) {
            continue;
        }
        let (lo, hi) = problem.var_bounds(var);
        let improving = match problem.direction() {
            Objective::Maximize => {
                if coeff > 0.0 {
                    hi == f64::INFINITY
                } else {
                    lo == f64::NEG_INFINITY
                }
            }
            Objective::Minimize => {
                if coeff > 0.0 {
                    lo == f64::NEG_INFINITY
                } else {
                    hi == f64::INFINITY
                }
            }
        };
        if improving {
            report.push(
                LintCode::UnboundedObjective,
                Some(var),
                None,
                format!(
                    "variable x{} ({}) has objective coefficient {coeff}, bounds \
                     [{lo}, {hi}], and no constraint limits it: the objective is unbounded",
                    var.index(),
                    problem.var_name(var)
                ),
            );
        }
    }
}

// --- A004 ---------------------------------------------------------------

/// Canonical constraint shape for duplicate detection: scaled term bit
/// patterns, a comparison tag, and the scaled right-hand side.
type ConstraintKey = (Vec<(usize, u64)>, u8, u64);

/// Canonical form for duplicate detection: terms scaled so the first
/// non-zero coefficient is ±1 with positive sign, `Ge` flipped to `Le`.
/// Coefficients are hashed via their bit patterns after scaling.
fn canonical_key(c: &ConstraintRef<'_>) -> Option<ConstraintKey> {
    let mut terms: Vec<(usize, f64)> = c
        .expr()
        .iter()
        .filter(|&(_, coeff)| coeff != 0.0)
        .map(|(v, coeff)| (v.index(), coeff))
        .collect();
    if terms.is_empty() {
        return None;
    }
    terms.sort_by_key(|&(i, _)| i);
    let lead = terms[0].1;
    let scale = lead.abs();
    let flip = lead < 0.0;
    let mut rhs = c.rhs() / scale;
    let mut cmp = c.cmp();
    if flip {
        rhs = -rhs;
        cmp = match cmp {
            Cmp::Le => Cmp::Ge,
            Cmp::Ge => Cmp::Le,
            Cmp::Eq => Cmp::Eq,
        };
    }
    let sign = if flip { -1.0 } else { 1.0 };
    let packed: Vec<(usize, u64)> = terms
        .into_iter()
        .map(|(i, coeff)| (i, (sign * coeff / scale).to_bits()))
        .collect();
    let cmp_tag = match cmp {
        Cmp::Le => 0u8,
        Cmp::Eq => 1,
        Cmp::Ge => 2,
    };
    Some((packed, cmp_tag, rhs.to_bits()))
}

fn check_duplicates(problem: &Problem, report: &mut LintReport) {
    use std::collections::HashMap;
    let mut seen: HashMap<ConstraintKey, usize> = HashMap::new();
    for c in problem.constraints() {
        let Some(key) = canonical_key(&c) else {
            continue;
        };
        match seen.get(&key) {
            Some(&first) => {
                report.push(
                    LintCode::DuplicateConstraint,
                    None,
                    Some(c.index()),
                    format!(
                        "constraint {} duplicates constraint #{first} \
                         (identical up to positive scaling)",
                        constraint_label(&c)
                    ),
                );
            }
            None => {
                seen.insert(key, c.index());
            }
        }
    }
}

// --- A005 ---------------------------------------------------------------

fn check_conditioning(problem: &Problem, report: &mut LintReport) {
    for c in problem.constraints() {
        let mut min_mag = f64::INFINITY;
        let mut max_mag = 0.0_f64;
        for (_, coeff) in c.expr().iter() {
            if coeff == 0.0 {
                continue;
            }
            min_mag = min_mag.min(coeff.abs());
            max_mag = max_mag.max(coeff.abs());
        }
        if max_mag > 0.0 && max_mag / min_mag > BIG_M_SPREAD {
            report.push(
                LintCode::BigMConditioning,
                None,
                Some(c.index()),
                format!(
                    "constraint {} mixes coefficient magnitudes {min_mag} and {max_mag} \
                     (spread {:.1e} > {BIG_M_SPREAD:.0e}): big-M too large for the \
                     solver's 1e-6 tolerances",
                    constraint_label(&c),
                    max_mag / min_mag
                ),
            );
        }
    }
}

// --- A007 ---------------------------------------------------------------

/// Range `[min, max]` of the lhs of `c` with variable `skip` excluded —
/// the load a big-M on `skip` has to absorb when its indicator flips.
fn rest_range(problem: &Problem, c: &ConstraintRef<'_>, skip: Var) -> (f64, f64) {
    let mut min = 0.0_f64;
    let mut max = 0.0_f64;
    for (var, coeff) in c.expr().iter() {
        if coeff == 0.0 || var == skip {
            continue;
        }
        let (lo, hi) = problem.var_bounds(var);
        if lo > hi {
            return (f64::NEG_INFINITY, f64::INFINITY);
        }
        let (a, b) = if coeff > 0.0 {
            (coeff * lo, coeff * hi)
        } else {
            (coeff * hi, coeff * lo)
        };
        min += if a.is_nan() { 0.0 } else { a };
        max += if b.is_nan() { 0.0 } else { b };
    }
    (min, max)
}

fn check_loose_big_m(problem: &Problem, report: &mut LintReport) {
    for c in problem.constraints() {
        for (var, coeff) in c.expr().iter() {
            if coeff == 0.0 || problem.var_kind(var) != VarKind::Binary {
                continue;
            }
            // Only terms that *relax* the row when the indicator is set:
            // a negative coefficient on a `<=` row or a positive one on a
            // `>=` row. That is the big-M gadget shape.
            let relaxing = match c.cmp() {
                Cmp::Le => coeff < 0.0,
                Cmp::Ge => coeff > 0.0,
                Cmp::Eq => false,
            };
            if !relaxing {
                continue;
            }
            let big_m = coeff.abs();
            let (rest_min, rest_max) = rest_range(problem, &c, var);
            // Smallest M that already deactivates the row over the
            // variable bounds; derivable from the formulation itself.
            let needed = match c.cmp() {
                Cmp::Le => rest_max - c.rhs(),
                Cmp::Ge => c.rhs() - rest_min,
                Cmp::Eq => unreachable!("filtered above"),
            };
            if needed.is_finite() && needed > 0.0 && big_m > LOOSE_BIG_M_FACTOR * needed {
                report.push(
                    LintCode::LooseBigM,
                    Some(var),
                    Some(c.index()),
                    format!(
                        "constraint {}: big-M {big_m} on indicator x{} ({}) is \
                         {:.1}x the {needed} the variable bounds make sufficient \
                         (> {LOOSE_BIG_M_FACTOR}x): tighten M to strengthen the \
                         LP relaxation",
                        constraint_label(&c),
                        var.index(),
                        problem.var_name(var),
                        big_m / needed
                    ),
                );
            }
        }
    }
}

// --- A008 ---------------------------------------------------------------

/// Column fingerprint for symmetry detection: two variables with equal
/// fingerprints can be swapped without changing the feasible set or the
/// objective (the multiset of constraint coefficients ignores *which*
/// rows they appear in, so this over-approximates true interchangeability
/// slightly — acceptable for an informational finding).
type ColumnFingerprint = (u8, u64, u64, u64, Vec<u64>);

fn column_fingerprint(problem: &Problem, var: Var) -> ColumnFingerprint {
    let kind = match problem.var_kind(var) {
        VarKind::Continuous => 0u8,
        VarKind::Integer => 1,
        VarKind::Binary => 2,
    };
    let (lo, hi) = problem.var_bounds(var);
    let mut coeffs: Vec<u64> = problem
        .constraints()
        .map(|c| c.expr().coefficient(var))
        .filter(|&coeff| coeff != 0.0)
        .map(f64::to_bits)
        .collect();
    coeffs.sort_unstable();
    (
        kind,
        lo.to_bits(),
        hi.to_bits(),
        problem.objective().coefficient(var).to_bits(),
        coeffs,
    )
}

fn check_symmetry(problem: &Problem, report: &mut LintReport) {
    let mut groups: Vec<(ColumnFingerprint, Vec<Var>)> = Vec::new();
    for var in problem.vars() {
        let fp = column_fingerprint(problem, var);
        match groups.iter_mut().find(|(g, _)| *g == fp) {
            Some((_, members)) => members.push(var),
            None => groups.push((fp, vec![var])),
        }
    }
    for (_, members) in groups {
        if members.len() < SYMMETRY_GROUP_MIN {
            continue;
        }
        let first = members[0];
        let last = members[members.len() - 1];
        report.push(
            LintCode::SymmetricVariables,
            Some(first),
            None,
            format!(
                "{} interchangeable variables (x{} {} … x{} {}): unbroken symmetry \
                 multiplies the search tree by up to {}!; add lexicographic ordering \
                 cuts or aggregate the group",
                members.len(),
                first.index(),
                problem.var_name(first),
                last.index(),
                problem.var_name(last),
                members.len(),
            ),
        );
    }
}

// --- A009 ---------------------------------------------------------------

/// `true` iff `c` holds for every point within the variable bounds (the
/// same test `A006` uses).
fn is_trivially_true(problem: &Problem, c: &ConstraintRef<'_>) -> bool {
    let (min, max) = lhs_range(problem, c);
    let rhs = c.rhs();
    match c.cmp() {
        Cmp::Le => max <= rhs,
        Cmp::Ge => min >= rhs,
        Cmp::Eq => min == rhs && max == rhs,
    }
}

fn check_unreferenced_after_presolve(problem: &Problem, report: &mut LintReport) {
    let trivial: Vec<bool> = problem
        .constraints()
        .map(|c| is_trivially_true(problem, &c))
        .collect();
    for var in problem.vars() {
        if problem.objective().coefficient(var) != 0.0 {
            continue;
        }
        let mut referenced = 0usize;
        let mut surviving = 0usize;
        for c in problem.constraints() {
            if c.expr().coefficient(var) == 0.0 {
                continue;
            }
            referenced += 1;
            if !trivial[c.index()] {
                surviving += 1;
            }
        }
        // `referenced == 0` is A001's territory; A009 is the subtler
        // case where the variable *looks* used but presolve deletes
        // every row that mentions it.
        if referenced > 0 && surviving == 0 {
            report.push(
                LintCode::UnreferencedAfterPresolve,
                Some(var),
                None,
                format!(
                    "variable x{} ({}) appears only in {referenced} trivially-true \
                     constraint(s): presolve removes every row that mentions it, \
                     leaving it with no effect",
                    var.index(),
                    problem.var_name(var)
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_problem_yields_clean_report() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.integer("y", 0.0, 5.0);
        p.constrain(x + y, Cmp::Le, 8.0);
        p.set_objective(x + 2.0 * y);
        let r = lint(&p);
        assert!(r.is_clean(), "unexpected findings: {:?}", r.diagnostics());
        assert!(!r.has_errors());
    }

    #[test]
    fn a001_unused_variable() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let dead = p.continuous("dead", 0.0, 1.0);
        p.constrain(x, Cmp::Le, 1.0);
        p.set_objective(x);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::UnusedVariable).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].var, Some(dead));
        assert_eq!(hits[0].severity(), Severity::Warning);
        assert!(hits[0].message.contains("dead"));
    }

    #[test]
    fn a002_inverted_bounds() {
        let mut p = Problem::minimize();
        let x = p.continuous("x", 2.0, 1.0);
        p.set_objective(x);
        let r = lint(&p);
        assert!(r.has_errors());
        assert!(r
            .with_code(LintCode::InfeasibleBounds)
            .any(|d| d.var == Some(x)));
    }

    #[test]
    fn a002_integer_empty_range() {
        let mut p = Problem::minimize();
        let x = p.integer("x", 0.2, 0.8);
        p.constrain(x, Cmp::Ge, 0.0);
        p.set_objective(x);
        let r = lint(&p);
        assert!(r
            .with_code(LintCode::InfeasibleBounds)
            .any(|d| d.message.contains("no integer point")));
        // A continuous variable with the same bounds is fine.
        let mut q = Problem::minimize();
        let y = q.continuous("y", 0.2, 0.8);
        q.constrain(y, Cmp::Ge, 0.0);
        q.set_objective(y);
        assert!(lint(&q).is_clean());
    }

    #[test]
    fn a002_unachievable_constraint() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let y = p.continuous("y", 0.0, 1.0);
        p.constrain_named(Some("impossible"), x + y, Cmp::Ge, 3.0);
        p.set_objective(x);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::InfeasibleBounds).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].constraint, Some(0));
        assert!(hits[0].message.contains("impossible"));
    }

    #[test]
    fn a003_unbounded_objective() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        p.set_objective(x);
        let r = lint(&p);
        assert!(r.has_errors());
        assert!(r
            .with_code(LintCode::UnboundedObjective)
            .any(|d| d.var == Some(x)));
        // Bounded above: fine for maximization.
        let mut q = Problem::maximize();
        let y = q.continuous("y", 0.0, 5.0);
        q.set_objective(y);
        assert!(!lint(&q).has_errors());
        // Same structure but minimizing: lower bound 0 protects it.
        let mut m = Problem::minimize();
        let z = m.continuous("z", 0.0, f64::INFINITY);
        m.set_objective(z);
        assert!(!lint(&m).has_errors());
    }

    #[test]
    fn a004_duplicate_constraints() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.constrain(x + y, Cmp::Le, 4.0);
        p.constrain(2.0 * x + 2.0 * y, Cmp::Le, 8.0); // scaled duplicate
        p.constrain(-1.0 * x + -1.0 * y, Cmp::Ge, -4.0); // negated duplicate
        p.constrain(x + 2.0 * y, Cmp::Le, 4.0); // genuinely different
        p.set_objective(x + y);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::DuplicateConstraint).collect();
        assert_eq!(hits.len(), 2, "findings: {:?}", r.diagnostics());
        assert!(hits.iter().all(|d| d.message.contains("#0")));
    }

    #[test]
    fn a005_big_m_spread() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let b = p.binary("gate");
        p.constrain(x + -1e9 * b, Cmp::Le, 0.0);
        p.set_objective(x);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::BigMConditioning).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].constraint, Some(0));
        assert_eq!(hits[0].severity(), Severity::Warning);
    }

    #[test]
    fn a006_trivially_true_constraint() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 2.0);
        p.constrain(x, Cmp::Le, 100.0); // can never bind
        p.set_objective(x);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::TrivialConstraint).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity(), Severity::Info);
        assert!(r.is_clean(), "info findings must not dirty the report");
    }

    #[test]
    fn a007_loose_big_m() {
        // Rest of lhs is x in [0, 1] against rhs 0: M = 1 suffices, 1e5
        // is 1e5x looser. The spread (1e5) stays below BIG_M_SPREAD so
        // A005 does not co-fire — the rules are independent.
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let gate = p.binary("gate");
        p.constrain(x + -1e5 * gate, Cmp::Le, 0.0);
        p.set_objective(x);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::LooseBigM).collect();
        assert_eq!(hits.len(), 1, "findings: {:?}", r.diagnostics());
        assert_eq!(hits[0].var, Some(gate));
        assert_eq!(hits[0].constraint, Some(0));
        assert_eq!(hits[0].severity(), Severity::Warning);
        assert!(r.with_code(LintCode::BigMConditioning).next().is_none());
    }

    #[test]
    fn a007_tight_big_m_is_clean() {
        // M = 1 exactly covers x in [0, 1]: the canonical tight gadget.
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let gate = p.binary("gate");
        p.constrain(x + -1.0 * gate, Cmp::Le, 0.0);
        p.set_objective(x + gate);
        let r = lint(&p);
        assert!(r.with_code(LintCode::LooseBigM).next().is_none());
        // A >= row with a relaxing positive indicator coefficient also
        // fires when loose.
        let mut q = Problem::minimize();
        let y = q.continuous("y", 0.0, 4.0);
        let g = q.binary("g");
        q.constrain(y + 1e4 * g, Cmp::Ge, 2.0);
        q.set_objective(y + g);
        assert_eq!(lint(&q).with_code(LintCode::LooseBigM).count(), 1);
    }

    #[test]
    fn a008_symmetric_group() {
        let mut p = Problem::maximize();
        let mut obj = pmcs_milp::LinExpr::default();
        let mut sum = pmcs_milp::LinExpr::default();
        for i in 0..SYMMETRY_GROUP_MIN {
            let b = p.binary(&format!("slot{i}"));
            obj += 1.0 * b;
            sum += 1.0 * b;
        }
        p.constrain(sum, Cmp::Le, 3.0);
        p.set_objective(obj);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::SymmetricVariables).collect();
        assert_eq!(hits.len(), 1, "findings: {:?}", r.diagnostics());
        assert_eq!(hits[0].severity(), Severity::Info);
        assert!(hits[0].message.contains("8 interchangeable"));
        assert!(r.is_clean(), "info findings must not dirty the report");
    }

    #[test]
    fn a008_below_threshold_or_asymmetric_is_clean() {
        // Seven identical binaries: one short of the threshold.
        let mut p = Problem::maximize();
        let mut obj = pmcs_milp::LinExpr::default();
        let mut sum = pmcs_milp::LinExpr::default();
        for i in 0..SYMMETRY_GROUP_MIN - 1 {
            let b = p.binary(&format!("slot{i}"));
            obj += 1.0 * b;
            sum += 1.0 * b;
        }
        p.constrain(sum, Cmp::Le, 3.0);
        p.set_objective(obj);
        assert!(lint(&p)
            .with_code(LintCode::SymmetricVariables)
            .next()
            .is_none());
        // Eight binaries with distinct objective weights: not a group.
        let mut q = Problem::maximize();
        let mut qobj = pmcs_milp::LinExpr::default();
        let mut qsum = pmcs_milp::LinExpr::default();
        for i in 0..SYMMETRY_GROUP_MIN {
            let b = q.binary(&format!("slot{i}"));
            qobj += (i as f64 + 1.0) * b;
            qsum += 1.0 * b;
        }
        q.constrain(qsum, Cmp::Le, 3.0);
        q.set_objective(qobj);
        assert!(lint(&q)
            .with_code(LintCode::SymmetricVariables)
            .next()
            .is_none());
    }

    #[test]
    fn a009_ghost_in_trivial_constraint() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let ghost = p.continuous("ghost", 0.0, 1.0);
        p.constrain(x, Cmp::Le, 1.0); // also trivial, but x is in the objective
        p.constrain(ghost, Cmp::Le, 50.0); // only row mentioning ghost; never binds
        p.set_objective(x);
        let r = lint(&p);
        let hits: Vec<_> = r.with_code(LintCode::UnreferencedAfterPresolve).collect();
        assert_eq!(hits.len(), 1, "findings: {:?}", r.diagnostics());
        assert_eq!(hits[0].var, Some(ghost));
        assert_eq!(hits[0].severity(), Severity::Warning);
        // A001 must stay silent: the variable *is* referenced.
        assert!(!r
            .with_code(LintCode::UnusedVariable)
            .any(|d| d.var == Some(ghost)));
    }

    #[test]
    fn a009_silent_when_a_row_survives() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 1.0);
        let y = p.continuous("y", 0.0, 1.0);
        p.constrain(y, Cmp::Le, 50.0); // trivial
        p.constrain(x + y, Cmp::Le, 1.0); // binds: y survives presolve
        p.set_objective(x);
        assert!(lint(&p)
            .with_code(LintCode::UnreferencedAfterPresolve)
            .next()
            .is_none());
    }

    #[test]
    fn a010_budget_rhs_shrinks() {
        let build = |budget: f64| {
            let mut p = Problem::maximize();
            let x = p.continuous("x", 0.0, 10.0);
            p.constrain_named(Some("C7_0"), 1.0 * x, Cmp::Le, budget);
            p.set_objective(x);
            p
        };
        // Non-decreasing rounds: clean.
        let ok = [build(3.0), build(3.0), build(5.0)];
        assert!(lint_sequence(&ok)
            .with_code(LintCode::BudgetNonMonotonic)
            .next()
            .is_none());
        // Round 2 shrinks the budget: fires once, naming both rounds.
        let bad = [build(5.0), build(3.0)];
        let r = lint_sequence(&bad);
        let hits: Vec<_> = r.with_code(LintCode::BudgetNonMonotonic).collect();
        assert_eq!(hits.len(), 1, "findings: {:?}", r.diagnostics());
        assert_eq!(hits[0].severity(), Severity::Warning);
        assert!(hits[0].message.contains("C7_0"));
        assert!(hits[0].message.contains("round 0") && hits[0].message.contains("round 1"));
    }

    #[test]
    fn a010_ignores_non_budget_rows() {
        let build = |rhs: f64| {
            let mut p = Problem::maximize();
            let x = p.continuous("x", 0.0, 10.0);
            p.constrain_named(Some("C3_0"), 1.0 * x, Cmp::Le, rhs);
            p.constrain(1.0 * x, Cmp::Le, rhs); // unnamed
            p.set_objective(x);
            p
        };
        let rounds = [build(5.0), build(2.0)];
        assert!(lint_sequence(&rounds)
            .with_code(LintCode::BudgetNonMonotonic)
            .next()
            .is_none());
    }

    #[test]
    fn report_merge_pools_findings() {
        let mut p = Problem::maximize();
        let _ = p.continuous("orphan", 0.0, 1.0);
        let mut merged = lint(&p);
        let before = merged.diagnostics().len();
        merged.merge(&lint(&p));
        assert_eq!(merged.diagnostics().len(), 2 * before);
    }

    #[test]
    fn codes_are_stable_and_documented() {
        let strs: Vec<_> = LINT_CODES.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            strs,
            ["A001", "A002", "A003", "A004", "A005", "A006", "A007", "A008", "A009", "A010"]
        );
        for code in LINT_CODES {
            assert!(!code.summary().is_empty());
        }
    }

    #[test]
    fn diagnostic_display_carries_code_and_severity() {
        let mut p = Problem::maximize();
        let _ = p.continuous("orphan", 0.0, 1.0);
        let r = lint(&p);
        let text = r.diagnostics()[0].to_string();
        assert!(text.contains("A001") && text.contains("warning"), "{text}");
    }
}
