//! The `pmcs-audit` command-line driver.
//!
//! Three subcommands, one per analysis pass:
//!
//! * `trace` — generate a workload, simulate it, run the R1–R6
//!   conformance analyzer on the clean trace, then corrupt the trace and
//!   show the resulting diagnostics;
//! * `milp` — build the WCRT window formulations for every task and
//!   solve them with [`pmcs_milp::Solver::solve_audited`], printing the
//!   exact-arithmetic audit verdicts;
//! * `lint` — run the formulation linter over the same problems, plus a
//!   deliberately sloppy demo problem that trips every lint code;
//! * `analyze` — run every approach of the standard `pmcs-analysis`
//!   registry on the demo set and print the uniform per-task reports;
//! * `simulate` — cross-validate every approach against the event-kernel
//!   simulator under adversarial release plans (observed worst response
//!   must stay within the analytical WCRT, traces must satisfy
//!   Properties 1–4 and R1–R6), then deliberately weaken the proposed
//!   bounds to one tick below the observed responses and confirm the
//!   driver refutes them;
//! * `cert emit` — run the certificate-emitting analysis on the demo set
//!   and print (or write) the proof bundle as JSON, optionally applying
//!   one targeted corruption for negative testing;
//! * `cert check` — validate a certificate bundle file with the
//!   independent `pmcs-cert` checker; any rejection exits nonzero;
//! * `serve-replay` — re-derive every response in a `pmcs-serve` bench
//!   log from scratch with the batch analyzer and refute any recorded
//!   response that differs byte-for-byte (the admission-control analogue
//!   of `cert check`: the replay shares no session, verdict-cache, or
//!   shared-cache machinery with the server it audits);
//! * `campaign` — run the Monte-Carlo falsification campaign of
//!   `pmcs-bench` (single-core, regulated-bus, and measured sections,
//!   every job response live-checked against the analytical WCRTs) and
//!   exit nonzero on any bound exceedance.
//!
//! Engines are built through the `pmcs-analysis` facade: the typed
//! [`AnalysisConfig`] is resolved once here at the CLI edge (so
//! `PMCS_AUDIT`/`PMCS_JOBS` are honored with flag > env > default
//! precedence) instead of each subcommand assembling its own.
//!
//! The process exits non-zero when any analysis finds a real problem in
//! the *clean* artifacts (the deliberately corrupted demo inputs are
//! expected to produce diagnostics and do not fail the run).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::process::ExitCode;

use pmcs_analysis::{
    cross_validate, cross_validate_bounds, milp_engine, plan_horizon, AnalysisConfig,
    AnalysisContext, CliOverrides, RefutationKind, Registry,
};
use pmcs_audit::{check_conformance, lint, lint_sequence, Severity, LINT_CODES};
use pmcs_bench::{run_campaign, CampaignConfig};
use pmcs_core::window::case_for;
use pmcs_core::Heuristic;
use pmcs_core::WindowModel;
use pmcs_milp::{AuditedOutcome, Cmp, LinExpr, Problem, Solver};
use pmcs_model::{BusModel, Sensitivity, TaskId, TaskSet, Time};
use pmcs_sim::{simulate, simulate_with, Policy, SimResult, TraceUnit};
use pmcs_workload::{
    adversarial_plan, adversarial_specs, random_sporadic_plan, TaskSetConfig, TaskSetGenerator,
};

const USAGE: &str = "\
pmcs-audit — static analysis over the pmcs analysis pipeline

USAGE:
    pmcs-audit <COMMAND> [OPTIONS]

COMMANDS:
    trace    simulate a workload and conformance-check the trace (R1-R6)
    milp     solve the WCRT window formulations with exact-arithmetic audits
    lint     lint the window formulations (codes A001-A010)
    analyze  run every registered analysis approach on the demo set
    simulate cross-validate every approach against adversarial simulation,
             then refute deliberately weakened bounds
    cert emit [--corrupt K] [--out FILE]
             emit the demo set's certificate bundle as JSON
             (K: witness | tree | dominance applies one corruption)
    cert check <FILE>
             validate a certificate bundle with the independent
             pmcs-cert checker; rejections exit nonzero
    serve-replay <FILE>
             replay a pmcs-serve request/response log against the
             from-scratch batch analyzer; refutations exit nonzero
    partition
             pack a generated workload onto --cores cores and print the
             per-core assignment and verdicts; with --period the bus is
             bandwidth-regulated (admission uses contention-aware
             inflation), and --period without --budget searches
             descending uniform budgets
    campaign run the pmcs-bench Monte-Carlo falsification campaign
             (--plans defaults to 20000 and --util to 0.25 here; every
             job response is checked live against the analytical WCRT
             bounds and any exceedance exits nonzero)

OPTIONS:
    --seed <N>       RNG seed for workload generation      [default: 42]
    --tasks <N>      number of tasks in the generated set  [default: 5]
    --util <X>       total utilization of the set
                     [default: 0.5; campaign: 0.25]
    --plans <N>      adversarial release plans per approach
                     [simulate default: 8; campaign default: 20000]
    --cores <M>      cores to partition onto (partition)   [default: 2]
    --heuristic <H>  first-fit | best-fit | worst-fit
                     (partition)                           [default: first-fit]
    --period <P>     bus replenishment period in ticks (partition)
    --budget <Q>     uniform per-core bus budget in ticks (partition)
    --lp-backend <B> LP backend: dense | revised (milp/analyze/simulate;
                     beats PMCS_LP_BACKEND)
    --corrupt <K>    cert emit: corrupt the bundle before printing
    --out <FILE>     cert emit: write the bundle here instead of stdout
    -h, --help       print this help
";

struct Options {
    seed: u64,
    tasks: usize,
    // `None` = not given on the CLI; per-subcommand defaults apply
    // (campaign wants a schedulable 0.25-utilization regime and a much
    // larger plan budget than the simulate smoke check).
    util: Option<f64>,
    plans: Option<usize>,
    cores: usize,
    heuristic: Heuristic,
    period: Option<i64>,
    budget: Option<i64>,
    corrupt: Option<String>,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 42,
            tasks: 5,
            util: None,
            plans: None,
            cores: 2,
            heuristic: Heuristic::FirstFit,
            period: None,
            budget: None,
            corrupt: None,
            out: None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut opts = Options::default();
    let mut cli = CliOverrides::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--lp-backend" => {
                let Some(value) = it.next() else {
                    eprintln!("error: --lp-backend requires dense|revised");
                    return ExitCode::FAILURE;
                };
                let Some(kind) = pmcs_core::BackendKind::parse(value) else {
                    eprintln!("error: unknown LP backend {value:?}; use dense|revised");
                    return ExitCode::FAILURE;
                };
                cli.lp_backend = Some(kind);
            }
            "--seed" | "--tasks" | "--util" | "--plans" | "--cores" | "--heuristic"
            | "--period" | "--budget" | "--corrupt" | "--out" => {
                let Some(value) = it.next() else {
                    eprintln!("error: {arg} requires a value");
                    return ExitCode::FAILURE;
                };
                let ok = match arg.as_str() {
                    "--seed" => value.parse().map(|v| opts.seed = v).is_ok(),
                    "--tasks" => value.parse().map(|v| opts.tasks = v).is_ok(),
                    "--plans" => value.parse().map(|v| opts.plans = Some(v)).is_ok(),
                    "--cores" => value
                        .parse()
                        .ok()
                        .filter(|&m: &usize| m >= 1)
                        .map(|v| opts.cores = v)
                        .is_some(),
                    "--heuristic" => Heuristic::parse(value)
                        .map(|h| opts.heuristic = h)
                        .is_some(),
                    "--period" => value
                        .parse()
                        .ok()
                        .filter(|&t: &i64| t > 0)
                        .map(|v| opts.period = Some(v))
                        .is_some(),
                    "--budget" => value
                        .parse()
                        .ok()
                        .filter(|&t: &i64| t > 0)
                        .map(|v| opts.budget = Some(v))
                        .is_some(),
                    "--corrupt" => {
                        opts.corrupt = Some(value.clone());
                        true
                    }
                    "--out" => {
                        opts.out = Some(value.clone());
                        true
                    }
                    _ => value.parse().map(|v| opts.util = Some(v)).is_ok(),
                };
                if !ok {
                    eprintln!("error: invalid value {value:?} for {arg}");
                    return ExitCode::FAILURE;
                }
            }
            other if positionals.len() < 3 && !other.starts_with('-') => {
                positionals.push(other.to_string());
            }
            other => {
                eprintln!("error: unexpected argument {other:?}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let command = positionals.first().cloned();

    if opts.tasks == 0 {
        eprintln!("error: --tasks must be at least 1");
        return ExitCode::FAILURE;
    }
    if let Some(util) = opts.util {
        if !(util > 0.0 && util < 1.0) {
            eprintln!("error: --util must be in (0, 1), got {util}");
            return ExitCode::FAILURE;
        }
    }

    // Resolve the typed analysis configuration exactly once, at the CLI
    // edge: environment knobs (PMCS_AUDIT, PMCS_JOBS, PMCS_LP_BACKEND)
    // are honored here and nowhere deeper in the stack.
    let cfg = AnalysisConfig::resolve(&cli);

    if !matches!(command.as_deref(), Some("cert") | Some("serve-replay")) && positionals.len() > 1 {
        eprintln!("error: unexpected argument {:?}\n\n{USAGE}", positionals[1]);
        return ExitCode::FAILURE;
    }

    match command.as_deref() {
        Some("trace") => cmd_trace(&opts),
        Some("milp") => cmd_milp(&opts, &cfg),
        Some("lint") => cmd_lint(&opts, &cfg),
        Some("analyze") => cmd_analyze(&opts, &cfg),
        Some("simulate") => cmd_simulate(&opts, &cfg),
        Some("partition") => cmd_partition(&opts, &cfg),
        Some("campaign") => cmd_campaign(&opts, &cfg),
        Some("cert") => cmd_cert(&opts, &positionals[1..]),
        Some("serve-replay") => match positionals.get(1) {
            Some(path) => cmd_serve_replay(path),
            None => {
                eprintln!("error: serve-replay requires a log file\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Generates the demo task set: `opts.tasks` tasks at `opts.util`, with
/// the lowest-priority task promoted to latency-sensitive so the LS rules
/// (R3, R4) have something to act on.
fn demo_set(opts: &Options) -> TaskSet {
    let config = TaskSetConfig {
        n: opts.tasks,
        utilization: opts.util.unwrap_or(0.5),
        ..TaskSetConfig::default()
    };
    let set = TaskSetGenerator::new(config, opts.seed).generate();
    let lowest = set
        .iter()
        .max_by_key(|t| t.priority().0)
        .map(|t| t.id())
        .expect("generated set is non-empty");
    set.with_sensitivity(lowest, Sensitivity::Ls)
        .expect("task id comes from the set itself")
}

// --- trace --------------------------------------------------------------

fn cmd_trace(opts: &Options) -> ExitCode {
    let set = demo_set(opts);
    let horizon = Time::from_millis(300);
    let plan = random_sporadic_plan(&set, horizon, 0.5, opts.seed.wrapping_add(1));

    let mut failed = false;
    for (policy, ls_rules) in [(Policy::Proposed, true), (Policy::WaslyPellizzoni, false)] {
        let result = simulate(&set, &plan, policy, horizon);
        let report = check_conformance(&set, &result, ls_rules);
        println!(
            "{policy:?}: {} intervals, {} events — {}",
            report.intervals_checked,
            report.events_checked,
            if report.is_conformant() {
                "conformant (R1-R6 hold)".to_string()
            } else {
                format!("{} VIOLATION(S)", report.diagnostics.len())
            }
        );
        for d in &report.diagnostics {
            println!("  {d}");
            failed = true;
        }
    }

    // Corruption demo: flip a cancellation flag on a committed copy-in and
    // show that the analyzer localizes the damage to a protocol rule.
    let result = simulate(&set, &plan, Policy::Proposed, horizon);
    match corrupt_copy_in(&result) {
        Some((corrupted, victim)) => {
            let report = check_conformance(&set, &corrupted, true);
            println!("\ncorruption demo: marked the copy-in of {victim} as canceled");
            if report.is_conformant() {
                println!("  analyzer missed the corruption — this is a bug");
                failed = true;
            }
            for d in &report.diagnostics {
                println!("  {d}");
            }
        }
        None => println!("\ncorruption demo skipped: trace has no committed DMA copy-in"),
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Returns a copy of `result` with the first committed (non-canceled) DMA
/// copy-in flagged as canceled, plus the job it belonged to.
fn corrupt_copy_in(result: &SimResult) -> Option<(SimResult, pmcs_model::JobId)> {
    let mut events = result.events().to_vec();
    let target = events.iter().position(|e| {
        e.unit == TraceUnit::Dma && e.phase == pmcs_model::Phase::CopyIn && !e.canceled
    })?;
    events[target].canceled = true;
    let victim = events[target].job;
    Some((
        SimResult::from_parts(
            events,
            result.jobs().to_vec(),
            result.interval_starts().to_vec(),
        ),
        victim,
    ))
}

// --- milp ---------------------------------------------------------------

fn cmd_milp(opts: &Options, cfg: &AnalysisConfig) -> ExitCode {
    let set = demo_set(opts);
    let engine = milp_engine(cfg);
    // The audit always verifies against the original problem, so the
    // backend choice only changes how the candidate solution is found.
    let solver = Solver::new().with_backend(cfg.lp_backend.unwrap_or_default());
    let mut failed = false;

    for task in set.iter() {
        let case = case_for(task.sensitivity());
        let window = match WindowModel::build(&set, task.id(), case, task.deadline()) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("{}: window construction failed: {e}", task.id());
                failed = true;
                continue;
            }
        };
        let problem = engine.build_problem(&window);
        match solver.solve_audited(&problem) {
            Ok(audited) => {
                let verdict = if audited.report.certified() {
                    "CERTIFIED"
                } else if audited.report.failed() {
                    failed = true;
                    "FAILED"
                } else {
                    "inconclusive"
                };
                match &audited.outcome {
                    AuditedOutcome::Solved(sol) => println!(
                        "{} ({case:?}): {} vars, {} constraints, objective {:.1}, \
                         status {:?} — audit {verdict}",
                        task.id(),
                        problem.num_vars(),
                        problem.num_constraints(),
                        sol.objective(),
                        sol.status(),
                    ),
                    AuditedOutcome::Infeasible => {
                        println!("{} ({case:?}): infeasible — audit {verdict}", task.id())
                    }
                }
                for check in audited.report.problems() {
                    println!("    {} [{:?}]: {}", check.name, check.status, check.detail);
                }
            }
            Err(e) => {
                eprintln!("{}: solve failed: {e}", task.id());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// --- lint ---------------------------------------------------------------

fn cmd_lint(opts: &Options, cfg: &AnalysisConfig) -> ExitCode {
    let set = demo_set(opts);
    let engine = milp_engine(cfg);
    let mut failed = false;

    println!("linting the WCRT window formulations:");
    for task in set.iter() {
        let case = case_for(task.sensitivity());
        let window = match WindowModel::build(&set, task.id(), case, task.deadline()) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("{}: window construction failed: {e}", task.id());
                failed = true;
                continue;
            }
        };
        let problem = engine.build_problem(&window);
        let report = lint(&problem);
        let non_info = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity() > Severity::Info)
            .count();
        println!(
            "  {} ({case:?}): {} vars, {} constraints — {} finding(s), {} above info",
            task.id(),
            problem.num_vars(),
            problem.num_constraints(),
            report.diagnostics().len(),
            non_info,
        );
        for d in report.diagnostics() {
            if d.severity() > Severity::Info {
                println!("    {d}");
            }
        }
        if report.has_errors() {
            failed = true;
        }
    }

    // Cross-round pass: rebuild each window at two increasing lengths
    // (as the fixed point would) and check the budget rows only ever
    // grow (A010).
    println!("\nlinting budget-row monotonicity across fixed-point rounds:");
    for task in set.iter() {
        let case = case_for(task.sensitivity());
        let mut rounds = Vec::new();
        for len in [(task.deadline() / 2).max(Time::from(1)), task.deadline()] {
            match WindowModel::build(&set, task.id(), case, len) {
                Ok(w) => rounds.push(engine.build_problem(&w)),
                Err(e) => {
                    eprintln!("{}: window construction failed at t={len}: {e}", task.id());
                    failed = true;
                }
            }
        }
        let report = lint_sequence(&rounds);
        println!(
            "  {} ({case:?}): {} round(s) — {} finding(s)",
            task.id(),
            rounds.len(),
            report.diagnostics().len(),
        );
        for d in report.diagnostics() {
            println!("    {d}");
        }
        if report.has_errors() {
            failed = true;
        }
    }

    println!("\nlint demo (deliberately sloppy problem + rounds, every code fires):");
    let demo = sloppy_demo_problem();
    let mut report = lint(&demo);
    report.merge(&lint_sequence(&sloppy_demo_rounds()));
    for d in report.diagnostics() {
        println!("  {d}");
    }
    for code in LINT_CODES {
        if report.with_code(code).next().is_none() {
            println!("  demo failed to trigger {code} — this is a bug");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// --- analyze ------------------------------------------------------------

fn cmd_analyze(opts: &Options, cfg: &AnalysisConfig) -> ExitCode {
    let set = demo_set(opts);
    let registry = Registry::standard();
    let ctx = AnalysisContext::new(cfg);
    let mut failed = false;

    println!(
        "running {} registered approaches (engine stack: {}):",
        registry.len(),
        ctx.engine().layers(),
    );
    for analyzer in registry.iter() {
        match analyzer.analyze_with(&set, &ctx) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("{}: analysis FAILED: {e}", analyzer.name());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// --- simulate -----------------------------------------------------------

fn cmd_simulate(opts: &Options, cfg: &AnalysisConfig) -> ExitCode {
    let plans = opts.plans.unwrap_or(8);
    let set = demo_set(opts);
    let ctx = AnalysisContext::new(cfg);
    let analyzers = Registry::standard();
    let sims = pmcs_sim::Registry::standard();
    let mut failed = false;
    let mut proposed: Option<(pmcs_analysis::ApproachReport, Vec<pmcs_workload::PlanSpec>)> = None;

    println!(
        "cross-validating {} registered approaches against {} adversarial plans each:",
        analyzers.len(),
        plans,
    );
    for analyzer in analyzers.iter() {
        let name = analyzer.name();
        if sims.get(name).is_none() {
            println!("  {name}: no simulator policy of that name — skipped");
            continue;
        }
        match cross_validate(&set, name, plans, opts.seed, &ctx) {
            Ok((report, counters, refutations)) => {
                println!(
                    "  {name}: {} plan(s) simulated, {} trace(s) validated, \
                     {} refutation(s) — {}",
                    counters.plans_run,
                    counters.traces_validated,
                    refutations.len(),
                    if refutations.is_empty() {
                        "bounds hold"
                    } else {
                        "REFUTED"
                    }
                );
                for r in &refutations {
                    println!("    {r}");
                    failed = true;
                }
                if name == "proposed" {
                    proposed = Some((report, adversarial_specs(plans, opts.seed)));
                }
            }
            Err(e) => {
                eprintln!("  {name}: cross-validation FAILED: {e}");
                failed = true;
            }
        }
    }

    // Weakened-bound demo: lower every proposed bound to one tick below
    // the *observed* worst response and confirm the driver refutes it —
    // proof the pass above was earned, not vacuous. Like the other
    // deliberately broken demo inputs, the refutations here are expected
    // and failing to produce them is the bug.
    let Some((report, specs)) = proposed else {
        eprintln!("proposed approach missing from the registry — this is a bug");
        return ExitCode::FAILURE;
    };
    // Apply the report's LS marking so the simulator runs the set the
    // analysis actually bounded (mirrors `cross_validate_report`).
    let mut marked = set.clone();
    for t in &report.tasks {
        if let Some(s) = t.sensitivity {
            marked = marked
                .with_sensitivity(t.task, s)
                .expect("report tasks come from this set");
        }
    }
    let policy = sims
        .get("proposed")
        .expect("standard registry has proposed");
    let release_horizon = plan_horizon(&marked);
    let max_d = marked
        .iter()
        .map(|t| t.deadline())
        .max()
        .unwrap_or(Time::ZERO);
    let tail: i64 = marked.iter().map(|t| t.wcet_serialized().as_ticks()).sum();
    let horizon = release_horizon + max_d + Time::from_ticks(2 * tail);
    let mut observed: Vec<(TaskId, Time)> = Vec::new();
    for &spec in &specs {
        let result = simulate_with(
            &marked,
            &adversarial_plan(&marked, release_horizon, spec),
            policy,
            horizon,
        );
        for task in marked.iter() {
            if let Some(worst) = result.worst_response(task.id()) {
                match observed.iter_mut().find(|(t, _)| *t == task.id()) {
                    Some((_, cur)) => *cur = (*cur).max(worst),
                    None => observed.push((task.id(), worst)),
                }
            }
        }
    }
    let weakened: Vec<(TaskId, Time)> = observed
        .iter()
        .map(|&(t, worst)| (t, worst - Time::TICK))
        .collect();
    let (_, refutations) =
        cross_validate_bounds(&marked, policy, &weakened, &specs, "proposed-weakened");
    println!(
        "\nweakened-bound demo: proposed bounds lowered to observed worst \
         response minus one tick ({} task(s), {} plan(s)):",
        weakened.len(),
        specs.len(),
    );
    let refuted: Vec<TaskId> = weakened
        .iter()
        .map(|&(t, _)| t)
        .filter(|&t| {
            refutations
                .iter()
                .any(|r| matches!(r.kind, RefutationKind::BoundExceeded { task, .. } if task == t))
        })
        .collect();
    if refuted.len() < weakened.len() {
        println!(
            "  only {}/{} weakened bounds were refuted — this is a bug",
            refuted.len(),
            weakened.len()
        );
        failed = true;
    } else {
        println!(
            "  all {} weakened bounds refuted ({} refutation(s)); first:",
            weakened.len(),
            refutations.len()
        );
    }
    if let Some(first) = refutations.first() {
        println!("  {first}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// --- campaign -----------------------------------------------------------

/// Runs the `pmcs-bench` Monte-Carlo falsification campaign as an audit
/// pass: the deterministic report goes to stdout and any live bound
/// exceedance fails the run. Unlike the `campaign` bench binary this
/// writes no perf record — it is the pass/fail half of the tool only.
fn cmd_campaign(opts: &Options, cfg: &AnalysisConfig) -> ExitCode {
    let mut campaign = CampaignConfig {
        plans: opts.plans.unwrap_or(20_000),
        tasks: opts.tasks,
        seed: opts.seed,
        analysis: cfg.clone(),
        ..CampaignConfig::default()
    };
    if let Some(util) = opts.util {
        campaign.util = util;
    }

    let out = match run_campaign(&campaign) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", out.report_text());
    if out.refutations.is_empty() {
        println!(
            "campaign PASSED: {} sims ({} warm-workspace reuses), 0 bound exceedances",
            out.sims_run, out.ws_reused,
        );
        ExitCode::SUCCESS
    } else {
        for line in &out.refutations {
            eprintln!("{line}");
        }
        eprintln!(
            "campaign REFUTED: {} bound exceedance(s)",
            out.refutations.len()
        );
        ExitCode::FAILURE
    }
}

// --- partition ----------------------------------------------------------

fn cmd_partition(opts: &Options, cfg: &AnalysisConfig) -> ExitCode {
    // --util stays the set's *total* utilization (like every other
    // subcommand); there are at least as many tasks as cores so every
    // heuristic has real placement choices.
    let config = TaskSetConfig {
        n: opts.tasks.max(opts.cores),
        utilization: opts.util.unwrap_or(0.5),
        ..TaskSetConfig::default()
    };
    let tasks = TaskSetGenerator::new(config, opts.seed)
        .generate()
        .tasks()
        .to_vec();
    let ctx = AnalysisContext::new(cfg);
    let engine = ctx.engine();
    println!(
        "partitioning {} task(s) onto {} core(s) with {} (engine stack: {}):",
        tasks.len(),
        opts.cores,
        opts.heuristic,
        engine.layers(),
    );

    let outcome = match (opts.period, opts.budget) {
        (None, Some(_)) => {
            eprintln!("error: --budget requires --period");
            return ExitCode::FAILURE;
        }
        (None, None) => pmcs_core::partition(tasks, opts.cores, opts.heuristic, engine),
        (Some(p), Some(q)) => {
            let bus = match BusModel::uniform(Time::from_ticks(p), opts.cores, Time::from_ticks(q))
            {
                Ok(bus) => bus,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            pmcs_core::partition_regulated(tasks, opts.cores, &bus, opts.heuristic, engine)
        }
        (Some(p), None) => {
            // Budget-assignment search: descending uniform budgets, first
            // schedulable partition wins.
            let search = match pmcs_core::assign_budgets(
                tasks,
                opts.cores,
                Time::from_ticks(p),
                opts.heuristic,
                engine,
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: budget search failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("budget search over P={}:", Time::from_ticks(p));
            for a in &search.attempts {
                println!(
                    "  Q={} — {}",
                    a.budget,
                    if a.schedulable {
                        "schedulable"
                    } else {
                        "not schedulable"
                    }
                );
            }
            match &search.solution {
                Some(p) => {
                    print_partitioning(p);
                    println!("verdict: SCHEDULABLE (budget search succeeded)");
                }
                None => println!("verdict: NOT SCHEDULABLE under any tried budget"),
            }
            return ExitCode::SUCCESS;
        }
    };
    match outcome {
        Ok(Ok(p)) => {
            print_partitioning(&p);
            println!(
                "verdict: {}",
                if p.schedulable() {
                    "SCHEDULABLE"
                } else {
                    "NOT SCHEDULABLE"
                }
            );
            ExitCode::SUCCESS
        }
        Ok(Err(unplaced)) => {
            println!(
                "verdict: NOT SCHEDULABLE — {} fits on none of the {} core(s)",
                unplaced.task, unplaced.cores
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: partitioning failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints a partitioning: the bus, then per-core assignments and
/// verdicts (WCRTs are contention-inflated when the bus is regulated).
fn print_partitioning(p: &pmcs_core::Partitioning) {
    println!("bus: {}", p.platform.bus());
    for ((core, set), report) in p.platform.iter().zip(&p.reports) {
        let ids: Vec<String> = set.tasks().iter().map(|t| t.id().to_string()).collect();
        println!(
            "  {core}: {} task(s) [{}] — {}",
            set.len(),
            ids.join(", "),
            if report.schedulable() {
                "schedulable"
            } else {
                "UNSCHEDULABLE"
            }
        );
        for v in report.verdicts() {
            println!(
                "    {} wcrt={} deadline={} {}{}",
                v.task,
                v.wcrt,
                v.deadline,
                if v.schedulable { "ok" } else { "MISS" },
                if v.sensitivity.is_ls() { " [LS]" } else { "" },
            );
        }
    }
}

// --- cert ---------------------------------------------------------------

fn cmd_cert(opts: &Options, rest: &[String]) -> ExitCode {
    match rest.first().map(String::as_str) {
        Some("emit") => cmd_cert_emit(opts),
        Some("check") => match rest.get(1) {
            Some(path) => cmd_cert_check(path),
            None => {
                eprintln!("error: cert check requires a bundle file\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("error: cert requires a subcommand (emit | check)\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_cert_emit(opts: &Options) -> ExitCode {
    let set = demo_set(opts);
    let engine = pmcs_core::ExactEngine::default();
    let (report, mut bundle) = match pmcs_core::certify_task_set(&set, &engine) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: certificate emission failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(kind) = opts.corrupt.as_deref() {
        let result = match kind {
            "witness" => pmcs_cert::corrupt::corrupt_witness(&mut bundle),
            "dominance" => pmcs_cert::corrupt::corrupt_dominance(&mut bundle),
            "tree" => milp_tree_cert(&set).and_then(|cert| {
                // The greedy pipeline proves its windows through the exact
                // DP; graft one MILP-certified window (with a B&B proof
                // tree) onto the bundle so the truncation has a target.
                bundle.windows.push(cert);
                pmcs_cert::corrupt::corrupt_truncate_tree(&mut bundle)
            }),
            other => {
                eprintln!("error: unknown corruption {other:?}; use witness|tree|dominance");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("applied corruption '{kind}': the checker must reject this bundle");
    }

    let json = pmcs_cert::encode_certificate_set(&bundle);
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {path}: {} window(s), {} wcrt(s), schedulable={}",
                bundle.windows.len(),
                bundle.wcrts.len(),
                report.schedulable(),
            );
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// Finds a window of `set` whose MILP certification yields a multi-node
/// branch-and-bound proof tree (the `--corrupt tree` target).
fn milp_tree_cert(set: &TaskSet) -> Result<pmcs_cert::DelayCertificate, String> {
    use pmcs_core::wcrt::DelayEngine as _;
    let exact = pmcs_core::ExactEngine::default();
    let milp = pmcs_core::MilpEngine::default();
    for task in set.iter() {
        let case = case_for(task.sensitivity());
        let half = Time::from_ticks((task.deadline().as_ticks() / 2).max(1));
        for len in [task.deadline(), half] {
            let Ok(w) = WindowModel::build(set, task.id(), case, len) else {
                continue;
            };
            if w.n() < 2 {
                continue;
            }
            let Ok(bound) = exact.max_total_delay(&w) else {
                continue;
            };
            if !bound.exact {
                continue;
            }
            let Ok(cert) = pmcs_core::certify_window_milp(
                &milp,
                &exact,
                &w,
                bound,
                &pmcs_milp::CertifyLimits::default(),
            ) else {
                continue;
            };
            if let pmcs_cert::UpperProof::BbTree { ref tree, .. } = cert.upper {
                if tree.nodes.len() > 1 {
                    return Ok(cert);
                }
            }
        }
    }
    Err(
        "no window of the demo set produced a multi-node proof tree; \
         try a different --seed/--tasks"
            .to_string(),
    )
}

fn cmd_cert_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bundle = match pmcs_cert::decode_certificate_set(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot decode {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = pmcs_cert::check_certificate_set(&bundle);
    println!(
        "{path}: {} certificate(s) checked, {} rejection(s)",
        report.checked,
        report.rejections.len(),
    );
    for r in &report.rejections {
        println!("  REJECTED code={} detail={}", r.code, r.detail);
    }
    if report.ok() {
        println!("bundle ACCEPTED");
        ExitCode::SUCCESS
    } else {
        println!("bundle REJECTED");
        ExitCode::FAILURE
    }
}

// --- serve-replay -------------------------------------------------------

fn cmd_serve_replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = pmcs_serve::replay_log(&text);
    println!(
        "{path}: {} line(s), {} response(s) checked, {} skipped, {} refutation(s)",
        outcome.lines,
        outcome.checked,
        outcome.skipped,
        outcome.refutations.len(),
    );
    for r in &outcome.refutations {
        println!("  {r}");
    }
    if outcome.ok() {
        println!("log ACCEPTED: every checked response matches the batch analyzer");
        ExitCode::SUCCESS
    } else {
        println!("log REFUTED");
        ExitCode::FAILURE
    }
}

/// A small problem that trips all six lint codes at once.
fn sloppy_demo_problem() -> Problem {
    let mut p = Problem::maximize();
    let x = p.continuous("x", 0.0, 10.0);
    let y = p.continuous("y", 0.0, 10.0);
    let _dead = p.continuous("dead", 0.0, 1.0); // A001
    let inverted = p.continuous("inverted", 5.0, 1.0); // A002 (bounds)
    let free = p.continuous("free", 0.0, f64::INFINITY); // A003
    let gate = p.binary("gate");
    let gate2 = p.binary("gate2");
    let ghost = p.continuous("ghost", 0.0, 1.0);
    p.constrain(x + y, Cmp::Le, 4.0);
    p.constrain(2.0 * x + 2.0 * y, Cmp::Le, 8.0); // A004 (scaled duplicate)
    p.constrain(x + -1e9 * gate, Cmp::Le, 0.0); // A005 (big-M spread)
    p.constrain(x, Cmp::Le, 1e4); // A006 (never binds)
    p.constrain(x + inverted, Cmp::Ge, 100.0); // A002 (unachievable)
                                               // A007: spread 1e5 stays under the A005 threshold, but y ∈ [0, 10]
                                               // against rhs 2 means M = 8 already suffices — 1e5 is ~1e4x looser.
    p.constrain(y + -1e5 * gate2, Cmp::Le, 2.0);
    p.constrain(ghost, Cmp::Le, 50.0); // A009 (ghost's only row; presolve deletes it)
                                       // A008: eight interchangeable slot binaries in one cardinality row.
    let mut slots = LinExpr::default();
    for i in 0..8 {
        slots += 1.0 * p.binary(format!("slot{i}"));
    }
    p.constrain(slots, Cmp::Le, 3.0);
    p.set_objective(x + y + free);
    p
}

/// Successive "fixed-point rounds" whose budget row `C7_0` shrinks — the
/// monotonicity violation `A010` exists to catch (a real iteration only
/// grows windows, so budgets never decrease).
fn sloppy_demo_rounds() -> Vec<Problem> {
    let build = |budget: f64| {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 100.0);
        p.constrain_named(Some("C7_0"), 1.0 * x, Cmp::Le, budget);
        p.set_objective(x);
        p
    };
    vec![build(8.0), build(6.0)] // A010 (RHS 8 → 6 across rounds)
}
