//! Differential tests of the caching layer: a [`CachedEngine`] must be
//! observationally equivalent to its inner engine (modulo the `nodes`
//! effort counter), and the greedy loop's verdict reuse must match the
//! from-scratch oracle.

use proptest::prelude::*;

use pmcs_core::schedulability::{analyze_task_set, analyze_task_set_no_reuse};
use pmcs_core::{CachedEngine, DelayEngine, ExactEngine, WindowCase, WindowModel};
use pmcs_model::{Priority, Sensitivity, Task, TaskId, TaskSet, Time};

fn build_set(params: &[(i64, i64, i64, bool)]) -> TaskSet {
    let tasks: Vec<Task> = params
        .iter()
        .enumerate()
        .map(|(i, &(c, m, t, ls))| {
            Task::builder(TaskId(i as u32))
                .exec(Time::from_ticks(c))
                .copy_in(Time::from_ticks(m))
                .copy_out(Time::from_ticks(m))
                .sporadic(Time::from_ticks(t))
                .deadline(Time::from_ticks(t))
                .priority(Priority(i as u32))
                .sensitivity(if ls {
                    Sensitivity::Ls
                } else {
                    Sensitivity::Nls
                })
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

fn params_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64, bool)>> {
    prop::collection::vec((1i64..=25, 0i64..=8, 50i64..=150, any::<bool>()), 2..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On randomized windows — LS markings included, so the key
    /// canonicalization is stressed — a cached engine agrees with its
    /// uncached inner engine, on the first call (cold) and the second
    /// (served from the cache).
    #[test]
    fn cached_engine_matches_inner_engine(
        params in params_strategy(),
        t in 1i64..=150,
        under in 0usize..5,
        case_a in any::<bool>(),
    ) {
        let under = (under % params.len()) as u32;
        let set = build_set(&params);
        let case = if case_a { WindowCase::LsCaseA } else { WindowCase::Nls };
        let w = WindowModel::build(&set, TaskId(under), case, Time::from_ticks(t)).unwrap();
        let plain = ExactEngine::default().max_total_delay(&w).unwrap();
        let cached = CachedEngine::new(ExactEngine::default());
        let cold = cached.max_total_delay(&w).unwrap();
        let warm = cached.max_total_delay(&w).unwrap();
        prop_assert_eq!(cold.delay, plain.delay);
        prop_assert_eq!(cold.exact, plain.exact);
        prop_assert_eq!(warm.delay, plain.delay);
        prop_assert_eq!(warm.exact, plain.exact);
        prop_assert!(cached.stats().hits >= 1);
    }

    /// The full greedy analysis is invariant under caching, and the
    /// cross-round verdict reuse is invariant against the from-scratch
    /// oracle.
    #[test]
    fn analysis_is_invariant_under_caching_and_reuse(
        params in params_strategy(),
    ) {
        let set = build_set(&params);
        let plain = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        let engine = CachedEngine::new(ExactEngine::default());
        let cached = analyze_task_set(&set, &engine).unwrap();
        let no_reuse = analyze_task_set_no_reuse(&set, &ExactEngine::default()).unwrap();
        prop_assert_eq!(&plain, &cached);
        prop_assert_eq!(&plain, &no_reuse);
    }
}

/// One cheap deterministic case for the CI fast path (runs even when the
/// proptest cases are filtered out by name).
#[test]
fn cache_consistency_smoke() {
    let set = build_set(&[(10, 2, 100, false), (20, 4, 200, false), (15, 3, 150, true)]);
    let engine = CachedEngine::new(ExactEngine::default());
    let cached = analyze_task_set(&set, &engine).unwrap();
    let plain = analyze_task_set(&set, &ExactEngine::default()).unwrap();
    assert_eq!(cached, plain);
    assert!(engine.stats().hits > 0, "{}", engine.stats());
}
