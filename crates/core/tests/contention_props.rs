//! Property tests for the shared-bus contention transform: inflation is
//! never below identity, monotone in rival budgets and in the number of
//! contending cores, and `inflate_set` is a faithful, reversible task-set
//! transform (everything except the copy phases is preserved).

use proptest::prelude::*;

use pmcs_core::Inflation;
use pmcs_model::{BusModel, CoreId, Time};
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

/// A regulated bus with `cores` equal budgets `q` under period `p`,
/// clamped so `ΣQ ≤ P` always holds.
fn uniform_bus(p: i64, cores: usize, q: i64) -> BusModel {
    let q = q.clamp(1, (p / cores as i64).max(1));
    BusModel::uniform(Time::from_ticks(p), cores, Time::from_ticks(q)).expect("ΣQ ≤ P by clamping")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inflated demand never drops below the raw demand, and is exactly
    /// the raw demand whenever the bus is contention-free or the core
    /// has no active rivals.
    #[test]
    fn inflation_never_shrinks_demand(
        p in 2i64..=500,
        cores in 2usize..=6,
        q in 1i64..=250,
        d in 0i64..=10_000,
    ) {
        let bus = uniform_bus(p, cores, q);
        let inf = Inflation::for_core(&bus, CoreId(0));
        let d = Time::from_ticks(d);
        prop_assert!(inf.inflate(d) >= d);

        let crossbar = Inflation::for_core(&BusModel::contention_free(), CoreId(0));
        prop_assert_eq!(crossbar.inflate(d), d);

        // Only this core active: rivals contribute nothing, identity.
        let mut active = vec![false; cores];
        active[0] = true;
        let lone = Inflation::for_core_among(&bus, CoreId(0), &active);
        prop_assert!(lone.is_identity());
        prop_assert_eq!(lone.inflate(d), d);
    }

    /// More contending cores → never less inflation (σ grows with every
    /// activated rival).
    #[test]
    fn inflation_is_monotone_in_contending_cores(
        p in 4i64..=500,
        cores in 3usize..=6,
        q in 1i64..=120,
        d in 1i64..=10_000,
    ) {
        let bus = uniform_bus(p, cores, q);
        let d = Time::from_ticks(d);
        let mut active = vec![false; cores];
        active[0] = true;
        let mut prev = Inflation::for_core_among(&bus, CoreId(0), &active).inflate(d);
        for rival in 1..cores {
            active[rival] = true;
            let cur = Inflation::for_core_among(&bus, CoreId(0), &active).inflate(d);
            prop_assert!(
                cur >= prev,
                "activating rival {rival} shrank the bound: {prev} -> {cur}"
            );
            prev = cur;
        }
    }

    /// Larger rival budgets → never less inflation, for the same own
    /// budget and period.
    #[test]
    fn inflation_is_monotone_in_rival_budgets(
        p in 10i64..=500,
        d in 1i64..=10_000,
        own_frac in 1i64..=4,
        small in 1i64..=100,
        extra in 1i64..=100,
    ) {
        let own = (p / (2 * own_frac)).max(1);
        let rival_cap = p - own;
        let small_q = small.clamp(1, (rival_cap - 1).max(1));
        let big_q = (small_q + extra).clamp(1, rival_cap.max(1));
        prop_assume!(big_q > small_q);
        let mk = |rival: i64| {
            BusModel::regulated(
                Time::from_ticks(p),
                vec![Time::from_ticks(own), Time::from_ticks(rival)],
            )
            .expect("own + rival ≤ P by construction")
        };
        let d = Time::from_ticks(d);
        let weak = Inflation::for_core(&mk(small_q), CoreId(0)).inflate(d);
        let strong = Inflation::for_core(&mk(big_q), CoreId(0)).inflate(d);
        prop_assert!(
            strong >= weak,
            "greedier rival shrank the bound: Q_r {small_q} -> {big_q}, {weak} -> {strong}"
        );
    }

    /// `inflate_set` changes only the copy phases (and monotonically so);
    /// execution, deadlines, priorities, arrival models, and sensitivity
    /// survive, and a contention-free bus reproduces the set exactly.
    #[test]
    fn inflate_set_is_a_faithful_transform(
        n in 2usize..=5,
        util_step in 2u8..=8,
        seed in any::<u64>(),
        p in 10i64..=400,
        cores in 2usize..=4,
    ) {
        let set = TaskSetGenerator::new(
            TaskSetConfig {
                n,
                utilization: f64::from(util_step) * 0.05,
                ..TaskSetConfig::default()
            },
            seed,
        )
        .generate();
        let bus = uniform_bus(p, cores, p / cores as i64);
        let inf = Inflation::for_core(&bus, CoreId(1));
        let inflated = inf.inflate_set(&set).expect("inflation preserves validity");
        prop_assert_eq!(inflated.len(), set.len());
        for (orig, new) in set.iter().zip(inflated.iter()) {
            prop_assert_eq!(orig.id(), new.id());
            prop_assert_eq!(orig.exec(), new.exec());
            prop_assert_eq!(orig.deadline(), new.deadline());
            prop_assert_eq!(orig.priority(), new.priority());
            prop_assert_eq!(orig.arrival(), new.arrival());
            prop_assert_eq!(orig.sensitivity(), new.sensitivity());
            prop_assert_eq!(new.copy_in(), inf.inflate(orig.copy_in()));
            prop_assert_eq!(new.copy_out(), inf.inflate(orig.copy_out()));
            prop_assert!(new.copy_in() >= orig.copy_in());
            prop_assert!(new.copy_out() >= orig.copy_out());
        }

        let identity = Inflation::for_core(&BusModel::contention_free(), CoreId(1));
        let same = identity.inflate_set(&set).expect("identity preserves validity");
        prop_assert_eq!(&same, &set);
    }
}
