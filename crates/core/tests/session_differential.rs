//! Differential tests of the incremental analysis session: after *every*
//! operation of a randomized admit/remove/update sequence, the session's
//! report must equal a from-scratch [`analyze_task_set`] over the same
//! tasks. The session's dirtiness tracking and verdict reuse are pure
//! optimizations — any divergence from the batch oracle is a bug.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use pmcs_core::{analyze_task_set, AnalysisSession, CachedEngine, ExactEngine};
use pmcs_model::{Priority, Task, TaskId, TaskSet, Time};

fn build_task(id: u32, prio: u32, (c, m, t): (i64, i64, i64)) -> Task {
    Task::builder(TaskId(id))
        .exec(Time::from_ticks(c))
        .copy_in(Time::from_ticks(m))
        .copy_out(Time::from_ticks(m))
        .sporadic(Time::from_ticks(t))
        .deadline(Time::from_ticks(t))
        .priority(Priority(prio))
        .build()
        .unwrap()
}

fn params_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((1i64..=25, 0i64..=8, 50i64..=150), 2..=5)
}

/// One operation of the random script, resolved against the live state
/// inside the test (indices are taken modulo whatever is present/absent).
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, usize, i64)>> {
    prop::collection::vec((0u8..3, 0usize..8, 1i64..=25), 1..=12)
}

/// Asserts the session tracks the batch oracle through a whole script.
fn check_script(params: &[(i64, i64, i64)], ops: &[(u8, usize, i64)]) -> Result<(), TestCaseError> {
    let catalog: Vec<Task> = params
        .iter()
        .enumerate()
        .map(|(i, &p)| build_task(i as u32, i as u32, p))
        .collect();

    let mut session = AnalysisSession::new(CachedEngine::new(ExactEngine::default()));
    let mut shadow: Vec<Task> = Vec::new();
    let check = |session: &AnalysisSession<CachedEngine<ExactEngine>>,
                 shadow: &[Task]|
     -> Result<(), TestCaseError> {
        if shadow.is_empty() {
            prop_assert!(session.is_empty());
            return Ok(());
        }
        let set = TaskSet::new(shadow.to_vec()).unwrap();
        let oracle = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        prop_assert_eq!(session.report(), &oracle);
        Ok(())
    };

    for task in &catalog {
        session.admit(task.clone()).unwrap();
        shadow.push(task.clone());
        check(&session, &shadow)?;
    }

    for &(kind, idx, newexec) in ops {
        let present: Vec<u32> = shadow.iter().map(|t| t.id().0).collect();
        let absent: Vec<u32> = (0..catalog.len() as u32)
            .filter(|i| !present.contains(i))
            .collect();
        match kind {
            0 if !present.is_empty() => {
                let id = present[idx % present.len()];
                session.remove(TaskId(id)).unwrap();
                shadow.retain(|t| t.id().0 != id);
            }
            1 if !absent.is_empty() => {
                let id = absent[idx % absent.len()];
                let task = catalog[id as usize].clone();
                session.admit(task.clone()).unwrap();
                shadow.push(task);
            }
            2 if !present.is_empty() => {
                let id = present[idx % present.len()];
                let base = &catalog[id as usize];
                let task = build_task(
                    id,
                    base.priority().0,
                    (
                        newexec,
                        base.copy_in().as_ticks(),
                        base.deadline().as_ticks(),
                    ),
                );
                session.update(TaskId(id), task.clone()).unwrap();
                let pos = shadow.iter().position(|t| t.id().0 == id).unwrap();
                shadow[pos] = task;
            }
            _ => {}
        }
        check(&session, &shadow)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random admit/remove/update scripts: the incremental session equals
    /// the batch analyzer after every single operation.
    #[test]
    fn session_matches_batch_after_every_op(
        params in params_strategy(),
        ops in ops_strategy(),
    ) {
        check_script(&params, &ops)?;
    }
}

/// One cheap deterministic script for the CI fast path, ending with the
/// session drained back to empty.
#[test]
fn session_differential_smoke() {
    let params = [(10, 2, 100), (20, 4, 120), (15, 3, 150)];
    // admit all, update #1, remove #0, re-admit #0, remove all
    let ops = [
        (2u8, 1usize, 5i64),
        (0, 0, 0),
        (1, 0, 0),
        (0, 0, 0),
        (0, 0, 0),
        (0, 0, 0),
    ];
    check_script(&params, &ops).unwrap();
}
