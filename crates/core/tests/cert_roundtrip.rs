//! Certificate round-trip properties: emit → serialize → parse → check
//! must accept, for random windows under all three solving backends
//! (exact DP, dense-tableau MILP, revised-simplex MILP) — plus the three
//! canonical negative paths, each rejected with its stable
//! machine-readable code.
//!
//! These tests live in `pmcs-core` (not `pmcs-cert`) because emission
//! needs the engines; the checker itself stays engine-free.

use proptest::prelude::*;

use pmcs_cert::{
    check_certificate_set, corrupt, decode_certificate_set, encode_certificate_set, CertificateSet,
    UpperProof,
};
use pmcs_core::certify::cert_task_set_of;
use pmcs_core::{
    certify_task_set, certify_window_dp, certify_window_milp, DelayEngine, ExactEngine, MilpEngine,
    WindowCase, WindowModel,
};
use pmcs_milp::{BackendKind, CertifyLimits};
use pmcs_model::{Priority, Sensitivity, Task, TaskId, TaskSet, Time};

fn build_set(params: &[(i64, i64, i64, bool)]) -> TaskSet {
    let tasks: Vec<Task> = params
        .iter()
        .enumerate()
        .map(|(i, &(c, m, t, ls))| {
            Task::builder(TaskId(i as u32))
                .exec(Time::from_ticks(c))
                .copy_in(Time::from_ticks(m))
                .copy_out(Time::from_ticks(m))
                .sporadic(Time::from_ticks(t))
                .deadline(Time::from_ticks(t))
                .priority(Priority(i as u32))
                .sensitivity(if ls {
                    Sensitivity::Ls
                } else {
                    Sensitivity::Nls
                })
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

fn params_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64, bool)>> {
    prop::collection::vec((1i64..=20, 0i64..=6, 40i64..=120, any::<bool>()), 2..=4)
}

/// Smaller instances for the MILP properties: branch-and-bound proof
/// trees with exact-rational leaf certificates are orders of magnitude
/// more expensive to build than DP tables, especially in debug builds.
fn milp_params_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64, bool)>> {
    prop::collection::vec((1i64..=8, 0i64..=3, 20i64..=60, any::<bool>()), 2..=2)
}

/// Serialize → parse → re-serialize → check; the wire form must be
/// stable and the parsed bundle must pass the independent checker.
fn assert_roundtrip_accepted(bundle: &CertificateSet, label: &str) {
    let text = encode_certificate_set(bundle);
    let decoded = decode_certificate_set(&text).expect("decode emitted bundle");
    assert_eq!(
        encode_certificate_set(&decoded),
        text,
        "{label}: re-encoding the parsed bundle changed the wire form"
    );
    let report = check_certificate_set(&decoded);
    assert!(
        report.ok(),
        "{label}: checker rejected a freshly emitted bundle: {:?}",
        report.rejections
    );
    assert!(report.checked > 0, "{label}: nothing was checked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DP-backed window certificates survive the full round trip.
    #[test]
    fn dp_window_certs_roundtrip(params in params_strategy(), t in 5i64..=80) {
        let set = build_set(&params);
        let engine = ExactEngine::default();
        let mut bundle = CertificateSet::new(cert_task_set_of(&set).expect("encodable set"));
        let mut seen = std::collections::HashSet::new();
        for task in set.iter() {
            let w = WindowModel::build(&set, task.id(), WindowCase::Nls, Time::from_ticks(t))
                .expect("window");
            let bound = engine.max_total_delay(&w).expect("bound");
            let cert = certify_window_dp(&engine, &w, bound).expect("certify");
            if seen.insert(cert.window_hash) {
                bundle.windows.push(cert);
            }
        }
        assert_roundtrip_accepted(&bundle, "dp");
    }

    /// Full-pipeline bundles (windows + WCRT fixed points + LS-marking
    /// transcript) survive the round trip.
    #[test]
    fn full_bundles_roundtrip(params in params_strategy()) {
        let set = build_set(&params);
        let (_, bundle) = certify_task_set(&set, &ExactEngine::default()).expect("certify set");
        assert_roundtrip_accepted(&bundle, "full");
    }
}

proptest! {
    // Branch-and-bound proof trees with exact-rational leaf certificates
    // are far costlier to build than DP tables (debug builds especially),
    // so this property runs few cases on small windows; the fixed-seed
    // tree test below guarantees the BbTree path is always exercised.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// MILP window certificates (VIPR-style proof trees or caps) survive
    /// the round trip under both LP backends. One window per case — the
    /// lowest-priority task's, which sees every interferer.
    #[test]
    fn milp_window_certs_roundtrip(params in milp_params_strategy(), t in 4i64..=8) {
        let set = build_set(&params);
        let exact = ExactEngine::default();
        let task = set.iter().last().expect("non-empty set");
        for backend in [BackendKind::Dense, BackendKind::Revised] {
            let milp = MilpEngine::default().with_backend(backend);
            let mut bundle =
                CertificateSet::new(cert_task_set_of(&set).expect("encodable set"));
            let w = WindowModel::build(&set, task.id(), WindowCase::Nls, Time::from_ticks(t))
                .expect("window");
            let bound = milp.max_total_delay(&w).expect("bound");
            let cert = certify_window_milp(&milp, &exact, &w, bound, &CertifyLimits::default())
                .expect("certify");
            bundle.windows.push(cert);
            assert_roundtrip_accepted(&bundle, &format!("milp-{backend:?}"));
        }
    }
}

/// A fixed set whose full-pipeline bundle has DP tables and witnesses —
/// raw material for the corruption tests.
fn corruptible_bundle() -> CertificateSet {
    let set = build_set(&[(8, 2, 60, false), (6, 3, 80, false), (10, 1, 100, true)]);
    let (_, bundle) = certify_task_set(&set, &ExactEngine::default()).expect("certify set");
    bundle
}

#[test]
fn corrupted_witness_is_rejected_with_stable_code() {
    let mut bundle = corruptible_bundle();
    corrupt::corrupt_witness(&mut bundle).expect("bundle has a witness");
    // The corruption must survive serialization too: check the parsed form.
    let decoded = decode_certificate_set(&encode_certificate_set(&bundle)).expect("decode");
    let report = check_certificate_set(&decoded);
    assert!(!report.ok());
    assert!(
        report.rejections.iter().any(|r| r.code == "witness.length"),
        "expected witness.length, got {:?}",
        report.rejections
    );
}

#[test]
fn unsound_dominance_is_rejected_with_stable_code() {
    let mut bundle = corruptible_bundle();
    corrupt::corrupt_dominance(&mut bundle).expect("bundle has a DP table");
    let decoded = decode_certificate_set(&encode_certificate_set(&bundle)).expect("decode");
    let report = check_certificate_set(&decoded);
    assert!(!report.ok());
    assert!(
        report
            .rejections
            .iter()
            .any(|r| r.code == "dp.bellman-mismatch"),
        "expected dp.bellman-mismatch, got {:?}",
        report.rejections
    );
}

#[test]
fn truncated_proof_tree_is_rejected_with_stable_code() {
    // The greedy pipeline emits DP proofs, so graft one MILP-certified
    // window with a real multi-node branch-and-bound tree.
    let set = build_set(&[(8, 2, 60, false), (6, 3, 80, false), (10, 1, 100, false)]);
    let exact = ExactEngine::default();
    let milp = MilpEngine::default();
    let mut tree_cert = None;
    'search: for task in set.iter() {
        for t in [
            task.deadline(),
            Time::from_ticks((task.deadline().as_ticks() / 2).max(1)),
        ] {
            let Ok(w) = WindowModel::build(&set, task.id(), WindowCase::Nls, t) else {
                continue;
            };
            if w.n() < 2 {
                continue;
            }
            let Ok(bound) = milp.max_total_delay(&w) else {
                continue;
            };
            let Ok(cert) = certify_window_milp(&milp, &exact, &w, bound, &CertifyLimits::default())
            else {
                continue;
            };
            if matches!(&cert.upper, UpperProof::BbTree { tree, .. } if tree.nodes.len() > 1) {
                tree_cert = Some(cert);
                break 'search;
            }
        }
    }
    let mut bundle = CertificateSet::new(cert_task_set_of(&set).expect("encodable set"));
    bundle
        .windows
        .push(tree_cert.expect("some window needs branching"));
    assert!(
        check_certificate_set(&bundle).ok(),
        "pre-corruption bundle must pass"
    );
    corrupt::corrupt_truncate_tree(&mut bundle).expect("bundle has a multi-node tree");
    let decoded = decode_certificate_set(&encode_certificate_set(&bundle)).expect("decode");
    let report = check_certificate_set(&decoded);
    assert!(!report.ok());
    assert!(
        report
            .rejections
            .iter()
            .any(|r| r.code.starts_with("bbtree.")),
        "expected a bbtree.* rejection, got {:?}",
        report.rejections
    );
}
