//! Property test: the specialized combinatorial engine and the MILP
//! formulation compute the *same* maximal delay on random small windows.
//!
//! This is the strongest internal-consistency check in the workspace: the
//! two engines share only the [`WindowModel`] abstraction; their agreement
//! on random instances validates both the constraint encoding (Section V
//! of the paper) and the search.

use proptest::prelude::*;

use pmcs_core::{DelayEngine, ExactEngine, MilpEngine, WindowCase, WindowModel};
use pmcs_model::{Priority, Sensitivity, Task, TaskId, TaskSet, Time};

#[derive(Debug, Clone)]
struct RandTask {
    exec: i64,
    copy_in: i64,
    copy_out: i64,
    period: i64,
    ls: bool,
}

fn rand_task_strategy() -> impl Strategy<Value = RandTask> {
    (1i64..=30, 0i64..=10, 0i64..=10, 40i64..=120, any::<bool>()).prop_map(
        |(exec, copy_in, copy_out, period, ls)| RandTask {
            exec,
            copy_in,
            copy_out,
            period,
            ls,
        },
    )
}

fn build_set(specs: &[RandTask]) -> TaskSet {
    let tasks: Vec<Task> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Task::builder(TaskId(i as u32))
                .exec(Time::from_ticks(s.exec))
                .copy_in(Time::from_ticks(s.copy_in))
                .copy_out(Time::from_ticks(s.copy_out))
                .sporadic(Time::from_ticks(s.period))
                .deadline(Time::from_ticks(s.period))
                .priority(Priority(i as u32))
                .sensitivity(if s.ls {
                    Sensitivity::Ls
                } else {
                    Sensitivity::Nls
                })
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

fn check_equivalence(set: &TaskSet, under: TaskId, case: WindowCase, t: i64) {
    let w = WindowModel::build(set, under, case, Time::from_ticks(t)).unwrap();
    // Keep MILP sizes tractable.
    if w.n() > 7 {
        return;
    }
    let fast = ExactEngine::default().max_total_delay(&w).unwrap();
    let milp = MilpEngine::default().max_total_delay(&w).unwrap();
    assert!(fast.exact && milp.exact);
    assert_eq!(
        fast.delay, milp.delay,
        "engine mismatch for window {w:?}: engine={} milp={}",
        fast.delay, milp.delay
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NLS windows: identical optima.
    #[test]
    fn nls_windows_agree(
        specs in prop::collection::vec(rand_task_strategy(), 2..=4),
        t in 1i64..=100,
        under in 0usize..4,
    ) {
        let under = under % specs.len();
        let set = build_set(&specs);
        check_equivalence(&set, TaskId(under as u32), WindowCase::Nls, t);
    }

    /// LS case (a) windows: identical optima.
    #[test]
    fn ls_case_a_windows_agree(
        specs in prop::collection::vec(rand_task_strategy(), 2..=4),
        t in 1i64..=100,
        under in 0usize..4,
    ) {
        let under = under % specs.len();
        let set = build_set(&specs);
        check_equivalence(&set, TaskId(under as u32), WindowCase::LsCaseA, t);
    }
}

/// A couple of deterministic regression windows (kept cheap so they always
/// run, even when proptest shrinks elsewhere).
#[test]
fn deterministic_regression_windows() {
    let specs = vec![
        RandTask {
            exec: 12,
            copy_in: 4,
            copy_out: 6,
            period: 60,
            ls: true,
        },
        RandTask {
            exec: 25,
            copy_in: 9,
            copy_out: 2,
            period: 90,
            ls: false,
        },
        RandTask {
            exec: 7,
            copy_in: 1,
            copy_out: 10,
            period: 45,
            ls: true,
        },
    ];
    let set = build_set(&specs);
    for under in 0..3u32 {
        for t in [1, 30, 80] {
            check_equivalence(&set, TaskId(under), WindowCase::Nls, t);
            check_equivalence(&set, TaskId(under), WindowCase::LsCaseA, t);
        }
    }
}
