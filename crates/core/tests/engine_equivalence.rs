//! Property test: the specialized combinatorial engine and the MILP
//! formulation compute the *same* maximal delay on random small windows.
//!
//! This is the strongest internal-consistency check in the workspace: the
//! two engines share only the [`WindowModel`] abstraction; their agreement
//! on random instances validates both the constraint encoding (Section V
//! of the paper) and the search.

use proptest::prelude::*;

use pmcs_core::{DelayEngine, ExactEngine, MilpEngine, WindowCase, WindowModel};
use pmcs_model::{Priority, Sensitivity, Task, TaskId, TaskSet, Time};

#[derive(Debug, Clone)]
struct RandTask {
    exec: i64,
    copy_in: i64,
    copy_out: i64,
    period: i64,
    ls: bool,
}

fn rand_task_strategy() -> impl Strategy<Value = RandTask> {
    (1i64..=30, 0i64..=10, 0i64..=10, 40i64..=120, any::<bool>()).prop_map(
        |(exec, copy_in, copy_out, period, ls)| RandTask {
            exec,
            copy_in,
            copy_out,
            period,
            ls,
        },
    )
}

fn build_set(specs: &[RandTask]) -> TaskSet {
    let tasks: Vec<Task> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Task::builder(TaskId(i as u32))
                .exec(Time::from_ticks(s.exec))
                .copy_in(Time::from_ticks(s.copy_in))
                .copy_out(Time::from_ticks(s.copy_out))
                .sporadic(Time::from_ticks(s.period))
                .deadline(Time::from_ticks(s.period))
                .priority(Priority(i as u32))
                .sensitivity(if s.ls {
                    Sensitivity::Ls
                } else {
                    Sensitivity::Nls
                })
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

fn check_equivalence(set: &TaskSet, under: TaskId, case: WindowCase, t: i64) {
    let w = WindowModel::build(set, under, case, Time::from_ticks(t)).unwrap();
    // Keep MILP sizes tractable.
    if w.n() > 7 {
        return;
    }
    let fast = ExactEngine::default().max_total_delay(&w).unwrap();
    let unpruned = ExactEngine::default()
        .without_symmetry_breaking()
        .max_total_delay(&w)
        .unwrap();
    let milp = MilpEngine::default().max_total_delay(&w).unwrap();
    assert!(fast.exact && unpruned.exact && milp.exact);
    assert_eq!(
        fast.delay, unpruned.delay,
        "pruning changed the optimum for window {w:?}: pruned={} unpruned={}",
        fast.delay, unpruned.delay
    );
    assert_eq!(
        fast.delay, milp.delay,
        "engine mismatch for window {w:?}: engine={} milp={}",
        fast.delay, milp.delay
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NLS windows: identical optima.
    #[test]
    fn nls_windows_agree(
        specs in prop::collection::vec(rand_task_strategy(), 2..=4),
        t in 1i64..=100,
        under in 0usize..4,
    ) {
        let under = under % specs.len();
        let set = build_set(&specs);
        check_equivalence(&set, TaskId(under as u32), WindowCase::Nls, t);
    }

    /// LS case (a) windows: identical optima.
    #[test]
    fn ls_case_a_windows_agree(
        specs in prop::collection::vec(rand_task_strategy(), 2..=4),
        t in 1i64..=100,
        under in 0usize..4,
    ) {
        let under = under % specs.len();
        let set = build_set(&specs);
        check_equivalence(&set, TaskId(under as u32), WindowCase::LsCaseA, t);
    }
}

/// A couple of deterministic regression windows (kept cheap so they always
/// run, even when proptest shrinks elsewhere).
#[test]
fn deterministic_regression_windows() {
    let specs = vec![
        RandTask {
            exec: 12,
            copy_in: 4,
            copy_out: 6,
            period: 60,
            ls: true,
        },
        RandTask {
            exec: 25,
            copy_in: 9,
            copy_out: 2,
            period: 90,
            ls: false,
        },
        RandTask {
            exec: 7,
            copy_in: 1,
            copy_out: 10,
            period: 45,
            ls: true,
        },
    ];
    let set = build_set(&specs);
    for under in 0..3u32 {
        for t in [1, 30, 80] {
            check_equivalence(&set, TaskId(under), WindowCase::Nls, t);
            check_equivalence(&set, TaskId(under), WindowCase::LsCaseA, t);
        }
    }
}

/// Eight equal-shape competitors — the symmetric instance class whose
/// unbroken `8!`-fold placement symmetry is the paper's n ≥ 8 runtime
/// cliff. The symmetry-pruned DP must still return the same optimum as
/// the unpruned reference (which here explores every member ordering).
#[test]
fn eight_equal_shape_tasks_prune_losslessly() {
    let mut specs = vec![RandTask {
        exec: 9,
        copy_in: 3,
        copy_out: 2,
        period: 400,
        ls: false,
    }];
    specs.extend(std::iter::repeat_n(
        RandTask {
            exec: 5,
            copy_in: 2,
            copy_out: 4,
            period: 55,
            ls: true,
        },
        8,
    ));
    let set = build_set(&specs);
    for t in [40, 120] {
        let w = WindowModel::build(&set, TaskId(0), WindowCase::Nls, Time::from_ticks(t)).unwrap();
        let pruned = ExactEngine::default().max_total_delay(&w).unwrap();
        let unpruned = ExactEngine::default()
            .without_symmetry_breaking()
            .max_total_delay(&w)
            .unwrap();
        assert!(pruned.exact && unpruned.exact);
        assert_eq!(pruned.delay, unpruned.delay, "t={t}");
        assert!(
            pruned.nodes < unpruned.nodes,
            "t={t}: symmetry breaking explored {} nodes vs {} unpruned — \
             the pruning did nothing on a fully symmetric window",
            pruned.nodes,
            unpruned.nodes
        );
    }
}

/// The parallel branch-and-bound is deterministic: the bound is
/// byte-identical for 1, 2, and 4 workers (the shared incumbent only
/// ever holds values achieved by some placement, so worker interleaving
/// cannot change the maximum).
#[test]
fn parallel_bnb_bounds_are_identical_across_worker_counts() {
    use pmcs_core::bnb::{solve_window, BnbConfig};
    let specs = vec![
        RandTask {
            exec: 12,
            copy_in: 4,
            copy_out: 6,
            period: 60,
            ls: true,
        },
        RandTask {
            exec: 25,
            copy_in: 9,
            copy_out: 2,
            period: 90,
            ls: false,
        },
        RandTask {
            exec: 7,
            copy_in: 1,
            copy_out: 10,
            period: 45,
            ls: true,
        },
        RandTask {
            exec: 7,
            copy_in: 1,
            copy_out: 10,
            period: 45,
            ls: true,
        },
    ];
    let set = build_set(&specs);
    for under in 0..4u32 {
        for t in [30, 80] {
            for case in [WindowCase::Nls, WindowCase::LsCaseA] {
                let w = WindowModel::build(&set, TaskId(under), case, Time::from_ticks(t)).unwrap();
                let values: Vec<Option<i64>> = [1usize, 2, 4]
                    .iter()
                    .map(|&jobs| {
                        solve_window(
                            &w,
                            &BnbConfig {
                                jobs,
                                ..BnbConfig::default()
                            },
                        )
                        .map(|run| run.value)
                    })
                    .collect();
                assert_eq!(values[0], values[1], "jobs=2 diverged for {w:?}");
                assert_eq!(values[0], values[2], "jobs=4 diverged for {w:?}");
                // And the bound itself matches the DP optimum.
                let dp = ExactEngine::default().max_total_delay(&w).unwrap();
                assert!(dp.exact);
                assert_eq!(values[0], Some(dp.delay.as_ticks()), "B&B != DP for {w:?}");
            }
        }
    }
}
