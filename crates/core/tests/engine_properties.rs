//! Structural properties of the exact delay engine beyond MILP
//! equivalence: monotonicity in the window length, sensitivity of the
//! bound to LS markings, and soundness of the degradation path.

use proptest::prelude::*;

use pmcs_core::{DelayEngine, ExactEngine, WindowCase, WindowModel};
use pmcs_model::{Priority, Sensitivity, Task, TaskId, TaskSet, Time};

fn build_set(params: &[(i64, i64, i64, bool)]) -> TaskSet {
    let tasks: Vec<Task> = params
        .iter()
        .enumerate()
        .map(|(i, &(c, m, t, ls))| {
            Task::builder(TaskId(i as u32))
                .exec(Time::from_ticks(c))
                .copy_in(Time::from_ticks(m))
                .copy_out(Time::from_ticks(m))
                .sporadic(Time::from_ticks(t))
                .deadline(Time::from_ticks(t))
                .priority(Priority(i as u32))
                .sensitivity(if ls {
                    Sensitivity::Ls
                } else {
                    Sensitivity::Nls
                })
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

fn delay(set: &TaskSet, under: u32, case: WindowCase, t: i64) -> i64 {
    let w = WindowModel::build(set, TaskId(under), case, Time::from_ticks(t)).unwrap();
    let b = ExactEngine::default().max_total_delay(&w).unwrap();
    assert!(b.exact);
    b.delay.as_ticks()
}

fn params_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64, bool)>> {
    prop::collection::vec((1i64..=25, 0i64..=8, 50i64..=150, any::<bool>()), 2..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Longer windows admit at least as many interfering jobs, so the
    /// optimal delay is monotone in the window length.
    #[test]
    fn delay_is_monotone_in_window_length(
        params in params_strategy(),
        t1 in 1i64..=150,
        dt in 0i64..=150,
        under in 0usize..5,
    ) {
        let under = (under % params.len()) as u32;
        let set = build_set(&params);
        let d1 = delay(&set, under, WindowCase::Nls, t1);
        let d2 = delay(&set, under, WindowCase::Nls, t1 + dt);
        prop_assert!(d2 >= d1, "delay({}) = {d2} < delay({t1}) = {d1}", t1 + dt);
    }

    /// Marking the task under analysis LS (case (a)) never increases the
    /// window's delay relative to NLS at the same window length: case (a)
    /// drops one blocking interval and changes nothing else.
    #[test]
    fn ls_case_a_no_worse_than_nls_at_same_window(
        params in params_strategy(),
        t in 1i64..=150,
        under in 0usize..5,
    ) {
        let under = (under % params.len()) as u32;
        let set = build_set(&params);
        let nls = delay(&set, under, WindowCase::Nls, t);
        let ls = delay(&set, under, WindowCase::LsCaseA, t);
        prop_assert!(ls <= nls, "LS case (a) {ls} > NLS {nls}");
    }

    /// Marking some *other* task LS can only increase the delay bound
    /// (cancellations and urgent executions are extra adversary moves).
    #[test]
    fn foreign_ls_marking_never_decreases_the_bound(
        params in params_strategy(),
        t in 1i64..=120,
        under in 0usize..5,
        marked in 0usize..5,
    ) {
        let n = params.len();
        let under_idx = under % n;
        let marked_idx = marked % n;
        prop_assume!(under_idx != marked_idx);
        let mut nls_params = params.clone();
        for p in &mut nls_params {
            p.3 = false;
        }
        let base_set = build_set(&nls_params);
        let mut marked_params = nls_params.clone();
        marked_params[marked_idx].3 = true;
        let marked_set = build_set(&marked_params);
        let base = delay(&base_set, under_idx as u32, WindowCase::Nls, t);
        let with_ls = delay(&marked_set, under_idx as u32, WindowCase::Nls, t);
        prop_assert!(
            with_ls >= base,
            "marking τ{marked_idx} LS shrank τ{under_idx}'s bound: {with_ls} < {base}"
        );
    }

    /// The starved engine's fallback dominates the exact optimum.
    #[test]
    fn fallback_bound_is_safe(
        params in params_strategy(),
        t in 1i64..=120,
        under in 0usize..5,
    ) {
        let under = (under % params.len()) as u32;
        let set = build_set(&params);
        let w = WindowModel::build(&set, TaskId(under), WindowCase::Nls, Time::from_ticks(t))
            .unwrap();
        let exact = ExactEngine::default().max_total_delay(&w).unwrap();
        let starved = ExactEngine::with_max_states(1).max_total_delay(&w).unwrap();
        prop_assert!(starved.delay >= exact.delay);
    }
}
