//! The analysis window: the data both delay engines consume.
//!
//! For a task under analysis `τ_i` and a tentative delay-window length `t`,
//! the analysis considers `N_i(t)` scheduling intervals (Theorem 1 /
//! Corollary 1 of the paper) and searches for the protocol-legal schedule
//! that maximizes `Σ_k Δ_k`, the total interval length before (and
//! including) `τ_i`'s execution interval. [`WindowModel`] captures
//! everything that search needs: the competing tasks with their per-window
//! job budgets, `τ_i`'s own phases, and the case-specific structure.

use pmcs_model::{ArrivalBound, Priority, Sensitivity, Task, TaskId, TaskSet, Time};

use crate::error::CoreError;

/// Which analysis case the window encodes (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowCase {
    /// `τ_i` is NLS: blocked by up to two lower-priority tasks, executing
    /// in the last of `N = Σ(η_j+1) + 3` intervals (Theorem 1).
    Nls,
    /// `τ_i` is LS and is *not* promoted to urgent in its release interval
    /// (case (a)): one blocking interval, `N = Σ(η_j+1) + 2` (Corollary 1).
    LsCaseA,
}

/// A competing task as seen from the window of the task under analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTask {
    /// Identifier in the original task set.
    pub id: TaskId,
    /// Execution time `C_j`.
    pub exec: Time,
    /// Copy-in time `l_j`.
    pub copy_in: Time,
    /// Copy-out time `u_j`.
    pub copy_out: Time,
    /// Latency-sensitivity marking (urgent execution allowed iff LS).
    pub ls: bool,
    /// `true` iff the task has higher priority than the task under
    /// analysis.
    pub hp: bool,
    /// Priority (for the cancellation rule: a task can trigger urgency
    /// only by canceling the copy-in of a *lower-priority* task).
    pub priority: Priority,
    /// Maximum job executions inside the window: `η_j(t)+1` for
    /// higher-priority tasks, `1` for lower-priority tasks.
    pub budget: u64,
}

impl WindowTask {
    /// CPU demand of one execution: `C_j` normally, `l_j + C_j` when
    /// executed as urgent.
    pub fn demand(&self, urgent: bool) -> Time {
        if urgent {
            self.copy_in + self.exec
        } else {
            self.exec
        }
    }
}

/// The full window description handed to a delay engine.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowModel {
    /// Which analysis case the window encodes.
    pub case: WindowCase,
    /// Number of scheduling intervals `N_i(t)`.
    pub n_intervals: usize,
    /// Competing tasks (all tasks of the core except `τ_i`).
    pub tasks: Vec<WindowTask>,
    /// `τ_i`'s execution time `C_i`.
    pub exec_i: Time,
    /// `τ_i`'s copy-in time `l_i`.
    pub copy_in_i: Time,
    /// `τ_i`'s copy-out time `u_i`.
    pub copy_out_i: Time,
    /// `τ_i`'s priority.
    pub priority_i: Priority,
    /// `max_{τ_j ∈ Γ} l_j` (boundary constraints 12/15).
    pub max_l: Time,
    /// `max_{τ_j ∈ Γ} u_j` (boundary constraints 12/15).
    pub max_u: Time,
}

impl WindowModel {
    /// Builds the window for task `under_analysis` with delay-window
    /// length `t`, treating the task as NLS or LS according to `case`.
    ///
    /// Budgets follow Theorem 1: each higher-priority task `τ_j` may
    /// execute `η_j(t) + 1` jobs in the window; each lower-priority task at
    /// most one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] if `under_analysis` is not in the set.
    pub fn build(
        task_set: &TaskSet,
        under_analysis: TaskId,
        case: WindowCase,
        t: Time,
    ) -> Result<Self, CoreError> {
        let tua = task_set.require(under_analysis)?;
        let mut tasks = Vec::with_capacity(task_set.len() - 1);
        let mut hp_jobs: u64 = 0;
        let mut lp_count: usize = 0;
        for task in task_set.iter() {
            if task.id() == under_analysis {
                continue;
            }
            let hp = task.priority().is_higher_than(tua.priority());
            let budget = if hp {
                let b = task.arrival().eta(t) + 1;
                hp_jobs += b;
                b
            } else {
                lp_count += 1;
                1
            };
            tasks.push(WindowTask {
                id: task.id(),
                exec: task.exec(),
                copy_in: task.copy_in(),
                copy_out: task.copy_out(),
                ls: task.is_ls(),
                hp,
                priority: task.priority(),
                budget,
            });
        }
        // Theorem 1 / Corollary 1: the paper's "+3" (NLS) is two blocking
        // intervals plus τ_i's own execution interval, and the "+2" of LS
        // case (a) drops one blocking interval. Both blocking intervals
        // exist as soon as a *single* lower-priority task does: one lp job
        // released just before τ_i can occupy τ_i's release interval with
        // its standalone DMA copy-in (CPU idle, rule R2 already committed
        // the interval's transfer) and then execute in the next interval —
        // two full blocking intervals from one job. Only with no lp task
        // at all do the blocking intervals vanish. (An earlier refinement
        // capped blocking at `lp_count`, assuming each blocking interval
        // hosts a distinct lp task; simulation cross-validation refuted
        // that with exactly this copy-in-then-execute chain.) At least two
        // intervals are always needed: τ_i's copy-in and its execution.
        let blocking = match case {
            WindowCase::Nls => {
                if lp_count == 0 {
                    0
                } else {
                    2
                }
            }
            WindowCase::LsCaseA => lp_count.min(1),
        };
        let n_intervals = (hp_jobs as usize + blocking + 1).max(2);
        Ok(WindowModel {
            case,
            n_intervals,
            tasks,
            exec_i: tua.exec(),
            copy_in_i: tua.copy_in(),
            copy_out_i: tua.copy_out(),
            priority_i: tua.priority(),
            max_l: task_set.max_copy_in(),
            max_u: task_set.max_copy_out(),
        })
    }

    /// Indices of higher-priority tasks.
    pub fn hp_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.hp)
            .map(|(i, _)| i)
    }

    /// Indices of lower-priority tasks.
    pub fn lp_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.hp)
            .map(|(i, _)| i)
    }

    /// Latest interval index (inclusive) in which a lower-priority task may
    /// *execute*: `I_1` for the NLS case (two blocking intervals,
    /// Constraint 3), `I_0` for LS case (a) (Constraint 14).
    pub fn last_lp_exec_interval(&self) -> usize {
        match self.case {
            WindowCase::Nls => 1,
            WindowCase::LsCaseA => 0,
        }
    }

    /// `true` iff a DMA copy-in of a lower-priority task may occur in
    /// `I_0` (possible only in the NLS case; forbidden by Constraint 14
    /// for LS case (a), where the blocking task's copy-in predates the
    /// window).
    pub fn lp_copy_in_allowed(&self) -> bool {
        matches!(self.case, WindowCase::Nls)
    }

    /// The set of tasks whose copy-in a cancellation may target in
    /// interval `k`, as indices into [`WindowModel::tasks`]:
    /// higher-priority tasks anywhere, lower-priority tasks only in `I_0`
    /// (Constraint 3). The task under analysis never appears (its copy-in
    /// is pinned to interval `N−2` by Constraint 12).
    pub fn cancellable_indices(&self, interval: usize) -> impl Iterator<Item = usize> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.hp || interval == 0)
            .map(|(i, _)| i)
    }

    /// `true` iff task index `canceled` may enable an urgent execution of
    /// task index `urgent`: the canceled copy-in must belong to a task
    /// with *lower priority* than the urgent task (rules R3/R4,
    /// Constraint 8).
    pub fn cancellation_enables(&self, canceled: usize, urgent: usize) -> bool {
        self.tasks[urgent]
            .priority
            .is_higher_than(self.tasks[canceled].priority)
    }

    /// `true` iff a cancellation of task index `victim`'s copy-in is
    /// physically possible at all: rule R3 requires the release of a
    /// **latency-sensitive task with higher priority** than the victim.
    /// The candidates are the LS tasks of the window and, when the task
    /// under analysis is itself LS (case (a)), `τ_i`. With no such task
    /// the copy-in can never be canceled, and charging the DMA for it
    /// would be spurious pessimism (this is what lets the all-NLS
    /// formulation improve on the analysis of \[3\], cf. Section VIII).
    pub fn cancel_triggerable(&self, victim: usize) -> bool {
        let vp = self.tasks[victim].priority;
        if matches!(self.case, WindowCase::LsCaseA) && self.priority_i.is_higher_than(vp) {
            return true;
        }
        self.tasks
            .iter()
            .any(|t| t.ls && t.priority.is_higher_than(vp))
    }

    /// Number of intervals `N_i(t)`.
    pub fn n(&self) -> usize {
        self.n_intervals
    }

    /// Computes the window for the degenerate LS case (b): `τ_i` is
    /// promoted to urgent at the end of its release interval and executes
    /// in the following interval with a CPU-performed copy-in
    /// (Section V-B.2). Returns the exact worst-case response time for
    /// this case: `Δ_0 + Δ_1 + u_i` with
    ///
    /// * `Δ_0 = max(cpu_0, max_l + max_u)` where `cpu_0` ranges over one
    ///   execution of any other task (urgent executions included for LS
    ///   tasks — Constraints 5, 9, 15);
    /// * `Δ_1 = max(l_i + C_i, max_l + u_{x_0})` where `u_{x_0}` is the
    ///   copy-out of the task executed in `I_0` (Constraints 2, 11, 15).
    pub fn ls_case_b_response(&self) -> Time {
        let dma0 = self.max_l + self.max_u;
        let own = self.copy_in_i + self.exec_i;
        // Choice of the interfering/blocking task executed in I_0 couples
        // Δ_0 (its CPU demand) and Δ_1 (its copy-out): enumerate.
        let mut best = dma0.max(own.max(self.max_l)); // x_0 = none
        for t in &self.tasks {
            let cpu0 = t.demand(t.ls);
            let d0 = cpu0.max(dma0);
            let d1 = own.max(self.max_l + t.copy_out);
            best = best.max(d0 + d1);
        }
        // x_0 = none: Δ_0 = dma0, Δ_1 = max(own, max_l).
        best = best.max(dma0 + own.max(self.max_l));
        best + self.copy_out_i
    }
}

/// Convenience: the window case matching a task's current sensitivity.
pub fn case_for(sensitivity: Sensitivity) -> WindowCase {
    match sensitivity {
        Sensitivity::Nls => WindowCase::Nls,
        Sensitivity::Ls => WindowCase::LsCaseA,
    }
}

/// Helper used by tests and benches: builds a simple sporadic task.
#[doc(hidden)]
pub fn test_task(id: u32, c: i64, l: i64, u: i64, t: i64, prio: u32, ls: bool) -> Task {
    Task::builder(TaskId(id))
        .exec(Time::from_ticks(c))
        .copy_in(Time::from_ticks(l))
        .copy_out(Time::from_ticks(u))
        .sporadic(Time::from_ticks(t))
        .deadline(Time::from_ticks(t))
        .priority(Priority(prio))
        .sensitivity(if ls {
            Sensitivity::Ls
        } else {
            Sensitivity::Nls
        })
        .build()
        .expect("valid test task")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set3() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 200, 1, true),
            test_task(2, 30, 6, 6, 300, 2, false),
        ])
        .unwrap()
    }

    #[test]
    fn nls_window_counts_intervals_per_theorem_1() {
        let set = set3();
        // τ2 under analysis, t = 250: η_0(250) = 3, η_1(250) = 2.
        let w =
            WindowModel::build(&set, TaskId(2), WindowCase::Nls, Time::from_ticks(250)).unwrap();
        // N = (3+1) + (2+1) + min(2, 0 lp) + 1 = 8.
        assert_eq!(w.n(), 8);
        assert_eq!(w.tasks.len(), 2);
        assert!(w.tasks.iter().all(|t| t.hp));
        assert_eq!(w.hp_indices().count(), 2);
        assert_eq!(w.lp_indices().count(), 0);
    }

    #[test]
    fn ls_case_a_has_one_fewer_blocking_interval() {
        let set = set3();
        // τ0 (highest priority) has two lp tasks: NLS gets 2 blocking
        // intervals, LS case (a) only 1.
        let wn =
            WindowModel::build(&set, TaskId(0), WindowCase::Nls, Time::from_ticks(250)).unwrap();
        let wa = WindowModel::build(&set, TaskId(0), WindowCase::LsCaseA, Time::from_ticks(250))
            .unwrap();
        assert_eq!(wn.n(), 3); // 0 hp jobs + 2 blocking + 1
        assert_eq!(wa.n(), 2); // 0 hp jobs + 1 blocking + 1
        assert_eq!(wa.last_lp_exec_interval(), 0);
        assert_eq!(wn.last_lp_exec_interval(), 1);
        assert!(wn.lp_copy_in_allowed());
        assert!(!wa.lp_copy_in_allowed());
    }

    #[test]
    fn no_lp_tasks_means_no_blocking_intervals() {
        let set = set3();
        // τ2 (lowest priority) has no lp tasks: no blocking intervals in
        // either case.
        let wn =
            WindowModel::build(&set, TaskId(2), WindowCase::Nls, Time::from_ticks(250)).unwrap();
        let wa = WindowModel::build(&set, TaskId(2), WindowCase::LsCaseA, Time::from_ticks(250))
            .unwrap();
        assert_eq!(wn.n(), wa.n());
    }

    #[test]
    fn budgets_follow_arrival_curves() {
        let set = set3();
        let w =
            WindowModel::build(&set, TaskId(1), WindowCase::Nls, Time::from_ticks(150)).unwrap();
        // hp = τ0 with η(150) = 2 → budget 3; lp = τ2 budget 1.
        let hp: Vec<_> = w.hp_indices().collect();
        assert_eq!(hp.len(), 1);
        assert_eq!(w.tasks[hp[0]].budget, 3);
        let lp: Vec<_> = w.lp_indices().collect();
        assert_eq!(w.tasks[lp[0]].budget, 1);
        // N = 3 hp jobs + 2 blocking (one lp job spans two intervals) + 1.
        assert_eq!(w.n(), 6);
    }

    #[test]
    fn max_copy_phases_span_whole_set() {
        let set = set3();
        let w = WindowModel::build(&set, TaskId(0), WindowCase::Nls, Time::from_ticks(50)).unwrap();
        assert_eq!(w.max_l, Time::from_ticks(6));
        assert_eq!(w.max_u, Time::from_ticks(6));
    }

    #[test]
    fn cancellable_set_respects_interval_zero_rule() {
        let set = set3();
        let w =
            WindowModel::build(&set, TaskId(1), WindowCase::Nls, Time::from_ticks(100)).unwrap();
        // In I_0 both the hp task and the lp task are cancellable.
        assert_eq!(w.cancellable_indices(0).count(), 2);
        // Later only hp tasks.
        assert_eq!(w.cancellable_indices(3).count(), 1);
    }

    #[test]
    fn cancellation_requires_priority_gap() {
        let set = set3();
        let w =
            WindowModel::build(&set, TaskId(2), WindowCase::Nls, Time::from_ticks(100)).unwrap();
        // tasks: idx of τ0 (prio 0) and τ1 (prio 1).
        let i0 = w.tasks.iter().position(|t| t.id == TaskId(0)).unwrap();
        let i1 = w.tasks.iter().position(|t| t.id == TaskId(1)).unwrap();
        // τ1 (LS) may cancel τ0? No: τ0 has higher priority.
        assert!(!w.cancellation_enables(i0, i1));
        // τ0 urgent enabled by canceling τ1: yes.
        assert!(w.cancellation_enables(i1, i0));
    }

    #[test]
    fn unknown_task_is_an_error() {
        let set = set3();
        assert!(WindowModel::build(&set, TaskId(9), WindowCase::Nls, Time::ZERO).is_err());
    }

    #[test]
    fn ls_case_b_closed_form() {
        let set = set3();
        let w = WindowModel::build(&set, TaskId(1), WindowCase::LsCaseA, Time::from_ticks(100))
            .unwrap();
        // max_l = 6, max_u = 6 → dma0 = 12. own = 4 + 20 = 24.
        // x_0 = τ0 (NLS): Δ0 = max(10, 12) = 12; Δ1 = max(24, 6+2) = 24 → 36.
        // x_0 = τ2 (NLS): Δ0 = max(30, 12) = 30; Δ1 = max(24, 6+6) = 24 → 54.
        // x_0 = none: 12 + 24 = 36. Best 54; + u_i = 4 → 58.
        assert_eq!(w.ls_case_b_response(), Time::from_ticks(58));
    }

    #[test]
    fn window_task_demand() {
        let t = WindowTask {
            id: TaskId(0),
            exec: Time::from_ticks(10),
            copy_in: Time::from_ticks(3),
            copy_out: Time::from_ticks(2),
            ls: true,
            hp: true,
            priority: Priority(0),
            budget: 1,
        };
        assert_eq!(t.demand(false), Time::from_ticks(10));
        assert_eq!(t.demand(true), Time::from_ticks(13));
    }
}
