//! Copy-phase inflation under shared-bus bandwidth regulation.
//!
//! The paper's analysis assumes each core's DMA engine moves data over a
//! contention-free crossbar, so a copy phase of demand `d` occupies the
//! DMA for exactly `d` ticks. On a regulated shared bus
//! ([`BusModel::regulated`]) that is no longer true: core `p_m` holds a
//! budget of `Q_m` bus ticks per replenishment period `P`, loses the bus
//! for the rest of each period, and additionally waits while other
//! cores spend their own budgets. [`Inflation`] captures the resulting
//! worst-case *service time* of a transfer and turns it into a
//! **reversible task-set transform**: inflate every `l_i`/`u_i`, run the
//! entire existing per-core machinery (sessions, caches, certificates,
//! MILP) verbatim on the inflated set, and interpret the verdicts for
//! the original set.
//!
//! # The bound
//!
//! With `σ = Σ_{m' ≠ m} Q_{m'}` the contending cores' total budget, the
//! worst-case service time of a transfer of demand `d > 0` issued by
//! core `p_m` is
//!
//! ```text
//! inflate(d) = d + ceil(d / Q_m) · (P − Q_m) + 2σ
//! ```
//!
//! **Soundness sketch** (the full argument is DESIGN.md §16). Measure
//! from the instant `s` the transfer reaches the head of its core's DMA
//! queue. Hard regulation guarantees two facts: (a) other cores
//! transfer at most `σ` ticks inside any replenishment period, and (b) a
//! continuously backlogged core with fresh budget receives its full
//! `Q_m` ticks before the period ends (budgets sum to at most `P`).
//! Decompose `[s, completion)` by replenishment boundaries:
//!
//! * *first (partial) period*: the core may inherit an exhausted budget,
//!   stalling at most `P − Q_m` zero-budget ticks, and waits at most `σ`
//!   ticks for budgeted rivals — stall ≤ `(P − Q_m) + σ`;
//! * *interior periods*: fresh budget and still backlogged, so by (b)
//!   exactly `Q_m` ticks of progress per period — stall `P − Q_m` each,
//!   and at most `ceil(d / Q_m) − 1` such periods are needed;
//! * *final period*: at most `Q_m` ticks remain against a fresh budget,
//!   so the core never runs dry and only rivals' budgeted ticks stall
//!   it — stall ≤ `σ`.
//!
//! Total stall ≤ `ceil(d / Q_m)·(P − Q_m) + 2σ`. The bound is exact
//! tick arithmetic (no floats) and degenerates to the identity when the
//! bus is contention-free or no other core is active — which is what
//! keeps `M = 1` and legacy platforms byte-identical to the
//! pre-contention analyzer.

use pmcs_model::{ArrivalModel, BusModel, CoreId, Task, TaskSet, Time};

use crate::error::CoreError;

/// Worst-case copy-phase inflation for one core of a regulated bus.
///
/// Obtained from [`Inflation::for_core`] (all other cores contend) or
/// [`Inflation::for_core_among`] (only selected cores contend — used by
/// partitioning, where empty cores issue no transfers). The identity
/// transform ([`Inflation::none`]) leaves every duration untouched.
///
/// # Example
///
/// ```
/// use pmcs_core::contention::Inflation;
/// use pmcs_model::{BusModel, CoreId, Time};
///
/// let bus = BusModel::regulated(
///     Time::from_ticks(100),
///     vec![Time::from_ticks(40), Time::from_ticks(40)],
/// )?;
/// let inflation = Inflation::for_core(&bus, CoreId(0));
/// // ceil(50/40)·(100−40) + 2·40 = 120 + 80 extra ticks.
/// assert_eq!(inflation.inflate(Time::from_ticks(50)), Time::from_ticks(250));
/// assert_eq!(inflation.inflate(Time::ZERO), Time::ZERO);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inflation {
    /// Own budget `Q_m`; `Time::ZERO` encodes the identity transform.
    own_budget: Time,
    /// Replenishment period `P`.
    period: Time,
    /// Total budget `σ` of the contending cores.
    others_budget: Time,
}

impl Inflation {
    /// The identity transform: no bus contention.
    pub fn none() -> Self {
        Inflation {
            own_budget: Time::ZERO,
            period: Time::ZERO,
            others_budget: Time::ZERO,
        }
    }

    /// Inflation seen by `core` when every other core of `bus` contends.
    ///
    /// Contention-free buses, single-core regulated buses, and cores the
    /// bus does not regulate all yield the identity transform.
    pub fn for_core(bus: &BusModel, core: CoreId) -> Self {
        let all = vec![true; bus.num_cores()];
        Inflation::for_core_among(bus, core, &all)
    }

    /// Inflation seen by `core` when only the cores with `active[m] =
    /// true` issue transfers (entries beyond `active` count as
    /// inactive; `core` itself is counted regardless). Partitioning uses
    /// this to ignore still-empty cores during admission.
    pub fn for_core_among(bus: &BusModel, core: CoreId, active: &[bool]) -> Self {
        let Some(period) = bus.period() else {
            return Inflation::none();
        };
        let Some(own) = bus.budget(core) else {
            return Inflation::none();
        };
        let others = bus
            .budgets()
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != core.0 as usize && active.get(m).copied().unwrap_or(false))
            .fold(Time::ZERO, |acc, (_, &q)| acc + q);
        if others == Time::ZERO {
            // Nobody to contend with: hard regulation never engages a
            // lone core (see `BusModel::is_contended`).
            return Inflation::none();
        }
        Inflation {
            own_budget: own,
            period,
            others_budget: others,
        }
    }

    /// Whether this is the identity transform (`inflate(d) = d`).
    pub fn is_identity(&self) -> bool {
        self.own_budget == Time::ZERO
    }

    /// Worst-case service time of a transfer of demand `d`:
    /// `d + ceil(d / Q_m)·(P − Q_m) + 2σ`, or `d` unchanged under the
    /// identity transform or for `d ≤ 0`.
    pub fn inflate(&self, d: Time) -> Time {
        if self.is_identity() || d <= Time::ZERO {
            return d;
        }
        let windows = d.div_ceil(self.own_budget) as i64;
        let stall_per_window = self.period - self.own_budget;
        d + Time::from_ticks(windows * stall_per_window.as_ticks())
            + self.others_budget
            + self.others_budget
    }

    /// Inflates a single task: copy-in and copy-out are replaced by
    /// their worst-case bus service times; everything else (id, name,
    /// execution, arrival model, deadline, priority, sensitivity) is
    /// preserved, which is what makes the transform reversible — the
    /// original task is recovered by swapping the copy bounds back.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Model`] if the inflated durations no
    /// longer form a valid task (cannot happen for in-range ticks).
    pub fn inflate_task(&self, task: &Task) -> Result<Task, CoreError> {
        let mut b = Task::builder(task.id())
            .exec(task.exec())
            .copy_in(self.inflate(task.copy_in()))
            .copy_out(self.inflate(task.copy_out()))
            .arrival(ArrivalModel::clone(task.arrival()))
            .deadline(task.deadline())
            .priority(task.priority())
            .sensitivity(task.sensitivity());
        if let Some(name) = task.name() {
            b = b.name(name);
        }
        Ok(b.build()?)
    }

    /// Inflates every task of a set (see [`Inflation::inflate_task`]).
    /// Under the identity transform the result compares equal to the
    /// input, so contention-free analyses are byte-identical to the
    /// legacy path.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Model`] from task reconstruction.
    pub fn inflate_set(&self, set: &TaskSet) -> Result<TaskSet, CoreError> {
        let tasks = set
            .iter()
            .map(|t| self.inflate_task(t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TaskSet::new(tasks)?)
    }
}

impl Default for Inflation {
    fn default() -> Self {
        Inflation::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::test_task;

    fn t(ticks: i64) -> Time {
        Time::from_ticks(ticks)
    }

    fn bus2() -> BusModel {
        BusModel::regulated(t(100), vec![t(40), t(40)]).unwrap()
    }

    #[test]
    fn identity_for_contention_free_and_lone_cores() {
        assert!(Inflation::for_core(&BusModel::contention_free(), CoreId(0)).is_identity());
        let lone = BusModel::regulated(t(100), vec![t(40)]).unwrap();
        assert!(Inflation::for_core(&lone, CoreId(0)).is_identity());
        // Out-of-range core: nothing to say, identity.
        assert!(Inflation::for_core(&bus2(), CoreId(7)).is_identity());
        // Two cores but the rival is inactive.
        assert!(Inflation::for_core_among(&bus2(), CoreId(0), &[true, false]).is_identity());
        let infl = Inflation::none();
        assert_eq!(infl.inflate(t(123)), t(123));
    }

    #[test]
    fn inflate_matches_the_formula() {
        let infl = Inflation::for_core(&bus2(), CoreId(0));
        // d=1: ceil(1/40)=1 window → 1 + 60 + 80.
        assert_eq!(infl.inflate(t(1)), t(141));
        // d=40: exactly one window → 40 + 60 + 80.
        assert_eq!(infl.inflate(t(40)), t(180));
        // d=41: two windows → 41 + 120 + 80.
        assert_eq!(infl.inflate(t(41)), t(241));
        // Zero demand is untouched (no transfer, no stall).
        assert_eq!(infl.inflate(Time::ZERO), Time::ZERO);
    }

    #[test]
    fn inflation_is_monotone_in_rival_budgets_and_core_count() {
        let small = BusModel::regulated(t(100), vec![t(20), t(10)]).unwrap();
        let large = BusModel::regulated(t(100), vec![t(20), t(30)]).unwrap();
        let three = BusModel::regulated(t(100), vec![t(20), t(30), t(25)]).unwrap();
        for d in [1, 7, 20, 21, 55] {
            let d = t(d);
            let s = Inflation::for_core(&small, CoreId(0)).inflate(d);
            let l = Inflation::for_core(&large, CoreId(0)).inflate(d);
            let m = Inflation::for_core(&three, CoreId(0)).inflate(d);
            assert!(d <= s, "never below the demand");
            assert!(s < l, "larger rival budget must inflate strictly more");
            assert!(l < m, "an extra contending core must inflate more");
        }
    }

    #[test]
    fn inflate_set_preserves_everything_but_the_copy_bounds() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 5, 3, 1_000, 0, true),
            test_task(1, 20, 0, 7, 2_000, 1, false),
        ])
        .unwrap();
        let infl = Inflation::for_core(&bus2(), CoreId(1));
        let inflated = infl.inflate_set(&set).unwrap();
        for (orig, new) in set.iter().zip(inflated.iter()) {
            assert_eq!(orig.id(), new.id());
            assert_eq!(orig.exec(), new.exec());
            assert_eq!(orig.deadline(), new.deadline());
            assert_eq!(orig.priority(), new.priority());
            assert_eq!(orig.sensitivity(), new.sensitivity());
            assert_eq!(orig.arrival(), new.arrival());
            assert_eq!(infl.inflate(orig.copy_in()), new.copy_in());
            assert_eq!(infl.inflate(orig.copy_out()), new.copy_out());
        }
        // Reversibility: deflating by construction recovers the input.
        assert_eq!(Inflation::none().inflate_set(&set).unwrap(), set);
    }
}
