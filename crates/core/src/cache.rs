//! Window-level delay-bound caching.
//!
//! The hot path of every experiment is the delay-maximization call
//! [`DelayEngine::max_total_delay`]: the WCRT fixed point re-solves a
//! window per iteration, the greedy LS-marking loop re-runs the whole
//! fixed point after every promotion, and the ablation study analyzes the
//! same task set under several markings. Many of those windows are
//! *semantically identical* — the window model depends on the tentative
//! window length only through the per-task job budgets `η_j(t) + 1`, which
//! plateau between iterations — so their bounds can be memoized.
//!
//! [`CachedEngine`] wraps any [`DelayEngine`] with a [`DelayCache`]: a map
//! from a canonical [`WindowKey`] to the engine's [`DelayBound`]. The key
//! captures exactly the data a delay engine may consume (case, interval
//! count, per-task phases/budgets/markings, boundary terms) and *nothing
//! else* — task identifiers are deliberately excluded, and priorities are
//! normalized to ranks, so windows that merely relabel tasks share one
//! entry.
//!
//! ## Invalidation under LS promotions
//!
//! The greedy algorithm of Section VI flips one task `τ_j` from NLS to LS
//! per round. No explicit invalidation is needed: the `ls` marking of
//! every competing task is part of the key, so windows whose content
//! changed simply miss and are re-solved, while windows the promotion
//! cannot have influenced keep hitting. The key additionally
//! *canonicalizes* markings that are provably irrelevant: an LS flag on a
//! competing task `τ_j` only matters if `τ_j` can inflict extra delay
//! through it, i.e. if its copy-in is nonzero (urgent executions inflate
//! CPU demand by `l_j`) or some window task has strictly lower priority
//! (cancellation victims exist, rules R3/R4). A promotion of a
//! zero-copy-in, lowest-priority task therefore invalidates *no* window of
//! the other tasks — the property [`promotion_affects`] exposes to the
//! greedy loop.
//!
//! ## Determinism
//!
//! Two windows with equal keys are indistinguishable to a correct engine,
//! so serving a memoized [`DelayBound`] never changes analysis results;
//! `CachedEngine` is property-tested against its inner engine in
//! `tests/cache_consistency.rs`. The only observable difference is the
//! `nodes` effort counter of a hit (the stored value is returned).
//!
//! [`promotion_affects`]: crate::schedulability::promotion_affects

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use pmcs_model::Time;

use crate::error::CoreError;
use crate::wcrt::{DelayBound, DelayEngine};
use crate::window::{WindowCase, WindowModel};

/// One competing task as seen by the cache key: everything a delay engine
/// may read, with the identifier dropped and the priority rank-normalized.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TaskKey {
    exec: i64,
    copy_in: i64,
    copy_out: i64,
    /// Canonicalized LS marking (see the module docs): the raw flag is
    /// kept only when it can influence the optimum.
    ls: bool,
    hp: bool,
    /// Rank of the task's priority among all priorities in the window
    /// (0 = highest). Engines compare priorities, never their raw values.
    prio_rank: u32,
    budget: u64,
}

/// Canonical content key of a [`WindowModel`].
///
/// Equal keys imply semantically identical windows: every quantity a
/// delay engine consumes is either present verbatim or derivable from the
/// key. See the module docs for the canonicalization rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowKey {
    case: WindowCase,
    n_intervals: usize,
    tasks: Vec<TaskKey>,
    exec_i: i64,
    copy_in_i: i64,
    copy_out_i: i64,
    prio_rank_i: u32,
    max_l: i64,
    max_u: i64,
}

impl WindowKey {
    /// Builds the canonical key of a window.
    pub fn of(w: &WindowModel) -> Self {
        // Rank-normalize priorities: collect every priority in the window
        // (competitors plus the task under analysis), dedupe, and replace
        // each priority by its index in the sorted list.
        let mut prios: Vec<u32> = w.tasks.iter().map(|t| t.priority.0).collect();
        prios.push(w.priority_i.0);
        prios.sort_unstable();
        prios.dedup();
        let rank = |p: u32| -> u32 {
            prios
                .binary_search(&p)
                .expect("priority present by construction") as u32
        };
        let tasks: Vec<TaskKey> = w
            .tasks
            .iter()
            .enumerate()
            .map(|(j, t)| {
                // An LS flag is engine-relevant only if the task can use
                // it: a nonzero copy-in makes urgent executions more
                // expensive than plain ones, and a strictly-lower-priority
                // window task provides a cancellation victim (rules
                // R3/R4). Otherwise canonicalize to NLS.
                let has_victim = w
                    .tasks
                    .iter()
                    .enumerate()
                    .any(|(k, v)| k != j && t.priority.is_higher_than(v.priority));
                let ls = t.ls && (t.copy_in > Time::ZERO || has_victim);
                TaskKey {
                    exec: t.exec.as_ticks(),
                    copy_in: t.copy_in.as_ticks(),
                    copy_out: t.copy_out.as_ticks(),
                    ls,
                    hp: t.hp,
                    prio_rank: rank(t.priority.0),
                    budget: t.budget,
                }
            })
            .collect();
        WindowKey {
            case: w.case,
            n_intervals: w.n_intervals,
            tasks,
            exec_i: w.exec_i.as_ticks(),
            copy_in_i: w.copy_in_i.as_ticks(),
            copy_out_i: w.copy_out_i.as_ticks(),
            prio_rank_i: rank(w.priority_i.0),
            max_l: w.max_l.as_ticks(),
            max_u: w.max_u.as_ticks(),
        }
    }
}

/// Hit/miss/eviction counters of a [`DelayCache`] or [`SharedDelayCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the inner engine.
    pub misses: u64,
    /// Entries dropped to honor the entry budget.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or `0.0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set into this one.
    ///
    /// Aggregation rule for sharded and multi-worker setups: merge either
    /// the per-shard counters *or* the per-engine local counters, never
    /// both — each lookup is counted exactly once on each side, so mixing
    /// the two double-counts.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}%)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

/// Memo of window delay bounds, keyed by [`WindowKey`].
///
/// Entries never go stale (keys are content-addressed), so the only
/// eviction is a wholesale [`clear`](DelayCache::clear) when the entry
/// budget is exceeded — a rare event that bounds memory without
/// affecting results.
#[derive(Debug, Clone)]
pub struct DelayCache {
    map: HashMap<WindowKey, DelayBound>,
    stats: CacheStats,
    max_entries: usize,
}

impl Default for DelayCache {
    fn default() -> Self {
        DelayCache::with_capacity(1 << 20)
    }
}

impl DelayCache {
    /// Creates a cache that clears itself after `max_entries` entries.
    pub fn with_capacity(max_entries: usize) -> Self {
        DelayCache {
            map: HashMap::new(),
            stats: CacheStats::default(),
            max_entries: max_entries.max(1),
        }
    }

    /// Looks up a window, counting the outcome.
    pub fn get(&mut self, key: &WindowKey) -> Option<DelayBound> {
        match self.map.get(key) {
            Some(&b) => {
                self.stats.hits += 1;
                Some(b)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a bound, clearing the map first if the budget is exhausted.
    pub fn insert(&mut self, key: WindowKey, bound: DelayBound) {
        if self.map.len() >= self.max_entries {
            self.stats.evictions += self.map.len() as u64;
            self.map.clear();
        }
        self.map.insert(key, bound);
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoized windows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no window is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// A [`DelayEngine`] adapter that memoizes bounds in a [`DelayCache`].
///
/// Works with any inner engine ([`ExactEngine`](crate::ExactEngine),
/// [`MilpEngine`](crate::MilpEngine), audited or not). The cache lives
/// behind a `RefCell`, so a `CachedEngine` is single-threaded by design;
/// parallel drivers give each worker its own instance (results are
/// identical either way because keys are content-addressed).
///
/// # Example
///
/// ```
/// use pmcs_core::{analyze_task_set, CachedEngine, ExactEngine};
/// use pmcs_core::window::test_task;
/// use pmcs_model::TaskSet;
///
/// let set = TaskSet::new(vec![
///     test_task(0, 10, 2, 2, 100, 0, false),
///     test_task(1, 20, 4, 4, 200, 1, false),
/// ])?;
/// let engine = CachedEngine::new(ExactEngine::default());
/// let report = analyze_task_set(&set, &engine)?;
/// assert!(report.schedulable());
/// // The fixed point's confirming iteration re-solves a window the
/// // cache already holds.
/// assert!(engine.stats().hits > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CachedEngine<E> {
    inner: E,
    cache: RefCell<DelayCache>,
}

impl<E> CachedEngine<E> {
    /// Wraps an engine with a default-capacity cache.
    pub fn new(inner: E) -> Self {
        CachedEngine {
            inner,
            cache: RefCell::new(DelayCache::default()),
        }
    }

    /// Wraps an engine with an entry-budgeted cache.
    pub fn with_capacity(inner: E, max_entries: usize) -> Self {
        CachedEngine {
            inner,
            cache: RefCell::new(DelayCache::with_capacity(max_entries)),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Number of memoized windows.
    pub fn cached_windows(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Drops all memoized windows (counters are kept).
    pub fn clear(&self) {
        self.cache.borrow_mut().clear();
    }
}

impl<E: DelayEngine> DelayEngine for CachedEngine<E> {
    fn max_total_delay(&self, window: &WindowModel) -> Result<DelayBound, CoreError> {
        let key = WindowKey::of(window);
        if let Some(bound) = self.cache.borrow_mut().get(&key) {
            return Ok(bound);
        }
        let bound = self.inner.max_total_delay(window)?;
        self.cache.borrow_mut().insert(key, bound);
        Ok(bound)
    }
}

/// One memoized bound plus the access stamp driving LRU eviction.
#[derive(Debug, Clone, Copy)]
struct ShardEntry {
    bound: DelayBound,
    stamp: u64,
}

/// One mutex-guarded shard of a [`SharedDelayCache`].
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<WindowKey, ShardEntry>,
    stats: CacheStats,
    /// Monotonic per-shard access counter; every lookup or insert stamps
    /// the touched entry, so stamps order entries by recency.
    tick: u64,
    max_entries: usize,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Drops the least-recently-used half of the shard and returns how
    /// many entries were evicted. Stamps are unique within a shard, so
    /// the median stamp splits the map deterministically.
    fn evict_lru_half(&mut self) -> u64 {
        let before = self.map.len();
        if before == 0 {
            return 0;
        }
        let mut stamps: Vec<u64> = self.map.values().map(|e| e.stamp).collect();
        let mid = stamps.len() / 2;
        let (_, cutoff, _) = stamps.select_nth_unstable(mid);
        let cutoff = *cutoff;
        self.map.retain(|_, e| e.stamp >= cutoff);
        let evicted = (before - self.map.len()) as u64;
        self.stats.evictions += evicted;
        evicted
    }
}

/// Process-wide window-bound cache shared across threads.
///
/// The map is split into N mutex-guarded shards; a lookup hashes the
/// [`WindowKey`], locks only the owning shard, and never blocks traffic
/// to other shards. Unlike [`DelayCache`]'s wholesale clear, each shard
/// evicts its least-recently-used *half* when its entry budget is
/// exceeded, so a long-running server keeps its hottest window shapes
/// warm indefinitely.
///
/// Sharing is sound for the same reason per-worker caching is: keys are
/// content-addressed, so a bound stored by one thread is exactly the
/// bound any other thread would have computed. Only telemetry (hit
/// counts, eviction counts) depends on interleaving — analysis rows do
/// not.
///
/// Two views of the counters exist and must not be mixed (see
/// [`CacheStats::merge`]): [`SharedDelayCache::stats`] aggregates the
/// authoritative per-shard counters, while each
/// [`SharedCachedEngine`] keeps a private local tally of its own
/// lookups for double-count-free per-worker merging.
#[derive(Debug)]
pub struct SharedDelayCache {
    shards: Vec<Mutex<Shard>>,
}

/// Default shard count of a [`SharedDelayCache`].
pub const DEFAULT_SHARDS: usize = 16;

impl Default for SharedDelayCache {
    fn default() -> Self {
        SharedDelayCache::with_config(DEFAULT_SHARDS, 1 << 20)
    }
}

impl SharedDelayCache {
    /// Creates a cache with `shards` shards holding at most
    /// `max_entries` entries in total (split evenly across shards; both
    /// arguments are clamped to at least 1).
    pub fn with_config(shards: usize, max_entries: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (max_entries / shards).max(1);
        SharedDelayCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        max_entries: per_shard,
                        ..Shard::default()
                    })
                })
                .collect(),
        }
    }

    fn shard_of(&self, key: &WindowKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        // A poisoned shard only means another thread panicked mid-update
        // of a HashMap insert; the map itself is still coherent.
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a window, counting the outcome on the owning shard and
    /// refreshing the entry's recency stamp.
    pub fn lookup(&self, key: &WindowKey) -> Option<DelayBound> {
        let mut shard = Self::lock(self.shard_of(key));
        let stamp = shard.touch();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                let bound = entry.bound;
                shard.stats.hits += 1;
                Some(bound)
            }
            None => {
                shard.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a bound, evicting the owning shard's LRU half first if its
    /// entry budget is exhausted. Returns the number of evicted entries.
    pub fn insert(&self, key: WindowKey, bound: DelayBound) -> u64 {
        let mut shard = Self::lock(self.shard_of(&key));
        let evicted = if shard.map.len() >= shard.max_entries {
            shard.evict_lru_half()
        } else {
            0
        };
        let stamp = shard.touch();
        shard.map.insert(key, ShardEntry { bound, stamp });
        evicted
    }

    /// Aggregated counters across all shards.
    ///
    /// Each lookup and eviction is recorded on exactly one shard, so the
    /// per-shard sum is exact even under concurrent access — no lookup
    /// is counted twice and none is lost.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(Self::lock(shard).stats);
        }
        total
    }

    /// Number of memoized windows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    /// `true` iff no window is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Drops all entries in all shards (counters are kept; the drop is
    /// not counted as an eviction).
    pub fn clear(&self) {
        for shard in &self.shards {
            Self::lock(shard).map.clear();
        }
    }
}

/// A [`DelayEngine`] adapter memoizing bounds in a [`SharedDelayCache`].
///
/// The cloneable successor of [`CachedEngine`] for multi-threaded
/// drivers: every worker wraps its own inner engine around one shared
/// `Arc<SharedDelayCache>`, so a window solved by any worker is a hit
/// for all of them. Each adapter additionally keeps *local* hit/miss/
/// eviction counters (its own lookups only); parallel drivers merge
/// those per-worker locals, which sums to exactly the shared cache's
/// own [`SharedDelayCache::stats`] — counting each lookup once.
#[derive(Debug)]
pub struct SharedCachedEngine<E> {
    inner: E,
    cache: Arc<SharedDelayCache>,
    local: Cell<CacheStats>,
}

impl<E> SharedCachedEngine<E> {
    /// Wraps an engine around an existing shared cache.
    pub fn new(inner: E, cache: Arc<SharedDelayCache>) -> Self {
        SharedCachedEngine {
            inner,
            cache,
            local: Cell::new(CacheStats::default()),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The shared cache this adapter reads and writes.
    pub fn shared(&self) -> &Arc<SharedDelayCache> {
        &self.cache
    }

    /// This adapter's local counters (only lookups made through it).
    pub fn stats(&self) -> CacheStats {
        self.local.get()
    }
}

impl<E: DelayEngine> DelayEngine for SharedCachedEngine<E> {
    fn max_total_delay(&self, window: &WindowModel) -> Result<DelayBound, CoreError> {
        let key = WindowKey::of(window);
        let mut local = self.local.get();
        if let Some(bound) = self.cache.lookup(&key) {
            local.hits += 1;
            self.local.set(local);
            return Ok(bound);
        }
        let bound = self.inner.max_total_delay(window)?;
        local.misses += 1;
        local.evictions += self.cache.insert(key, bound);
        self.local.set(local);
        Ok(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::window::test_task;
    use pmcs_model::{Sensitivity, TaskId, TaskSet};

    fn window(set: &TaskSet, id: u32, case: WindowCase, t: i64) -> WindowModel {
        WindowModel::build(set, TaskId(id), case, Time::from_ticks(t)).expect("task in set")
    }

    fn set3() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 200, 1, true),
            test_task(2, 30, 6, 6, 300, 2, false),
        ])
        .expect("valid set")
    }

    #[test]
    fn identical_windows_share_a_key() {
        let set = set3();
        let a = WindowKey::of(&window(&set, 1, WindowCase::Nls, 100));
        let b = WindowKey::of(&window(&set, 1, WindowCase::Nls, 100));
        assert_eq!(a, b);
    }

    #[test]
    fn window_lengths_with_equal_budgets_share_a_key() {
        let set = set3();
        // η_0(101) = η_0(140) = 2 (period 100): same budgets, same key.
        let a = WindowKey::of(&window(&set, 2, WindowCase::Nls, 101));
        let b = WindowKey::of(&window(&set, 2, WindowCase::Nls, 140));
        assert_eq!(a, b);
        // Crossing an arrival boundary changes the budgets and the key.
        let c = WindowKey::of(&window(&set, 2, WindowCase::Nls, 201));
        assert_ne!(a, c);
    }

    #[test]
    fn case_and_marking_are_part_of_the_key() {
        let set = set3();
        let nls = WindowKey::of(&window(&set, 0, WindowCase::Nls, 50));
        let ls = WindowKey::of(&window(&set, 0, WindowCase::LsCaseA, 50));
        assert_ne!(nls, ls);
        // Promoting τ2 (nonzero copy-in) changes the key of windows that
        // contain it.
        let promoted = set
            .with_sensitivity(TaskId(2), Sensitivity::Ls)
            .expect("τ2 in set");
        let after = WindowKey::of(&window(&promoted, 0, WindowCase::Nls, 50));
        assert_ne!(nls, after);
    }

    #[test]
    fn irrelevant_ls_flag_is_canonicalized_away() {
        // τ2: zero copy-in, lowest priority → its LS flag cannot matter
        // in τ0's window.
        let tasks = vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 200, 1, false),
            test_task(2, 30, 0, 6, 300, 2, false),
        ];
        let set = TaskSet::new(tasks).expect("valid set");
        let before = WindowKey::of(&window(&set, 0, WindowCase::Nls, 50));
        let promoted = set
            .with_sensitivity(TaskId(2), Sensitivity::Ls)
            .expect("τ2 in set");
        let after = WindowKey::of(&window(&promoted, 0, WindowCase::Nls, 50));
        assert_eq!(before, after, "zero-copy-in lowest-priority LS flag");
    }

    #[test]
    fn priorities_are_rank_normalized() {
        // Two sets identical up to a uniform priority shift share keys.
        let mk = |base: u32| {
            TaskSet::new(vec![
                test_task(0, 10, 2, 2, 100, base, false),
                test_task(1, 20, 4, 4, 200, base + 7, false),
            ])
            .expect("valid set")
        };
        let a = WindowKey::of(&window(&mk(0), 1, WindowCase::Nls, 60));
        let b = WindowKey::of(&window(&mk(5), 1, WindowCase::Nls, 60));
        assert_eq!(a, b);
    }

    #[test]
    fn cached_engine_hits_and_agrees() {
        let set = set3();
        let w = window(&set, 2, WindowCase::Nls, 150);
        let plain = ExactEngine::default();
        let cached = CachedEngine::new(ExactEngine::default());
        let reference = plain.max_total_delay(&w).expect("engine result");
        let first = cached.max_total_delay(&w).expect("engine result");
        let second = cached.max_total_delay(&w).expect("engine result");
        assert_eq!(first.delay, reference.delay);
        assert_eq!(second.delay, reference.delay);
        assert_eq!(first.exact, second.exact);
        let stats = cached.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cached.cached_windows(), 1);
    }

    #[test]
    fn capacity_exhaustion_clears_but_stays_correct() {
        let set = set3();
        let cached = CachedEngine::with_capacity(ExactEngine::default(), 1);
        let w1 = window(&set, 2, WindowCase::Nls, 101);
        let w2 = window(&set, 2, WindowCase::Nls, 250);
        let b1 = cached.max_total_delay(&w1).expect("engine result");
        let _ = cached.max_total_delay(&w2).expect("engine result");
        // w1 was evicted by the clear; re-solving must still agree.
        let again = cached.max_total_delay(&w1).expect("engine result");
        assert_eq!(b1.delay, again.delay);
        assert!(cached.cached_windows() <= 1);
    }

    #[test]
    fn stats_merge_and_display() {
        let mut a = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 2,
        };
        a.merge(CacheStats {
            hits: 1,
            misses: 3,
            evictions: 1,
        });
        assert_eq!(
            a,
            CacheStats {
                hits: 4,
                misses: 4,
                evictions: 3,
            }
        );
        assert!(a.to_string().contains("50.0%"));
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn shared_cache_hits_and_agrees() {
        let set = set3();
        let w = window(&set, 2, WindowCase::Nls, 150);
        let plain = ExactEngine::default();
        let shared = Arc::new(SharedDelayCache::default());
        let a = SharedCachedEngine::new(ExactEngine::default(), Arc::clone(&shared));
        let b = SharedCachedEngine::new(ExactEngine::default(), Arc::clone(&shared));
        let reference = plain.max_total_delay(&w).expect("engine result");
        let first = a.max_total_delay(&w).expect("engine result");
        // The second adapter hits the entry stored by the first.
        let second = b.max_total_delay(&w).expect("engine result");
        assert_eq!(first.delay, reference.delay);
        assert_eq!(second.delay, reference.delay);
        assert_eq!(a.stats().misses, 1);
        assert_eq!(b.stats().hits, 1);
        // Per-engine locals sum to the shard-side aggregate.
        let mut merged = a.stats();
        merged.merge(b.stats());
        assert_eq!(merged, shared.stats());
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn shared_cache_evicts_lru_half_per_shard() {
        // One shard with room for 4 entries: the 5th insert evicts the
        // two least-recently-used entries.
        let cache = SharedDelayCache::with_config(1, 4);
        let set = set3();
        let mk = |t: i64| WindowKey::of(&window(&set, 2, WindowCase::Nls, t));
        let bound = DelayBound {
            delay: Time::from_ticks(1),
            exact: true,
            nodes: 0,
        };
        // Distinct budgets (period 100/200/300) → distinct keys.
        let keys: Vec<WindowKey> = [101, 201, 301, 401, 501].iter().map(|&t| mk(t)).collect();
        for key in keys.iter().take(4) {
            assert_eq!(cache.insert(key.clone(), bound), 0);
        }
        // Refresh key 0 so keys 1 and 2 become the LRU half.
        assert!(cache.lookup(&keys[0]).is_some());
        assert_eq!(cache.insert(keys[4].clone(), bound), 2);
        assert_eq!(cache.len(), 3);
        assert!(cache.lookup(&keys[0]).is_some(), "recently used survives");
        assert!(cache.lookup(&keys[1]).is_none(), "LRU entry evicted");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn shared_cache_is_coherent_across_threads() {
        let set = set3();
        let shared = Arc::new(SharedDelayCache::default());
        let reference: Vec<i64> = (0..8)
            .map(|k| {
                let w = window(&set, 2, WindowCase::Nls, 101 + 100 * k);
                ExactEngine::default()
                    .max_total_delay(&w)
                    .expect("engine result")
                    .delay
                    .as_ticks()
            })
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let set = set3();
                std::thread::spawn(move || {
                    let engine = SharedCachedEngine::new(ExactEngine::default(), shared);
                    let got: Vec<i64> = (0..8)
                        .map(|k| {
                            let w = window(&set, 2, WindowCase::Nls, 101 + 100 * k);
                            engine
                                .max_total_delay(&w)
                                .expect("engine result")
                                .delay
                                .as_ticks()
                        })
                        .collect();
                    (got, engine.stats())
                })
            })
            .collect();
        let mut merged = CacheStats::default();
        for handle in handles {
            let (got, stats) = handle.join().expect("worker thread");
            assert_eq!(got, reference, "shared cache must not change bounds");
            merged.merge(stats);
        }
        // Every lookup was counted exactly once on both sides.
        assert_eq!(merged, shared.stats());
        assert_eq!(merged.hits + merged.misses, 32);
        // The first lookup of each distinct window misses; racing
        // threads may add further misses on the same key.
        assert!(merged.misses >= 8, "each distinct window misses once");
    }
}
