//! Window-level delay-bound caching.
//!
//! The hot path of every experiment is the delay-maximization call
//! [`DelayEngine::max_total_delay`]: the WCRT fixed point re-solves a
//! window per iteration, the greedy LS-marking loop re-runs the whole
//! fixed point after every promotion, and the ablation study analyzes the
//! same task set under several markings. Many of those windows are
//! *semantically identical* — the window model depends on the tentative
//! window length only through the per-task job budgets `η_j(t) + 1`, which
//! plateau between iterations — so their bounds can be memoized.
//!
//! [`CachedEngine`] wraps any [`DelayEngine`] with a [`DelayCache`]: a map
//! from a canonical [`WindowKey`] to the engine's [`DelayBound`]. The key
//! captures exactly the data a delay engine may consume (case, interval
//! count, per-task phases/budgets/markings, boundary terms) and *nothing
//! else* — task identifiers are deliberately excluded, and priorities are
//! normalized to ranks, so windows that merely relabel tasks share one
//! entry.
//!
//! ## Invalidation under LS promotions
//!
//! The greedy algorithm of Section VI flips one task `τ_j` from NLS to LS
//! per round. No explicit invalidation is needed: the `ls` marking of
//! every competing task is part of the key, so windows whose content
//! changed simply miss and are re-solved, while windows the promotion
//! cannot have influenced keep hitting. The key additionally
//! *canonicalizes* markings that are provably irrelevant: an LS flag on a
//! competing task `τ_j` only matters if `τ_j` can inflict extra delay
//! through it, i.e. if its copy-in is nonzero (urgent executions inflate
//! CPU demand by `l_j`) or some window task has strictly lower priority
//! (cancellation victims exist, rules R3/R4). A promotion of a
//! zero-copy-in, lowest-priority task therefore invalidates *no* window of
//! the other tasks — the property [`promotion_affects`] exposes to the
//! greedy loop.
//!
//! ## Determinism
//!
//! Two windows with equal keys are indistinguishable to a correct engine,
//! so serving a memoized [`DelayBound`] never changes analysis results;
//! `CachedEngine` is property-tested against its inner engine in
//! `tests/cache_consistency.rs`. The only observable difference is the
//! `nodes` effort counter of a hit (the stored value is returned).
//!
//! [`promotion_affects`]: crate::schedulability::promotion_affects

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

use pmcs_model::Time;

use crate::error::CoreError;
use crate::wcrt::{DelayBound, DelayEngine};
use crate::window::{WindowCase, WindowModel};

/// One competing task as seen by the cache key: everything a delay engine
/// may read, with the identifier dropped and the priority rank-normalized.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TaskKey {
    exec: i64,
    copy_in: i64,
    copy_out: i64,
    /// Canonicalized LS marking (see the module docs): the raw flag is
    /// kept only when it can influence the optimum.
    ls: bool,
    hp: bool,
    /// Rank of the task's priority among all priorities in the window
    /// (0 = highest). Engines compare priorities, never their raw values.
    prio_rank: u32,
    budget: u64,
}

/// Canonical content key of a [`WindowModel`].
///
/// Equal keys imply semantically identical windows: every quantity a
/// delay engine consumes is either present verbatim or derivable from the
/// key. See the module docs for the canonicalization rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowKey {
    case: WindowCase,
    n_intervals: usize,
    tasks: Vec<TaskKey>,
    exec_i: i64,
    copy_in_i: i64,
    copy_out_i: i64,
    prio_rank_i: u32,
    max_l: i64,
    max_u: i64,
}

impl WindowKey {
    /// Builds the canonical key of a window.
    pub fn of(w: &WindowModel) -> Self {
        // Rank-normalize priorities: collect every priority in the window
        // (competitors plus the task under analysis), dedupe, and replace
        // each priority by its index in the sorted list.
        let mut prios: Vec<u32> = w.tasks.iter().map(|t| t.priority.0).collect();
        prios.push(w.priority_i.0);
        prios.sort_unstable();
        prios.dedup();
        let rank = |p: u32| -> u32 {
            prios
                .binary_search(&p)
                .expect("priority present by construction") as u32
        };
        let tasks: Vec<TaskKey> = w
            .tasks
            .iter()
            .enumerate()
            .map(|(j, t)| {
                // An LS flag is engine-relevant only if the task can use
                // it: a nonzero copy-in makes urgent executions more
                // expensive than plain ones, and a strictly-lower-priority
                // window task provides a cancellation victim (rules
                // R3/R4). Otherwise canonicalize to NLS.
                let has_victim = w
                    .tasks
                    .iter()
                    .enumerate()
                    .any(|(k, v)| k != j && t.priority.is_higher_than(v.priority));
                let ls = t.ls && (t.copy_in > Time::ZERO || has_victim);
                TaskKey {
                    exec: t.exec.as_ticks(),
                    copy_in: t.copy_in.as_ticks(),
                    copy_out: t.copy_out.as_ticks(),
                    ls,
                    hp: t.hp,
                    prio_rank: rank(t.priority.0),
                    budget: t.budget,
                }
            })
            .collect();
        WindowKey {
            case: w.case,
            n_intervals: w.n_intervals,
            tasks,
            exec_i: w.exec_i.as_ticks(),
            copy_in_i: w.copy_in_i.as_ticks(),
            copy_out_i: w.copy_out_i.as_ticks(),
            prio_rank_i: rank(w.priority_i.0),
            max_l: w.max_l.as_ticks(),
            max_u: w.max_u.as_ticks(),
        }
    }
}

/// Hit/miss counters of a [`DelayCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the inner engine.
    pub misses: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or `0.0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}%)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

/// Memo of window delay bounds, keyed by [`WindowKey`].
///
/// Entries never go stale (keys are content-addressed), so the only
/// eviction is a wholesale [`clear`](DelayCache::clear) when the entry
/// budget is exceeded — a rare event that bounds memory without
/// affecting results.
#[derive(Debug, Clone)]
pub struct DelayCache {
    map: HashMap<WindowKey, DelayBound>,
    stats: CacheStats,
    max_entries: usize,
}

impl Default for DelayCache {
    fn default() -> Self {
        DelayCache::with_capacity(1 << 20)
    }
}

impl DelayCache {
    /// Creates a cache that clears itself after `max_entries` entries.
    pub fn with_capacity(max_entries: usize) -> Self {
        DelayCache {
            map: HashMap::new(),
            stats: CacheStats::default(),
            max_entries: max_entries.max(1),
        }
    }

    /// Looks up a window, counting the outcome.
    pub fn get(&mut self, key: &WindowKey) -> Option<DelayBound> {
        match self.map.get(key) {
            Some(&b) => {
                self.stats.hits += 1;
                Some(b)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a bound, clearing the map first if the budget is exhausted.
    pub fn insert(&mut self, key: WindowKey, bound: DelayBound) {
        if self.map.len() >= self.max_entries {
            self.map.clear();
        }
        self.map.insert(key, bound);
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoized windows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no window is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// A [`DelayEngine`] adapter that memoizes bounds in a [`DelayCache`].
///
/// Works with any inner engine ([`ExactEngine`](crate::ExactEngine),
/// [`MilpEngine`](crate::MilpEngine), audited or not). The cache lives
/// behind a `RefCell`, so a `CachedEngine` is single-threaded by design;
/// parallel drivers give each worker its own instance (results are
/// identical either way because keys are content-addressed).
///
/// # Example
///
/// ```
/// use pmcs_core::{analyze_task_set, CachedEngine, ExactEngine};
/// use pmcs_core::window::test_task;
/// use pmcs_model::TaskSet;
///
/// let set = TaskSet::new(vec![
///     test_task(0, 10, 2, 2, 100, 0, false),
///     test_task(1, 20, 4, 4, 200, 1, false),
/// ])?;
/// let engine = CachedEngine::new(ExactEngine::default());
/// let report = analyze_task_set(&set, &engine)?;
/// assert!(report.schedulable());
/// // The fixed point's confirming iteration re-solves a window the
/// // cache already holds.
/// assert!(engine.stats().hits > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CachedEngine<E> {
    inner: E,
    cache: RefCell<DelayCache>,
}

impl<E> CachedEngine<E> {
    /// Wraps an engine with a default-capacity cache.
    pub fn new(inner: E) -> Self {
        CachedEngine {
            inner,
            cache: RefCell::new(DelayCache::default()),
        }
    }

    /// Wraps an engine with an entry-budgeted cache.
    pub fn with_capacity(inner: E, max_entries: usize) -> Self {
        CachedEngine {
            inner,
            cache: RefCell::new(DelayCache::with_capacity(max_entries)),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Number of memoized windows.
    pub fn cached_windows(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Drops all memoized windows (counters are kept).
    pub fn clear(&self) {
        self.cache.borrow_mut().clear();
    }
}

impl<E: DelayEngine> DelayEngine for CachedEngine<E> {
    fn max_total_delay(&self, window: &WindowModel) -> Result<DelayBound, CoreError> {
        let key = WindowKey::of(window);
        if let Some(bound) = self.cache.borrow_mut().get(&key) {
            return Ok(bound);
        }
        let bound = self.inner.max_total_delay(window)?;
        self.cache.borrow_mut().insert(key, bound);
        Ok(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::window::test_task;
    use pmcs_model::{Sensitivity, TaskId, TaskSet};

    fn window(set: &TaskSet, id: u32, case: WindowCase, t: i64) -> WindowModel {
        WindowModel::build(set, TaskId(id), case, Time::from_ticks(t)).expect("task in set")
    }

    fn set3() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 200, 1, true),
            test_task(2, 30, 6, 6, 300, 2, false),
        ])
        .expect("valid set")
    }

    #[test]
    fn identical_windows_share_a_key() {
        let set = set3();
        let a = WindowKey::of(&window(&set, 1, WindowCase::Nls, 100));
        let b = WindowKey::of(&window(&set, 1, WindowCase::Nls, 100));
        assert_eq!(a, b);
    }

    #[test]
    fn window_lengths_with_equal_budgets_share_a_key() {
        let set = set3();
        // η_0(101) = η_0(140) = 2 (period 100): same budgets, same key.
        let a = WindowKey::of(&window(&set, 2, WindowCase::Nls, 101));
        let b = WindowKey::of(&window(&set, 2, WindowCase::Nls, 140));
        assert_eq!(a, b);
        // Crossing an arrival boundary changes the budgets and the key.
        let c = WindowKey::of(&window(&set, 2, WindowCase::Nls, 201));
        assert_ne!(a, c);
    }

    #[test]
    fn case_and_marking_are_part_of_the_key() {
        let set = set3();
        let nls = WindowKey::of(&window(&set, 0, WindowCase::Nls, 50));
        let ls = WindowKey::of(&window(&set, 0, WindowCase::LsCaseA, 50));
        assert_ne!(nls, ls);
        // Promoting τ2 (nonzero copy-in) changes the key of windows that
        // contain it.
        let promoted = set
            .with_sensitivity(TaskId(2), Sensitivity::Ls)
            .expect("τ2 in set");
        let after = WindowKey::of(&window(&promoted, 0, WindowCase::Nls, 50));
        assert_ne!(nls, after);
    }

    #[test]
    fn irrelevant_ls_flag_is_canonicalized_away() {
        // τ2: zero copy-in, lowest priority → its LS flag cannot matter
        // in τ0's window.
        let tasks = vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 200, 1, false),
            test_task(2, 30, 0, 6, 300, 2, false),
        ];
        let set = TaskSet::new(tasks).expect("valid set");
        let before = WindowKey::of(&window(&set, 0, WindowCase::Nls, 50));
        let promoted = set
            .with_sensitivity(TaskId(2), Sensitivity::Ls)
            .expect("τ2 in set");
        let after = WindowKey::of(&window(&promoted, 0, WindowCase::Nls, 50));
        assert_eq!(before, after, "zero-copy-in lowest-priority LS flag");
    }

    #[test]
    fn priorities_are_rank_normalized() {
        // Two sets identical up to a uniform priority shift share keys.
        let mk = |base: u32| {
            TaskSet::new(vec![
                test_task(0, 10, 2, 2, 100, base, false),
                test_task(1, 20, 4, 4, 200, base + 7, false),
            ])
            .expect("valid set")
        };
        let a = WindowKey::of(&window(&mk(0), 1, WindowCase::Nls, 60));
        let b = WindowKey::of(&window(&mk(5), 1, WindowCase::Nls, 60));
        assert_eq!(a, b);
    }

    #[test]
    fn cached_engine_hits_and_agrees() {
        let set = set3();
        let w = window(&set, 2, WindowCase::Nls, 150);
        let plain = ExactEngine::default();
        let cached = CachedEngine::new(ExactEngine::default());
        let reference = plain.max_total_delay(&w).expect("engine result");
        let first = cached.max_total_delay(&w).expect("engine result");
        let second = cached.max_total_delay(&w).expect("engine result");
        assert_eq!(first.delay, reference.delay);
        assert_eq!(second.delay, reference.delay);
        assert_eq!(first.exact, second.exact);
        let stats = cached.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cached.cached_windows(), 1);
    }

    #[test]
    fn capacity_exhaustion_clears_but_stays_correct() {
        let set = set3();
        let cached = CachedEngine::with_capacity(ExactEngine::default(), 1);
        let w1 = window(&set, 2, WindowCase::Nls, 101);
        let w2 = window(&set, 2, WindowCase::Nls, 250);
        let b1 = cached.max_total_delay(&w1).expect("engine result");
        let _ = cached.max_total_delay(&w2).expect("engine result");
        // w1 was evicted by the clear; re-solving must still agree.
        let again = cached.max_total_delay(&w1).expect("engine result");
        assert_eq!(b1.delay, again.delay);
        assert!(cached.cached_windows() <= 1);
    }

    #[test]
    fn stats_merge_and_display() {
        let mut a = CacheStats { hits: 3, misses: 1 };
        a.merge(CacheStats { hits: 1, misses: 3 });
        assert_eq!(a, CacheStats { hits: 4, misses: 4 });
        assert!(a.to_string().contains("50.0%"));
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
