//! Error types for the analysis crate.

use std::error::Error;
use std::fmt;

use pmcs_milp::MilpError;
use pmcs_model::{ModelError, TaskId};

/// Errors produced by the schedulability analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Underlying model error (unknown task, invalid set, …).
    Model(ModelError),
    /// The MILP backend failed.
    Milp(MilpError),
    /// The fixed-point iteration failed to converge within the iteration
    /// cap without proving a deadline miss (should not happen for sane
    /// task parameters).
    NoConvergence {
        /// Task under analysis.
        task: TaskId,
        /// Iterations performed.
        iterations: usize,
    },
    /// The specialized engine exhausted its node budget and the caller
    /// requested strict (non-approximate) results.
    BudgetExhausted {
        /// Nodes explored before giving up.
        nodes: u64,
    },
    /// The exact-arithmetic audit refuted a MILP solver answer
    /// (see [`pmcs_milp::audit`]): the floating-point result is provably
    /// wrong and must not be used as a WCRT bound.
    AuditFailed {
        /// Name of the first audit check that failed.
        check: &'static str,
        /// Explanation produced by the audit layer.
        detail: String,
    },
    /// Certificate emission failed: the recording solve disagreed with the
    /// production engine, a proof tree could not be constructed within its
    /// budget, or the model uses a construct the certificate format cannot
    /// express. Emission failures never affect the analysis verdict — only
    /// whether a proof ships alongside it.
    Certification {
        /// Explanation.
        detail: String,
    },
    /// An [`AnalysisSession`](crate::AnalysisSession) with a configured
    /// task capacity rejected an admit that would exceed it. The session
    /// state is unchanged.
    SessionCapacity {
        /// The configured capacity.
        capacity: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Milp(e) => write!(f, "milp solver error: {e}"),
            CoreError::NoConvergence { task, iterations } => write!(
                f,
                "response-time iteration for {task} did not converge after {iterations} rounds"
            ),
            CoreError::BudgetExhausted { nodes } => {
                write!(f, "search budget exhausted after {nodes} nodes")
            }
            CoreError::AuditFailed { check, detail } => {
                write!(
                    f,
                    "milp audit refuted the solver answer ({check}): {detail}"
                )
            }
            CoreError::Certification { detail } => {
                write!(f, "certificate emission failed: {detail}")
            }
            CoreError::SessionCapacity { capacity } => {
                write!(f, "session is at its task capacity ({capacity})")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Milp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<MilpError> for CoreError {
    fn from(e: MilpError) -> Self {
        CoreError::Milp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(ModelError::EmptyTaskSet);
        assert!(e.to_string().contains("model error"));
        assert!(Error::source(&e).is_some());

        let e = CoreError::NoConvergence {
            task: TaskId(3),
            iterations: 100,
        };
        assert!(e.to_string().contains("τ3"));
        assert!(Error::source(&e).is_none());

        let e = CoreError::AuditFailed {
            check: "primal-feasibility",
            detail: "constraint #2 violated".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("refuted") && text.contains("primal-feasibility"));
    }

    #[test]
    fn conversions() {
        let e: CoreError = MilpError::Infeasible.into();
        assert_eq!(e, CoreError::Milp(MilpError::Infeasible));
    }
}
