//! Specialized exact engine for the delay-maximization problem.
//!
//! The MILP of Section V has a single source of combinatorial freedom: the
//! assignment of task executions (plain or urgent) to scheduling intervals.
//! Everything else follows deterministically —
//!
//! * the DMA copy-in of interval `I_k` is the copy-in of the task executing
//!   in `I_{k+1}` (Constraint 1), or a *canceled* copy-in when that
//!   execution is urgent or absent (Constraints 6, 8), for which a
//!   maximizing adversary always picks the largest eligible `l_j`;
//! * the DMA copy-out of `I_k` is the copy-out of the task executed in
//!   `I_{k-1}` (Constraints 2, 11);
//! * the interval length is `Δ_k = max(Δ^cpu_k, Δ^in_k + Δ^out_k)` (R6).
//!
//! Because `Δ_k` couples only *adjacent* slots, the optimum is computed by
//! **memoized dynamic programming** over states
//! `(slot, remaining job budgets, last two slot decisions)` — each state's
//! suffix value is exact and shared across the exponentially many
//! interleavings that reach it. This solves the same optimization as
//! [`MilpEngine`](crate::MilpEngine) orders of magnitude faster; the
//! equivalence of the two engines is property-tested in
//! `tests/engine_equivalence.rs`.
//!
//! ## Scratch reuse
//!
//! The engine is called millions of times per sweep (one call per
//! fixed-point iteration per task per set). To keep the per-call cost at
//! the DP itself, the engine holds its working memory — the memo table and
//! the per-task vectors — in a reusable [`Scratch`] behind a `RefCell`,
//! clearing instead of reallocating between calls. The memo key is a
//! `u128` packed with *adaptive* field widths, so windows with many tasks
//! or large job budgets still memoize instead of silently degrading to the
//! node-budget backstop (the old fixed 64-bit packing gave up beyond
//! 9 tasks or budgets over 31).

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use pmcs_model::Time;

/// Multiplicative hasher for the dense 128-bit memo keys (the default
/// SipHash costs more than the DP transition itself).
#[derive(Debug, Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.write_u64(i as u64);
        self.write_u64((i >> 64) as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type Memo = HashMap<u128, i64, BuildHasherDefault<KeyHasher>>;

use crate::error::CoreError;
use crate::wcrt::{DelayBound, DelayEngine};
use crate::window::WindowModel;

pub mod bnb;

/// One slot decision in the execution sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    /// No task executes in the interval (CPU idles, rule R5).
    Idle,
    /// Task `task` executes; `urgent` selects the CPU-copy-in mode (R5).
    Run { task: usize, urgent: bool },
}

impl Choice {
    /// Compact encoding for memo keys: 0 = idle, else `1 + 2·task + urgent`.
    #[inline]
    fn encode(self) -> u128 {
        match self {
            Choice::Idle => 0,
            Choice::Run { task, urgent } => 1 + 2 * task as u128 + u128::from(urgent),
        }
    }

    /// The same encoding as a `u64` (the certificate wire encoding).
    #[inline]
    fn code(self) -> u64 {
        self.encode() as u64
    }
}

/// Reusable per-engine working memory: cleared, never reallocated.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    memo: Memo,
    exec: Vec<i64>,
    cin: Vec<i64>,
    cout: Vec<i64>,
    ls: Vec<bool>,
    hp: Vec<bool>,
    budget: Vec<u64>,
    max_lower_hp: Vec<Option<i64>>,
    max_lower_i0: Vec<Option<i64>>,
    /// Per-task bit width of the budget field in the packed memo key.
    budget_bits: Vec<u32>,
    /// Nearest lower-indexed task of the same interchangeability class
    /// (identical shape and protocol flags), if any. Used for symmetry
    /// breaking: a task is only placeable once every lower-indexed
    /// classmate's budget is exhausted.
    class_prev: Vec<Option<usize>>,
}

impl Scratch {
    fn reset(&mut self, m: usize) {
        self.memo.clear();
        self.exec.clear();
        self.cin.clear();
        self.cout.clear();
        self.ls.clear();
        self.hp.clear();
        self.budget.clear();
        self.max_lower_hp.clear();
        self.max_lower_hp.resize(m, None);
        self.max_lower_i0.clear();
        self.max_lower_i0.resize(m, None);
        self.budget_bits.clear();
        self.class_prev.clear();
    }
}

/// Exact combinatorial engine (default choice for experiments).
///
/// On window sizes produced by the paper's workloads the DP completes in
/// microseconds-to-milliseconds. If the memo budget is ever exhausted the
/// engine returns a coarse but **safe** upper bound and flags the result
/// as inexact.
///
/// The engine owns reusable scratch memory, so it is cheap to call in a
/// tight loop but **not** `Sync`: parallel drivers give each worker its
/// own engine (cloning creates an independent scratch).
#[derive(Debug)]
pub struct ExactEngine {
    max_states: usize,
    scratch: RefCell<Scratch>,
    /// Cumulative search nodes across every solve (reported as `bb_nodes`
    /// in [`ExactEngine::solver_stats`] — the DP's branch points play the
    /// same role as B&B nodes in the MILP pipeline).
    nodes: std::cell::Cell<u64>,
    /// Solves that exhausted a search budget and degraded to the safe
    /// fallback cap (reported as `dp_fallbacks`).
    fallbacks: std::cell::Cell<u64>,
    /// Optional branch-and-bound rescue for windows the DP cannot
    /// memoize; see [`ExactEngine::with_branch_and_bound`].
    bnb: Option<crate::bnb::BnbConfig>,
    /// `false` disables the interchangeability classes (differential
    /// testing only); see [`ExactEngine::without_symmetry_breaking`].
    symmetry: bool,
    /// Cumulative effort of the branch-and-bound rescue path.
    bnb_stats: RefCell<pmcs_milp::SolverStats>,
}

/// Prints the budget-exhaustion warning once per process; every further
/// occurrence is only counted in [`SolverStats::dp_fallbacks`]
/// (`pmcs_milp::SolverStats`).
fn warn_fallback_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "pmcs-core: an exact-DP solve exhausted its search budget; \
             using the safe fallback cap instead (counted in \
             SolverStats::dp_fallbacks; this warning prints once per \
             process)"
        );
    });
}

/// Default memoization-entry budget of [`ExactEngine`] (the solver
/// limit: roughly bounds per-window memory and time).
pub const DEFAULT_MAX_STATES: usize = 4_000_000;

impl Default for ExactEngine {
    fn default() -> Self {
        ExactEngine::with_max_states(DEFAULT_MAX_STATES)
    }
}

impl Clone for ExactEngine {
    fn clone(&self) -> Self {
        let mut e = ExactEngine::with_max_states(self.max_states);
        e.bnb = self.bnb.clone();
        e.symmetry = self.symmetry;
        e
    }
}

impl ExactEngine {
    /// Creates an engine with the default state budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with an explicit memoization-entry budget for the
    /// DP (roughly bounds memory and time; a window normally needs a few
    /// thousand states).
    pub fn with_max_states(max_states: usize) -> Self {
        ExactEngine {
            max_states,
            scratch: RefCell::new(Scratch::default()),
            nodes: std::cell::Cell::new(0),
            fallbacks: std::cell::Cell::new(0),
            bnb: None,
            bnb_stats: RefCell::new(pmcs_milp::SolverStats::default()),
            symmetry: true,
        }
    }

    /// Disables symmetry-aware pruning: every task becomes its own
    /// interchangeability class, so the DP explores all member orderings
    /// of equal-shape tasks and keys its memo on raw per-task budgets.
    /// The optimum is unchanged — this is the *unpruned reference* for
    /// differential tests — but symmetric windows blow up combinatorially,
    /// so production stacks must never use it.
    pub fn without_symmetry_breaking(mut self) -> Self {
        self.symmetry = false;
        self
    }

    /// Enables the branch-and-bound rescue path: windows whose DP search
    /// exceeds its memoization budget are re-solved exactly by a
    /// depth-first branch-and-bound with admissible suffix bounds, an
    /// optional LP-relaxation bounding stage, and (with `jobs > 1`)
    /// parallel subtree workers sharing an atomic incumbent. Only when
    /// that search *also* exhausts its node budget does the engine fall
    /// back to the coarse safe cap.
    ///
    /// Note that branch-and-bound results are exact but **not
    /// certifiable**: certificate emission replays the memoized DP table,
    /// which by construction does not exist for these windows. Drivers
    /// that emit certificates must leave this path disabled.
    pub fn with_branch_and_bound(mut self, cfg: crate::bnb::BnbConfig) -> Self {
        self.bnb = Some(cfg);
        self
    }

    /// The memoization-entry budget.
    pub fn max_states(&self) -> usize {
        self.max_states
    }

    /// Cumulative solver effort across every solve so far: the DP search
    /// nodes plus any branch-and-bound rescue effort, surfaced in the same
    /// [`SolverStats`](pmcs_milp::SolverStats) shape the MILP engines
    /// report so engine stacks aggregate uniformly.
    pub fn solver_stats(&self) -> pmcs_milp::SolverStats {
        let mut stats = pmcs_milp::SolverStats {
            bb_nodes: self.nodes.get(),
            dp_fallbacks: self.fallbacks.get(),
            ..pmcs_milp::SolverStats::default()
        };
        stats.merge(*self.bnb_stats.borrow());
        stats
    }

    /// Solves `w` while recording the full memo table and an optimal
    /// placement witness, for certificate emission. Returns `None` when
    /// the search exceeds its budgets (the caller then emits a safe-cap
    /// certificate instead of an exact one).
    ///
    /// The recording search uses an explicit `(k, prev, prev2, budgets)`
    /// map as its memo (no 128-bit packing limit), bounded by the same
    /// `max_states` entry budget and node backstop as the production DP.
    pub(crate) fn solve_recorded(&self, w: &WindowModel) -> Option<RecordedSolve> {
        let mut scratch = self.scratch.borrow_mut();
        let mut search = Search::new(w, self.max_states, &mut scratch);
        if !self.symmetry {
            search.disable_symmetry();
        }
        if search.n < 2 {
            return Some(RecordedSolve {
                value: search.c_i.max(search.max_l + search.max_u),
                states: Vec::new(),
                witness: Vec::new(),
            });
        }
        if search.hopeless(true) {
            return None;
        }
        let mut rec: RecMemo = HashMap::new();
        let value = search.dp_rec(0, Choice::Idle, Choice::Idle, &mut rec);
        self.nodes.set(self.nodes.get() + search.nodes);
        if search.aborted {
            return None;
        }
        let witness = search.traceback(&rec, value)?;
        let states = rec
            .into_iter()
            .map(|((k, prev, prev2, budgets), value)| RecordedState {
                k,
                prev,
                prev2,
                budgets,
                value,
            })
            .collect();
        Some(RecordedSolve {
            value,
            states,
            witness,
        })
    }
}

/// One memoized DP state captured by [`ExactEngine::solve_recorded`].
/// Choices use the stable wire encoding `0 = idle, 1 + 2·task + urgent`.
#[derive(Debug, Clone)]
pub(crate) struct RecordedState {
    pub k: usize,
    pub prev: u64,
    pub prev2: u64,
    pub budgets: Vec<u64>,
    pub value: i64,
}

/// A recorded solve: the exact optimum, every memoized state, and one
/// placement (choice codes for slots `0 … N-2`) attaining the optimum.
#[derive(Debug, Clone)]
pub(crate) struct RecordedSolve {
    pub value: i64,
    pub states: Vec<RecordedState>,
    pub witness: Vec<u64>,
}

type RecMemo = HashMap<(usize, u64, u64, Vec<u64>), i64>;

impl DelayEngine for ExactEngine {
    fn max_total_delay(&self, w: &WindowModel) -> Result<DelayBound, CoreError> {
        let mut scratch = self.scratch.borrow_mut();
        let mut search = Search::new(w, self.max_states, &mut scratch);
        if !self.symmetry {
            search.disable_symmetry();
        }
        let outcome = search.run();
        self.nodes.set(self.nodes.get() + search.nodes);
        match outcome {
            Some(best) => Ok(DelayBound {
                delay: Time::from_ticks(best),
                exact: true,
                nodes: search.nodes,
            }),
            None => {
                let dp_nodes = search.nodes;
                let fallback = search.fallback_bound();
                drop(scratch);
                if let Some(cfg) = &self.bnb {
                    if let Some(run) = crate::bnb::solve_window(w, cfg) {
                        self.nodes.set(self.nodes.get() + run.stats.bb_nodes);
                        self.bnb_stats.borrow_mut().merge(run.stats);
                        return Ok(DelayBound {
                            delay: Time::from_ticks(run.value),
                            exact: true,
                            nodes: dp_nodes + run.stats.bb_nodes,
                        });
                    }
                }
                self.fallbacks.set(self.fallbacks.get() + 1);
                warn_fallback_once();
                Ok(DelayBound {
                    delay: Time::from_ticks(fallback),
                    exact: false,
                    nodes: dp_nodes,
                })
            }
        }
    }
}

/// Minimal bit width of an unsigned value (at least 1).
#[inline]
fn bit_width(v: u64) -> u32 {
    (u64::BITS - v.leading_zeros()).max(1)
}

/// Node-budget backstop for instances too large to memoize.
const NODE_BUDGET: u64 = 100_000_000;

pub(crate) struct Search<'a> {
    /// `N_i(t)`.
    n: usize,
    s: &'a mut Scratch,
    /// Largest copy-in among cancellable hp tasks / among all cancellable
    /// tasks of `I_0` (free cancellations, rule R3 gating included).
    max_cancel_hp: i64,
    max_cancel_i0: i64,
    max_l: i64,
    max_u: i64,
    l_i: i64,
    c_i: i64,
    last_lp_exec: usize,
    /// Total job budget still unplaced (Σ budgets); tracked so the DP can
    /// detect slots that must stay idle (more slots than jobs).
    remaining_budget: u64,
    /// Σ budgets of lower-priority tasks still unplaced. Past the lp
    /// placement region (Constraints 3/14) these jobs can never be spent,
    /// so the idle-slot gate compares slots against
    /// `remaining_budget − remaining_lp` instead.
    remaining_lp: u64,
    max_states: usize,
    nodes: u64,
    aborted: bool,
    /// `false` when the packed key would exceed 128 bits; the DP then runs
    /// unmemoized until the node budget trips.
    key_feasible: bool,
    /// Bit width of the slot-index field of the packed key.
    k_bits: u32,
    /// Bit width of each choice field of the packed key.
    c_bits: u32,
}

impl<'a> Search<'a> {
    fn new(w: &WindowModel, max_states: usize, scratch: &'a mut Scratch) -> Self {
        let m = w.tasks.len();
        scratch.reset(m);
        for t in &w.tasks {
            scratch.exec.push(t.exec.as_ticks());
            scratch.cin.push(t.copy_in.as_ticks());
            scratch.cout.push(t.copy_out.as_ticks());
            scratch.ls.push(t.ls);
            scratch.hp.push(t.hp);
            scratch.budget.push(t.budget);
        }

        let max_cancel_hp = (0..m)
            .filter(|&j| scratch.hp[j] && w.cancel_triggerable(j))
            .map(|j| scratch.cin[j])
            .max()
            .unwrap_or(0);
        let max_cancel_i0 = (0..m)
            .filter(|&j| w.cancel_triggerable(j))
            .map(|j| scratch.cin[j])
            .max()
            .unwrap_or(0);

        for j in 0..m {
            for k in 0..m {
                if k == j || !w.cancellation_enables(k, j) {
                    continue;
                }
                if scratch.hp[k] {
                    scratch.max_lower_hp[j] =
                        Some(scratch.max_lower_hp[j].unwrap_or(0).max(scratch.cin[k]));
                }
                scratch.max_lower_i0[j] =
                    Some(scratch.max_lower_i0[j].unwrap_or(0).max(scratch.cin[k]));
            }
        }

        // A task whose LS marking can never be exercised (zero copy-in and
        // no cancellation victim) behaves exactly like an NLS task; drop
        // the flag so the DP skips its urgent twin states and the fallback
        // bound does not charge phantom cancellations. This mirrors the
        // canonicalization of `cache::WindowKey`.
        for j in 0..m {
            if scratch.ls[j] && scratch.cin[j] == 0 && scratch.max_lower_i0[j].is_none() {
                scratch.ls[j] = false;
            }
        }

        // Interchangeability classes (symmetry breaking). Two tasks whose
        // shapes and protocol flags agree — and, for LS tasks, whose
        // cancellation-victim maxima agree — are exchangeable: swapping
        // their jobs in any placement permutes identical Δ contributions.
        // The DP therefore explores only the canonical order that consumes
        // the lower-indexed member first (see `placement_ok`), collapsing
        // the `Π (b_c + 1)` per-member budget lattice of a class to the
        // `Σ b_c + 1` totals that actually matter. Computed after the
        // LS-inertness pass above so demoted tasks can join NLS classes.
        for j in 0..m {
            let prev = (0..j).rev().find(|&p| {
                scratch.exec[p] == scratch.exec[j]
                    && scratch.cin[p] == scratch.cin[j]
                    && scratch.cout[p] == scratch.cout[j]
                    && scratch.hp[p] == scratch.hp[j]
                    && scratch.ls[p] == scratch.ls[j]
                    && (!scratch.ls[j]
                        || (scratch.max_lower_hp[p] == scratch.max_lower_hp[j]
                            && scratch.max_lower_i0[p] == scratch.max_lower_i0[j]))
            });
            scratch.class_prev.push(prev);
        }

        // Adaptive packing of `(k, prev, prev2, budgets)` into a `u128`
        // memo key: each field gets exactly the bits its range needs.
        let k_bits = bit_width(w.n() as u64);
        let c_bits = bit_width(2 * m as u64 + 1);
        let mut total = k_bits + 2 * c_bits;
        for &b in &scratch.budget {
            let bits = bit_width(b);
            scratch.budget_bits.push(bits);
            total += bits;
        }
        let key_feasible = total <= 128;
        let remaining_budget: u64 = scratch.budget.iter().sum();
        let remaining_lp: u64 = (0..m)
            .filter(|&j| !scratch.hp[j])
            .map(|j| scratch.budget[j])
            .sum();

        Search {
            n: w.n(),
            s: scratch,
            max_cancel_hp,
            max_cancel_i0,
            max_l: w.max_l.as_ticks(),
            max_u: w.max_u.as_ticks(),
            l_i: w.copy_in_i.as_ticks(),
            c_i: w.exec_i.as_ticks(),
            last_lp_exec: w.last_lp_exec_interval(),
            remaining_budget,
            remaining_lp,
            max_states,
            nodes: 0,
            aborted: false,
            key_feasible,
            k_bits,
            c_bits,
        }
    }

    /// Dissolves the interchangeability classes: every task becomes its
    /// own class, removing the canonical-order admission rule and the
    /// class-level budget collapse in the memo key. The search then
    /// enumerates exactly the unpruned state space (the differential
    /// reference for [`ExactEngine::without_symmetry_breaking`]).
    fn disable_symmetry(&mut self) {
        for p in self.s.class_prev.iter_mut() {
            *p = None;
        }
    }

    #[inline]
    fn cpu(&self, c: Choice) -> i64 {
        match c {
            Choice::Idle => 0,
            Choice::Run { task, urgent } => {
                if urgent {
                    self.s.cin[task] + self.s.exec[task]
                } else {
                    self.s.exec[task]
                }
            }
        }
    }

    #[inline]
    fn out_of(&self, c: Choice) -> i64 {
        match c {
            Choice::Idle => 0,
            Choice::Run { task, .. } => self.s.cout[task],
        }
    }

    /// Copy-out of interval `k`: the copy-out of the task executed in
    /// `I_{k-1}` (`prev2` when scoring `Δ_{k-1}`); `max_u` at the window
    /// boundary (Constraint 12).
    #[inline]
    fn out_at(&self, k: usize, before: Choice) -> i64 {
        if k == 0 {
            self.max_u
        } else {
            self.out_of(before)
        }
    }

    /// Best free cancellation (no urgent execution following) in `slot`.
    #[inline]
    fn free_cancel(&self, slot: usize) -> i64 {
        if slot == 0 {
            self.max_cancel_i0
        } else {
            self.max_cancel_hp
        }
    }

    /// Mandatory cancellation enabling an urgent execution of `task`
    /// (Constraint 8); `None` if no lower-priority victim exists.
    #[inline]
    fn urgent_cancel(&self, slot: usize, task: usize) -> Option<i64> {
        if slot == 0 {
            self.s.max_lower_i0[task]
        } else {
            self.s.max_lower_hp[task]
        }
    }

    /// DMA copy-in time of slot `k` given the next slot's choice; `None`
    /// when the combination is infeasible.
    #[inline]
    fn in_at(&self, k: usize, next: Choice) -> Option<i64> {
        match next {
            Choice::Run {
                task,
                urgent: false,
            } => Some(self.s.cin[task]),
            Choice::Run { task, urgent: true } => self.urgent_cancel(k, task),
            Choice::Idle => Some(self.free_cancel(k)),
        }
    }

    fn placement_ok(&self, k: usize, task: usize, urgent: bool) -> bool {
        if !self.s.hp[task] && k > self.last_lp_exec {
            return false; // Constraints 3 / 14.
        }
        if urgent && !self.s.ls[task] {
            return false; // Constraint 4.
        }
        if urgent && k > 0 && self.urgent_cancel(k - 1, task).is_none() {
            return false; // Constraint 8 with an empty victim set.
        }
        // Symmetry breaking: within an interchangeability class, jobs are
        // consumed in canonical (index) order. Any placement violating the
        // order maps to one respecting it by permuting the identical
        // classmates, so no optimum is lost. A blocked task never shrinks
        // the candidate set to empty: its lowest-indexed classmate with
        // remaining budget passes the same shape-determined checks.
        if self.s.class_prev[task].is_some_and(|p| self.s.budget[p] > 0) {
            return false;
        }
        true
    }

    /// Job budget still spendable at slot `k`: lower-priority budgets stop
    /// counting past their placement region (Constraints 3/14).
    #[inline]
    fn usable_budget(&self, k: usize) -> u64 {
        if k > self.last_lp_exec {
            self.remaining_budget - self.remaining_lp
        } else {
            self.remaining_budget
        }
    }

    /// Canonical form of task `j`'s remaining budget at slot `k` — the
    /// memo coordinate. Two reductions merge states with provably equal
    /// suffix optima:
    ///
    /// * **evaporation**: a lower-priority budget is dead weight once the
    ///   placement region is past (Constraints 3/14) — record it as 0;
    /// * **slot capping**: at most `N−1−k` more placements can happen, so
    ///   budgets above that are indistinguishable — cap them. Capping
    ///   commutes with the DP transition (both sides of the cap decrement
    ///   together) and preserves candidate positivity while slots remain.
    #[inline]
    fn canon_budget(&self, j: usize, k: usize) -> u64 {
        if !self.s.hp[j] && k > self.last_lp_exec {
            return 0;
        }
        self.s.budget[j].min((self.n - 1 - k) as u64)
    }

    /// Canonical budget vector at slot `k` (allocating; recording paths
    /// only).
    fn canon_vec(&self, k: usize) -> Vec<u64> {
        (0..self.s.budget.len())
            .map(|j| self.canon_budget(j, k))
            .collect()
    }

    fn run(&mut self) -> Option<i64> {
        if self.n < 2 {
            return Some(self.c_i.max(self.max_l + self.max_u));
        }
        if self.hopeless(self.key_feasible) {
            self.aborted = true;
            return None;
        }
        let v = self.dp(0, Choice::Idle, Choice::Idle);
        if self.aborted {
            None
        } else {
            Some(v)
        }
    }

    /// A-priori abort gate: `true` when a certified lower bound on the
    /// states a completed DP run must memoize already exceeds the search
    /// budget, so running the search could only burn the node budget
    /// before degrading to the fallback anyway. With `memoized` the
    /// threshold is the memo-entry budget; without (the packed key does
    /// not fit in 128 bits) every distinct state costs at least one node,
    /// so the node backstop is the binding budget.
    fn hopeless(&self, memoized: bool) -> bool {
        let threshold = if memoized {
            self.max_states as u64
        } else {
            NODE_BUDGET
        };
        self.min_states_lower_bound(threshold) >= threshold
    }

    /// Certified lower bound (saturating) on the number of distinct
    /// `(slot, prev, prev2, canonical budgets)` states a completed DP run
    /// visits and memoizes.
    ///
    /// Construction: consider only higher-priority interchangeability
    /// classes with total budget `B_c`, and every consumption vector `x`
    /// (`0 ≤ x_c ≤ B_c`) with `t = Σ x_c ≤ S` where
    /// `S = min(N−2, N−1−max_c B_c)`. All-run prefixes are never gated —
    /// hp placements are unconditional candidates, constrained only by
    /// the within-class consumption order — so for every `x` with `t ≥ 2`
    /// and every **ordered class pair** `(a, b)` with a job of `a`
    /// placeable second-to-last and a job of `b` last (`x_a, x_b ≥ 1`;
    /// `x_a ≥ 2` when `a = b`), some explored prefix consumes exactly `x`
    /// and ends `…, a, b`. Each such `(x, a, b)` is a distinct memoized
    /// state: the budgets determine `x` (within-class order is forced, so
    /// per-task budgets follow from per-class counts), and `(prev, prev2)`
    /// determine `(b, a)`. Slot capping is provably inactive
    /// (`N−1−k ≥ N−1−S ≥ max_c B_c`) and evaporation does not apply to hp
    /// tasks, so canonicalization collapses none of them.
    ///
    /// When idling is admissible at every interior slot
    /// (`max_cancel_i0 > 0` and `max_cancel_hp > 0` keep the idle-useful
    /// gate open), a prefix with `t ≥ 3` placements can additionally park
    /// idles between the first placement and the final `a, b`, reaching
    /// every slot `k ∈ [t, S]` with the same `(prev, prev2, budgets)` —
    /// `S + 1 − t` further distinct states each.
    ///
    /// The count is evaluated by per-class convolution per ordered pair,
    /// `O(C³·N)` for `C` classes; every clamp is downward (values
    /// saturate at `LIMIT`, which is monotone and 1-Lipschitz under the
    /// windowed prefix-sum differences), so the result never exceeds the
    /// true state count. The cheap short-circuit below the threshold
    /// returns an *over*-approximation instead — callers only compare
    /// against `threshold`, and a value below it cannot trip the gate.
    fn min_states_lower_bound(&self, threshold: u64) -> u64 {
        let m = self.s.exec.len();
        // Class roots and per-class hp budgets.
        let mut root = vec![0usize; m];
        let mut per_root = vec![0u64; m];
        for j in 0..m {
            root[j] = match self.s.class_prev[j] {
                Some(p) => root[p],
                None => j,
            };
            if self.s.hp[j] {
                per_root[root[j]] += self.s.budget[j];
            }
        }
        let classes: Vec<u64> = (0..m)
            .filter(|&j| root[j] == j && self.s.hp[j] && per_root[j] > 0)
            .map(|j| per_root[j])
            .collect();
        let Some(&bmax) = classes.iter().max() else {
            return 1;
        };
        let s_total = (self.n as i64 - 2).min(self.n as i64 - 1 - bmax as i64);
        if s_total <= 0 {
            return 1;
        }
        let s_total = s_total as usize;
        let c = classes.len() as u64;
        let spread_ok = self.max_cancel_i0 > 0 && self.max_cancel_hp > 0;
        let spread_max = if spread_ok { s_total as u64 } else { 1 };
        // Cheap over-approximation (vectors × ordered pairs × slots)
        // short-circuits the common case; below the threshold it cannot
        // trip the caller's gate.
        let product = classes
            .iter()
            .try_fold(1u64, |acc, &b| acc.checked_mul(b + 1))
            .unwrap_or(u64::MAX)
            .saturating_mul(c * c + 1)
            .saturating_mul(spread_max);
        if product < threshold {
            return product.max(1);
        }
        const LIMIT: u64 = 1 << 40;
        // f[t] = number of consumption vectors with Σx = t under `budgets`,
        // clamped at LIMIT (downward, so differences stay lower bounds).
        let count = |budgets: &[u64], cap: usize| -> Vec<u64> {
            let mut f = vec![0u64; cap + 1];
            f[0] = 1;
            let mut pre = vec![0u64; cap + 2];
            for &b in budgets {
                for t in 0..=cap {
                    pre[t + 1] = (pre[t] + f[t]).min(LIMIT);
                }
                let width = b.min(cap as u64) as usize;
                for t in 0..=cap {
                    f[t] = (pre[t + 1] - pre[t.saturating_sub(width)]).min(LIMIT);
                }
            }
            f
        };
        if s_total < 2 {
            // Too short for a pinned (prev, prev2) tail; fall back to one
            // state per consumption vector.
            return count(&classes, s_total)
                .iter()
                .fold(0u64, |acc, &v| (acc + v).min(LIMIT));
        }
        // The root plus the C single-placement states at slot 1.
        let mut total: u64 = 1 + c;
        let cap = s_total - 2;
        let mut work = classes.clone();
        for a in 0..classes.len() {
            for b in 0..classes.len() {
                if a == b && classes[a] < 2 {
                    continue;
                }
                work.copy_from_slice(&classes);
                work[a] -= 1;
                work[b] -= 1;
                let f = count(&work, cap);
                for (rest, &v) in f.iter().enumerate() {
                    let t = rest + 2;
                    let slots = if spread_ok && t >= 3 {
                        (s_total + 1 - t) as u64
                    } else {
                        1
                    };
                    total = (total + v.saturating_mul(slots).min(LIMIT)).min(LIMIT);
                }
                if total >= threshold {
                    return total;
                }
            }
        }
        total
    }

    /// Exact maximum of `Δ_{k-1} + … + Δ_{N-1}` over all legal completions
    /// of slots `k … N-2`, given the previous two slot decisions.
    fn dp(&mut self, k: usize, prev: Choice, prev2: Choice) -> i64 {
        if self.aborted {
            return 0;
        }
        self.nodes += 1;
        if self.nodes > NODE_BUDGET {
            // Backstop for instances too large to memoize.
            self.aborted = true;
            return 0;
        }

        if k == self.n - 1 {
            return self.terminal_value(prev, prev2);
        }

        let key = self.memo_key(k, prev, prev2);
        if let Some(key) = key {
            if let Some(&v) = self.s.memo.get(&key) {
                return v;
            }
        }

        let mut best = i64::MIN;
        let mut any_candidate = false;
        let m = self.s.exec.len();
        for task in 0..m {
            if self.s.budget[task] == 0 {
                continue;
            }
            for urgent in [false, true] {
                if urgent && !self.s.ls[task] {
                    continue;
                }
                if !self.placement_ok(k, task, urgent) {
                    continue;
                }
                let cand = Choice::Run { task, urgent };
                let Some(d) = self.score(k, prev, prev2, cand) else {
                    continue;
                };
                any_candidate = true;
                self.s.budget[task] -= 1;
                self.remaining_budget -= 1;
                self.remaining_lp -= u64::from(!self.s.hp[task]);
                let v = d + self.dp(k + 1, cand, prev);
                self.s.budget[task] += 1;
                self.remaining_budget += 1;
                self.remaining_lp += u64::from(!self.s.hp[task]);
                best = best.max(v);
            }
        }
        // Idling is dominated by placing a job (exchange argument: moving
        // a job that would otherwise stay unplaced into the idle slot only
        // grows Δ terms) EXCEPT when (a) a free cancellation can charge
        // the preceding DMA slot with a copy-in larger than any placeable
        // job's, or (b) the window has more slots left than *spendable*
        // jobs (stranded lower-priority budgets excluded) — an idle slot
        // is then inevitable and *where* it falls matters, because an
        // idle slot's DMA still carries the copy-in of the next slot's
        // job (the standalone copy-in interval of a blocking lp job: CPU
        // idle, Δ_k = l_j + copy-out, execution following in I_{k+1}).
        // When neither holds every spendable job fits in the remaining
        // slots and no free cancellation pays: each idle-containing
        // completion is weakly dominated by the no-idle completion that
        // pulls the later jobs forward, so the idle branch is pruned.
        let idle_useful = k >= 1 && self.free_cancel(k - 1) > 0;
        let surplus_slot = (self.n - 1 - k) as u64 > self.usable_budget(k);
        if !any_candidate || idle_useful || surplus_slot {
            if let Some(d) = self.score(k, prev, prev2, Choice::Idle) {
                let v = d + self.dp(k + 1, Choice::Idle, prev);
                best = best.max(v);
            }
        }

        if let Some(key) = key {
            if self.s.memo.len() >= self.max_states {
                self.aborted = true;
            } else {
                self.s.memo.insert(key, best);
            }
        }
        best
    }

    /// Terminal value at slot `N-1`: Δ_{N-2} (τ_i's copy-in rides this
    /// interval's DMA) and Δ_{N-1} (τ_i executes; DMA may copy out `prev`
    /// and load a future task).
    #[inline]
    fn terminal_value(&self, prev: Choice, prev2: Choice) -> i64 {
        let d_nm2 = self
            .cpu(prev)
            .max(self.l_i + self.out_at(self.n - 2, prev2));
        let d_nm1 = self.c_i.max(self.max_l + self.out_of(prev));
        d_nm2 + d_nm1
    }

    /// Contribution of `Δ_{k-1}` once slot `k`'s choice is fixed (the slot
    /// `k-1` copy-in serves the execution of `I_k`); `None` if the choice
    /// is infeasible, `0` at the window start.
    #[inline]
    fn score(&self, k: usize, prev: Choice, prev2: Choice, cand: Choice) -> Option<i64> {
        if k == 0 {
            return Some(0);
        }
        let input = self.in_at(k - 1, cand)?;
        Some(self.cpu(prev).max(input + self.out_at(k - 1, prev2)))
    }

    /// Packs `(k, prev, prev2, canonical budgets)` into a 128-bit memo key
    /// with the adaptive field widths computed in [`Search::new`]; `None`
    /// when the instance is too large to pack (the caller then runs
    /// without memoization until the node budget trips). Budgets enter in
    /// canonical form ([`Search::canon_budget`]) so states with provably
    /// equal suffix optima share one entry; canonical values never exceed
    /// the raw budget, so the precomputed field widths still fit.
    #[inline]
    fn memo_key(&self, k: usize, prev: Choice, prev2: Choice) -> Option<u128> {
        if !self.key_feasible {
            return None;
        }
        debug_assert!(bit_width(k as u64) <= self.k_bits);
        let mut key: u128 = k as u128;
        key = (key << self.c_bits) | prev.encode();
        key = (key << self.c_bits) | prev2.encode();
        for (j, &bits) in self.s.budget_bits.iter().enumerate() {
            key = (key << bits) | u128::from(self.canon_budget(j, k));
        }
        Some(key)
    }

    /// Recording twin of [`Search::dp`]: identical recursion, gating, and
    /// budgets, but memoized in an explicit key map so every reachable
    /// state's exact suffix value survives for certificate emission. Kept
    /// separate from the hot path on purpose — the production `dp` stays
    /// allocation-free.
    fn dp_rec(&mut self, k: usize, prev: Choice, prev2: Choice, rec: &mut RecMemo) -> i64 {
        if self.aborted {
            return 0;
        }
        self.nodes += 1;
        if self.nodes > NODE_BUDGET {
            self.aborted = true;
            return 0;
        }
        if k == self.n - 1 {
            return self.terminal_value(prev, prev2);
        }
        let key = (k, prev.code(), prev2.code(), self.canon_vec(k));
        if let Some(&v) = rec.get(&key) {
            return v;
        }

        let mut best = i64::MIN;
        let mut any_candidate = false;
        let m = self.s.exec.len();
        for task in 0..m {
            if self.s.budget[task] == 0 {
                continue;
            }
            for urgent in [false, true] {
                if urgent && !self.s.ls[task] {
                    continue;
                }
                if !self.placement_ok(k, task, urgent) {
                    continue;
                }
                let cand = Choice::Run { task, urgent };
                let Some(d) = self.score(k, prev, prev2, cand) else {
                    continue;
                };
                any_candidate = true;
                self.s.budget[task] -= 1;
                self.remaining_budget -= 1;
                self.remaining_lp -= u64::from(!self.s.hp[task]);
                let v = d + self.dp_rec(k + 1, cand, prev, rec);
                self.s.budget[task] += 1;
                self.remaining_budget += 1;
                self.remaining_lp += u64::from(!self.s.hp[task]);
                best = best.max(v);
            }
        }
        let idle_useful = k >= 1 && self.free_cancel(k - 1) > 0;
        let surplus_slot = (self.n - 1 - k) as u64 > self.usable_budget(k);
        if !any_candidate || idle_useful || surplus_slot {
            if let Some(d) = self.score(k, prev, prev2, Choice::Idle) {
                let v = d + self.dp_rec(k + 1, Choice::Idle, prev, rec);
                best = best.max(v);
            }
        }

        if rec.len() >= self.max_states {
            self.aborted = true;
        } else {
            rec.insert(key, best);
        }
        best
    }

    /// Recovers one optimal placement from a recorded memo: walks forward
    /// from the root re-enumerating the explored choices of each state and
    /// following any choice whose score plus child value reproduces the
    /// state's recorded optimum.
    fn traceback(&mut self, rec: &RecMemo, total: i64) -> Option<Vec<u64>> {
        let mut witness = Vec::with_capacity(self.n - 1);
        let (mut prev, mut prev2) = (Choice::Idle, Choice::Idle);
        let mut v = total;
        let m = self.s.exec.len();
        for k in 0..self.n - 1 {
            let mut found: Option<(Choice, i64)> = None;
            let mut any_candidate = false;
            'runs: for task in 0..m {
                if self.s.budget[task] == 0 {
                    continue;
                }
                for urgent in [false, true] {
                    if urgent && !self.s.ls[task] {
                        continue;
                    }
                    if !self.placement_ok(k, task, urgent) {
                        continue;
                    }
                    let cand = Choice::Run { task, urgent };
                    let Some(d) = self.score(k, prev, prev2, cand) else {
                        continue;
                    };
                    any_candidate = true;
                    self.s.budget[task] -= 1;
                    let cv = if k + 1 == self.n - 1 {
                        Some(self.terminal_value(cand, prev))
                    } else {
                        rec.get(&(k + 1, cand.code(), prev.code(), self.canon_vec(k + 1)))
                            .copied()
                    };
                    if cv == Some(v - d) {
                        // Keep the budget decremented: the choice is taken.
                        found = Some((cand, v - d));
                        break 'runs;
                    }
                    self.s.budget[task] += 1;
                }
            }
            if found.is_none() {
                let idle_useful = k >= 1 && self.free_cancel(k - 1) > 0;
                let usable: u64 = (0..m)
                    .filter(|&j| self.s.hp[j] || k <= self.last_lp_exec)
                    .map(|j| self.s.budget[j])
                    .sum();
                let surplus_slot = (self.n - 1 - k) as u64 > usable;
                if !any_candidate || idle_useful || surplus_slot {
                    if let Some(d) = self.score(k, prev, prev2, Choice::Idle) {
                        let cv = if k + 1 == self.n - 1 {
                            Some(self.terminal_value(Choice::Idle, prev))
                        } else {
                            rec.get(&(k + 1, 0, prev.code(), self.canon_vec(k + 1)))
                                .copied()
                        };
                        if cv == Some(v - d) {
                            found = Some((Choice::Idle, v - d));
                        }
                    }
                }
            }
            let (cand, cv) = found?;
            witness.push(cand.code());
            v = cv;
            prev2 = prev;
            prev = cand;
        }
        Some(witness)
    }

    /// Safe upper bound used when the DP aborts: [`Search::suffix_cap`]
    /// evaluated at the root (full budgets, all slots).
    fn fallback_bound(&self) -> i64 {
        self.suffix_cap(0, Choice::Idle, Choice::Idle)
    }

    /// Admissible upper bound on `dp(k, prev, prev2)` from the **current**
    /// remaining budgets: the tighter of
    ///
    /// * per-slot caps: every middle interval is below
    ///   `max(max demand, l̂+û)`;
    /// * decoupled sums: `Σ_k Δ_k ≤ Σ_k Δ^cpu_k + Σ_k (Δ^in_k + Δ^out_k)`,
    ///   with the DMA side budgeted by the copies each job performs once,
    ///   plus cancellation and boundary charges. `Δ_{k-1}`'s execution
    ///   (`prev`) and copy-out (`prev2`), and `Δ_k`'s copy-out (`prev`),
    ///   belong to already-placed jobs whose budget is no longer in the
    ///   remaining sums, so they are charged explicitly.
    ///
    /// At `k = 0` this is the engine's coarse fallback bound (`prev` and
    /// `prev2` are idle and the extra charges reduce to the window-start
    /// `max_u` boundary); the branch-and-bound search uses it as its
    /// pruning bound at every depth.
    fn suffix_cap(&self, k: usize, prev: Choice, prev2: Choice) -> i64 {
        let m = self.s.exec.len();
        let max_demand = (0..m)
            .map(|j| {
                if self.s.ls[j] {
                    self.s.cin[j] + self.s.exec[j]
                } else {
                    self.s.exec[j]
                }
            })
            .max()
            .unwrap_or(0);
        let slot_cap = max_demand.max(self.max_l + self.max_u);
        let last2_cap =
            max_demand.max(self.l_i + self.max_u) + self.c_i.max(self.max_l + self.max_u);
        // `dp(k, ·)` covers Δ_{k−1} … Δ_{N−1}: the two terminal intervals
        // plus the middle ones (Δ_{−1} does not exist — `score` returns 0
        // at the window start).
        let mid_slots = (self.n as i64 - 1 - k as i64 - i64::from(k == 0)).max(0);
        let per_slot = slot_cap * mid_slots + last2_cap;

        let total_jobs: u64 = self.s.budget.iter().sum();
        let slots = (self.n - 1 - k) as i64;
        let mut cpu_sum = 0i64;
        let mut dma_sum = 0i64;
        for j in 0..m {
            let b = self.s.budget[j] as i64;
            cpu_sum += b * if self.s.ls[j] {
                self.s.cin[j] + self.s.exec[j]
            } else {
                self.s.exec[j]
            };
            dma_sum += b * (self.s.cin[j] + self.s.cout[j]);
        }
        // Cancellation charges can fill slots without executions and slots
        // preceding urgent executions.
        let ls_jobs: i64 = (0..m)
            .filter(|&j| self.s.ls[j])
            .map(|j| self.s.budget[j] as i64)
            .sum();
        let free_slots = (slots - total_jobs as i64).max(0) + ls_jobs;
        let cancel_extra = free_slots * self.max_cancel_i0;
        // Copy-outs at slots `k-1` and `k` are produced by `prev2` / `prev`
        // (`max_u` at the window boundary); later slots copy out remaining
        // jobs, which `dma_sum` already covers.
        let placed_out = if k == 0 {
            self.max_u
        } else {
            self.out_at(k - 1, prev2) + self.out_of(prev)
        };
        let decoupled = cpu_sum
            + self.cpu(prev)
            + self.c_i
            + dma_sum
            + cancel_extra
            + self.l_i
            + self.max_l
            + placed_out;

        per_slot.min(decoupled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{test_task, WindowCase, WindowModel};
    use pmcs_model::{TaskId, TaskSet, Time};

    fn bound(set: &TaskSet, id: u32, case: WindowCase, t: i64) -> i64 {
        let w = WindowModel::build(set, TaskId(id), case, Time::from_ticks(t))
            .expect("task id is in the set");
        let b = ExactEngine::default()
            .max_total_delay(&w)
            .expect("default budget suffices for the test windows");
        assert!(b.exact);
        b.delay.as_ticks()
    }

    #[test]
    fn singleton_task_window() {
        // Only τ_0: N = 2 intervals (copy-in, then execution).
        let set =
            TaskSet::new(vec![test_task(0, 10, 3, 2, 100, 0, false)]).expect("valid task set");
        // Δ_0 = max(0, l_i + max_u) = 5; Δ_1 = max(10, max_l + 0) = 10.
        assert_eq!(bound(&set, 0, WindowCase::Nls, 3), 15);
    }

    #[test]
    fn single_hp_task_interferes() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 5, 5, 1_000, 1, false),
        ])
        .expect("valid task set");
        // τ1 under analysis; hp τ0 budget = η(10)+1 = 2; no lp → N = 3.
        let d = bound(&set, 1, WindowCase::Nls, 10);
        // Must cover the interference-free minimum …
        assert!(d >= 5 + 20);
        // … and stay below 3 intervals at the per-interval cap
        // (max demand 10, DMA 5+5=10, own exec 20).
        assert!(d <= 10 + 10 + 20, "d={d}");
    }

    #[test]
    fn lp_blocking_appears_in_first_two_intervals_only() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 1, 1, 10_000, 0, false),
            test_task(1, 500, 1, 1, 10_000, 1, false),
        ])
        .expect("valid task set");
        let d = bound(&set, 0, WindowCase::Nls, 12);
        // N = 3 (no hp jobs, one lp task → two blocking intervals: its
        // standalone copy-in interval and its execution interval).
        // Δ_0 = l(τ1) + max_u = 2 (CPU idle, DMA loads τ1);
        // Δ_1 = max(C_lp = 500, l_i + u-boundary) = 500;
        // Δ_2 = max(10, max_l + u(τ1) = 2) = 10. Total 512.
        assert_eq!(d, 512);
    }

    #[test]
    fn ls_case_a_blocks_once() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 1, 1, 10_000, 0, true),
            test_task(1, 500, 1, 1, 10_000, 1, false),
        ])
        .expect("valid task set");
        let d = bound(&set, 0, WindowCase::LsCaseA, 12);
        // N = 2. Δ_0 = max(500, l_i + max_u) = 500; Δ_1 = max(10, 2) = 10.
        assert_eq!(d, 510);
    }

    #[test]
    fn ls_blocks_less_than_nls_with_two_lp_tasks() {
        // Two heavy lp tasks: NLS suffers both (I_0, I_1); LS only one.
        let set = TaskSet::new(vec![
            test_task(0, 10, 1, 1, 100_000, 0, false),
            test_task(1, 300, 2, 2, 100_000, 1, false),
            test_task(2, 400, 2, 2, 100_000, 2, false),
        ])
        .expect("valid task set");
        let nls = bound(&set, 0, WindowCase::Nls, 20);
        let ls = bound(&set, 0, WindowCase::LsCaseA, 20);
        assert!(
            ls + 295 < nls,
            "LS ({ls}) should dodge one ~300-long blocking interval vs NLS ({nls})"
        );
    }

    #[test]
    fn urgent_execution_inflates_cpu_demand() {
        // An LS hp task with large copy-in: when executed urgent its CPU
        // demand is l+C; the adversary should exploit it (after a cancel
        // of a lower-priority victim).
        let set = TaskSet::new(vec![
            test_task(0, 10, 50, 1, 100_000, 0, true),
            test_task(1, 10, 1, 1, 100_000, 1, false),
            test_task(2, 10, 1, 1, 100_000, 2, false),
        ])
        .expect("valid task set");
        let d = bound(&set, 2, WindowCase::Nls, 5);
        assert!(d >= 60, "bound {d} must include an urgent execution");
    }

    #[test]
    fn state_budget_fallback_is_sound() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 10, 2, 2, 100, 1, false),
            test_task(2, 10, 2, 2, 100, 2, false),
        ])
        .expect("valid task set");
        let w = WindowModel::build(&set, TaskId(2), WindowCase::Nls, Time::from_ticks(150))
            .expect("τ2 is in the set");
        let exact = ExactEngine::default()
            .max_total_delay(&w)
            .expect("default budget suffices");
        assert!(exact.exact);
        let starved = ExactEngine::with_max_states(1)
            .max_total_delay(&w)
            .expect("budget exhaustion falls back to a safe bound, not an error");
        assert!(!starved.exact);
        assert!(
            starved.delay >= exact.delay,
            "fallback {} must dominate the exact optimum {}",
            starved.delay,
            exact.delay
        );
    }

    #[test]
    fn empty_competitors_ls_case() {
        let set = TaskSet::new(vec![test_task(0, 10, 3, 2, 100, 0, true)]).expect("valid task set");
        let d = bound(&set, 0, WindowCase::LsCaseA, 3);
        // N = 2: Δ_0 = max(0, l_i + max_u) = 5, Δ_1 = max(10, 3 + 0) = 10.
        assert_eq!(d, 15);
    }

    #[test]
    fn memoization_collapses_plateaus() {
        // A window with many interchangeable jobs must stay cheap.
        let set = TaskSet::new(vec![
            test_task(0, 700, 200, 200, 10_000, 0, false),
            test_task(1, 300, 100, 100, 11_000, 1, false),
            test_task(2, 250, 80, 80, 12_000, 2, false),
            test_task(3, 2_400, 700, 700, 21_000, 3, false),
            test_task(4, 2_000, 600, 600, 40_000, 4, false),
            test_task(5, 1_000, 300, 300, 60_000, 5, false),
        ])
        .expect("valid task set");
        let w = WindowModel::build(&set, TaskId(5), WindowCase::Nls, Time::from_ticks(28_000))
            .expect("τ5 is in the set");
        let b = ExactEngine::default()
            .max_total_delay(&w)
            .expect("memoized DP finishes within the default budget");
        assert!(b.exact, "DP must finish on a 15+-interval window");
        assert!(b.nodes < 2_000_000, "nodes={}", b.nodes);
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        // The same engine analyzing different windows back to back must
        // return the same bounds as fresh engines.
        let set_a = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 5, 5, 1_000, 1, false),
        ])
        .expect("valid task set");
        let set_b = TaskSet::new(vec![
            test_task(0, 10, 1, 1, 10_000, 0, true),
            test_task(1, 500, 1, 1, 10_000, 1, false),
            test_task(2, 40, 3, 3, 10_000, 2, false),
        ])
        .expect("valid task set");
        let reused = ExactEngine::default();
        for _ in 0..3 {
            for (set, id, t) in [(&set_a, 1u32, 10i64), (&set_b, 0, 12), (&set_b, 2, 30)] {
                for case in [WindowCase::Nls, WindowCase::LsCaseA] {
                    let w = WindowModel::build(set, TaskId(id), case, Time::from_ticks(t))
                        .expect("task id is in the set");
                    let fresh = ExactEngine::default()
                        .max_total_delay(&w)
                        .expect("engine result");
                    let warm = reused.max_total_delay(&w).expect("engine result");
                    assert_eq!(fresh.delay, warm.delay);
                    assert_eq!(fresh.exact, warm.exact);
                }
            }
        }
    }

    #[test]
    fn wide_windows_still_memoize() {
        // 11 window tasks (the old 64-bit key gave up beyond 9): 5 hp
        // tasks with 2 jobs each plus 6 lp blockers. Unmemoized, the
        // ~11²·5¹⁰ interleavings blow the node backstop; the adaptive
        // u128 key must keep the DP memoized and exact.
        let mut tasks: Vec<_> = (0..5)
            .map(|i| test_task(i, 40 + i as i64, 5, 5, 5_000, i, false))
            .collect();
        tasks.push(test_task(5, 200, 10, 10, 50_000, 5, false));
        for i in 6..12u32 {
            tasks.push(test_task(i, 100 + i as i64, 5, 5, 50_000, i, false));
        }
        let set = TaskSet::new(tasks).expect("valid task set");
        let w = WindowModel::build(&set, TaskId(5), WindowCase::Nls, Time::from_ticks(4_000))
            .expect("τ5 is in the set");
        assert!(
            w.tasks.len() > 9,
            "m={} must exceed the old limit",
            w.tasks.len()
        );
        let b = ExactEngine::default()
            .max_total_delay(&w)
            .expect("engine result");
        assert!(b.exact, "an 11-task window must still memoize");
        assert!(b.nodes < 50_000_000, "nodes={}", b.nodes);
    }

    #[test]
    fn large_budgets_still_memoize() {
        // A budget beyond the old 31-per-task packing limit: a long window
        // against a short-period hp task.
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 50, 5, 5, 10_000, 1, false),
        ])
        .expect("valid task set");
        // η_0(4000) + 1 = 41 jobs of τ0.
        let w = WindowModel::build(&set, TaskId(1), WindowCase::Nls, Time::from_ticks(4_000))
            .expect("τ1 is in the set");
        assert!(w.tasks.iter().any(|t| t.budget > 31));
        let b = ExactEngine::default()
            .max_total_delay(&w)
            .expect("engine result");
        assert!(b.exact, "budget 41 must still pack into the memo key");
    }
}
