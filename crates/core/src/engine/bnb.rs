//! Parallel branch-and-bound rescue for windows the DP cannot memoize.
//!
//! The memoized DP of [`ExactEngine`](crate::ExactEngine) is the fast
//! path, but its memo is keyed by the full remaining-budget vector: a
//! window with many *distinct* high-budget competitors can exceed any
//! reasonable entry budget even after symmetry canonicalization. This
//! module recovers exactness for those windows with a depth-first
//! branch-and-bound over the same search tree:
//!
//! * **identical semantics** — each worker drives the engine's own
//!   [`Search`] (same candidate enumeration, symmetry-breaking admission,
//!   dominance gates and per-slot scoring), so the explored tree is the
//!   DP tree and equivalence needs no second implementation;
//! * **admissible bounding** — a subtree is cut when the engine's
//!   closed-form suffix cap ([`Search::suffix_cap`]), and optionally the
//!   window MILP's LP relaxation with the search prefix pinned, cannot
//!   beat the incumbent;
//! * **shared incumbent** — workers publish completed placements into one
//!   `AtomicI64` via `fetch_max`. Pruning only ever removes subtrees
//!   whose optimum is `≤` the incumbent, and the incumbent only ever
//!   holds *achieved* placement values, so the final maximum is
//!   **deterministic**: byte-identical for any worker count or
//!   interleaving. Node counts may vary; the bound may not.
//!
//! Work is sharded by enumerating all feasible depth-≤2 slot prefixes and
//! handing them to `jobs` scoped threads through an atomic cursor. A
//! global node budget (shared atomic pool) aborts the whole search —
//! [`solve_window`] then returns `None` and the engine degrades to its
//! safe fallback cap exactly as if branch-and-bound were disabled.
//!
//! Results are exact but **not certifiable**: certificate emission
//! replays the memoized DP table, which does not exist here. See
//! [`ExactEngine::with_branch_and_bound`](crate::ExactEngine::with_branch_and_bound).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

use pmcs_milp::{Basis, LpBackend, LpOutcome, RevisedBackend, SolverStats, WarmStart};

use super::{Choice, Scratch, Search};
use crate::formulation::Formulation;
use crate::window::WindowModel;

/// Configuration of the branch-and-bound rescue path.
#[derive(Debug, Clone)]
pub struct BnbConfig {
    /// Worker threads sharing the incumbent (`1` = sequential). The
    /// resulting bound is identical for every value; only wall-clock and
    /// node counts change.
    pub jobs: usize,
    /// Depth (in slots) up to which each node additionally solves the
    /// window MILP's LP relaxation with the search prefix pinned, pruning
    /// on the relaxation bound. `0` disables LP bounding; small values
    /// (2–4) prune near the root where subtrees are largest.
    pub lp_depth: usize,
    /// Global node budget across all workers; exhausting it aborts the
    /// search (the engine then falls back to its safe cap).
    pub node_budget: u64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            jobs: 1,
            lp_depth: 0,
            node_budget: 50_000_000,
        }
    }
}

/// A completed branch-and-bound solve: the exact window optimum and the
/// effort spent finding it.
#[derive(Debug, Clone)]
pub struct Run {
    /// The exact maximum total delay of the window, in ticks.
    pub value: i64,
    /// Nodes, LP solves, pivots and warm-start effort summed over all
    /// workers.
    pub stats: SolverStats,
}

/// A depth-≤2 root prefix: the slot choices taken so far and the delay
/// contribution already scored for them.
#[derive(Debug, Clone)]
struct Prefix {
    choices: Vec<Choice>,
    acc: i64,
}

/// How many nodes a worker runs between drawing from the shared node
/// pool (batching keeps the atomic off the per-node hot path).
const SYNC_BATCH: u64 = 8_192;

/// Solves `w` exactly by parallel branch-and-bound, or returns `None`
/// when the global node budget is exhausted first.
pub fn solve_window(w: &WindowModel, cfg: &BnbConfig) -> Option<Run> {
    let mut scratch = Scratch::default();
    let mut search = Search::new(w, usize::MAX, &mut scratch);
    if search.n < 2 {
        return Some(Run {
            value: search.c_i.max(search.max_l + search.max_u),
            stats: SolverStats::default(),
        });
    }

    let incumbent = AtomicI64::new(i64::MIN);
    // Seed the incumbent with a greedy dive so root-level pruning has a
    // real placement value to beat from the first node.
    incumbent.fetch_max(greedy_seed(&mut search), Ordering::Relaxed);

    // Enumerate the root prefixes that shard the tree. Terminal prefixes
    // (short windows) complete inside the enumeration via the incumbent.
    let depth = 2.min(search.n - 1);
    let mut prefixes = Vec::new();
    let mut path = Vec::new();
    expand(
        &mut search,
        Choice::Idle,
        Choice::Idle,
        0,
        depth,
        &incumbent,
        &mut path,
        &mut prefixes,
    );
    let abort = AtomicBool::new(false);
    let pool = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    let jobs = cfg.jobs.max(1).min(prefixes.len().max(1));

    let mut stats = SolverStats::default();
    if jobs <= 1 {
        stats.merge(worker(
            w, cfg, &prefixes, &cursor, &incumbent, &abort, &pool,
        ));
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| worker(w, cfg, &prefixes, &cursor, &incumbent, &abort, &pool))
                })
                .collect();
            for h in handles {
                // A worker panic is a bug, not a load condition; propagate.
                stats.merge(h.join().expect("branch-and-bound worker panicked"));
            }
        });
    }

    if abort.load(Ordering::Relaxed) {
        return None;
    }
    let value = incumbent.load(Ordering::Relaxed);
    debug_assert!(value > i64::MIN, "every window has at least one placement");
    Some(Run { value, stats })
}

/// One valid placement's total delay, found by always taking the
/// locally best-scoring choice. A lower bound on the optimum (it *is* a
/// placement), used to seed the shared incumbent.
fn greedy_seed(s: &mut Search<'_>) -> i64 {
    let (mut prev, mut prev2) = (Choice::Idle, Choice::Idle);
    let mut acc = 0i64;
    let mut taken = Vec::with_capacity(s.n - 1);
    for k in 0..s.n - 1 {
        let mut best: Option<(Choice, i64)> = None;
        for_candidates(s, k, prev, prev2, |cand, d| {
            if best.is_none_or(|(_, bd)| d > bd) {
                best = Some((cand, d));
            }
        });
        let (cand, d) = match best {
            // `in_at(·, Idle)` always yields a copy-in, so idling is
            // always scoreable: every node has at least one child.
            None => (
                Choice::Idle,
                s.score(k, prev, prev2, Choice::Idle)
                    .expect("idle is always feasible"),
            ),
            Some(found) => found,
        };
        apply(s, cand);
        taken.push(cand);
        acc += d;
        prev2 = prev;
        prev = cand;
    }
    let value = acc + s.terminal_value(prev, prev2);
    // Restore the budgets: the caller reuses this `Search` for the root
    // prefix enumeration.
    for &cand in taken.iter().rev() {
        undo(s, cand);
    }
    value
}

/// Enumerates the feasible (non-idle-gated) choices of slot `k` exactly
/// as [`Search::dp`] does, invoking `f` with each candidate and its
/// `Δ_{k-1}` score. Idle is offered under the same dominance gates.
fn for_candidates(
    s: &Search<'_>,
    k: usize,
    prev: Choice,
    prev2: Choice,
    mut f: impl FnMut(Choice, i64),
) {
    let m = s.s.exec.len();
    let mut any_candidate = false;
    for task in 0..m {
        if s.s.budget[task] == 0 {
            continue;
        }
        for urgent in [false, true] {
            if urgent && !s.s.ls[task] {
                continue;
            }
            if !s.placement_ok(k, task, urgent) {
                continue;
            }
            let cand = Choice::Run { task, urgent };
            let Some(d) = s.score(k, prev, prev2, cand) else {
                continue;
            };
            any_candidate = true;
            f(cand, d);
        }
    }
    let idle_useful = k >= 1 && s.free_cancel(k - 1) > 0;
    let surplus_slot = (s.n - 1 - k) as u64 > s.usable_budget(k);
    if !any_candidate || idle_useful || surplus_slot {
        if let Some(d) = s.score(k, prev, prev2, Choice::Idle) {
            f(Choice::Idle, d);
        }
    }
}

/// Consumes one job of `cand` from the search's budget accounting.
fn apply(s: &mut Search<'_>, cand: Choice) {
    if let Choice::Run { task, .. } = cand {
        s.s.budget[task] -= 1;
        s.remaining_budget -= 1;
        s.remaining_lp -= u64::from(!s.s.hp[task]);
    }
}

/// Reverses [`apply`].
fn undo(s: &mut Search<'_>, cand: Choice) {
    if let Choice::Run { task, .. } = cand {
        s.s.budget[task] += 1;
        s.remaining_budget += 1;
        s.remaining_lp += u64::from(!s.s.hp[task]);
    }
}

/// Recursively enumerates all feasible prefixes down to `depth` more
/// slots, completing short branches against the incumbent directly.
#[allow(clippy::too_many_arguments)]
fn expand(
    s: &mut Search<'_>,
    prev: Choice,
    prev2: Choice,
    acc: i64,
    depth: usize,
    incumbent: &AtomicI64,
    path: &mut Vec<Choice>,
    out: &mut Vec<Prefix>,
) {
    let k = path.len();
    if k == s.n - 1 {
        incumbent.fetch_max(acc + s.terminal_value(prev, prev2), Ordering::Relaxed);
        return;
    }
    if depth == 0 {
        out.push(Prefix {
            choices: path.clone(),
            acc,
        });
        return;
    }
    let mut cands = Vec::new();
    for_candidates(s, k, prev, prev2, |cand, d| cands.push((cand, d)));
    for (cand, d) in cands {
        apply(s, cand);
        path.push(cand);
        expand(s, cand, prev, acc + d, depth - 1, incumbent, path, out);
        path.pop();
        undo(s, cand);
    }
}

/// Per-worker LP bounding state: the window MILP built once, its default
/// variable bounds, and the basis carried between solves for warm starts.
struct LpPruner {
    formulation: Formulation,
    backend: RevisedBackend,
    base_bounds: Vec<(f64, f64)>,
    basis: Option<Basis>,
}

impl LpPruner {
    fn new(w: &WindowModel) -> LpPruner {
        let formulation = Formulation::build(w);
        let base_bounds = formulation
            .problem
            .vars()
            .map(|v| formulation.problem.var_bounds(v))
            .collect();
        LpPruner {
            formulation,
            backend: RevisedBackend::default(),
            base_bounds,
            basis: None,
        }
    }

    /// `true` when the LP relaxation with the prefix pinned proves that
    /// no completion can beat `incumbent`. A non-optimal outcome (or a
    /// numerical failure) never prunes — the DFS bound stays admissible.
    fn proves_dominated(
        &mut self,
        path: &[Choice],
        incumbent: i64,
        stats: &mut SolverStats,
    ) -> bool {
        let mut bounds = self.base_bounds.clone();
        for (slot, &choice) in path.iter().enumerate() {
            match choice {
                Choice::Run {
                    task,
                    urgent: false,
                } => {
                    // Constraint 5 (≤1 execution per slot) forces every
                    // other execution variable of the slot to zero.
                    if let Some(v) = self.formulation.e[task][slot] {
                        bounds[v.index()] = (1.0, 1.0);
                    }
                }
                Choice::Run { task, urgent: true } => {
                    if let Some(v) = self.formulation.le[task][slot] {
                        bounds[v.index()] = (1.0, 1.0);
                    }
                }
                Choice::Idle => {
                    for grid in [&self.formulation.e, &self.formulation.le] {
                        for row in grid {
                            if let Some(v) = row[slot] {
                                bounds[v.index()] = (0.0, 0.0);
                            }
                        }
                    }
                }
            }
        }
        stats.lp_solves += 1;
        if self.basis.is_some() {
            stats.warm_start_attempts += 1;
        }
        let Ok(run) =
            self.backend
                .solve_lp(&self.formulation.problem, &bounds, self.basis.as_ref())
        else {
            return false;
        };
        stats.lp_pivots += run.pivots;
        if run.warm == WarmStart::Hit {
            stats.warm_start_hits += 1;
        }
        if let Some(basis) = run.basis {
            self.basis = Some(basis);
        }
        match run.outcome {
            // Integer-valued objective: a relaxation below incumbent+1
            // cannot contain a better integral completion.
            LpOutcome::Optimal(sol) => sol.objective() <= incumbent as f64 + 0.5,
            LpOutcome::Infeasible | LpOutcome::Unbounded => false,
        }
    }
}

/// One worker: drains the prefix queue through the shared cursor and
/// searches each subtree depth-first against the shared incumbent.
fn worker(
    w: &WindowModel,
    cfg: &BnbConfig,
    prefixes: &[Prefix],
    cursor: &AtomicUsize,
    incumbent: &AtomicI64,
    abort: &AtomicBool,
    pool: &AtomicU64,
) -> SolverStats {
    let mut scratch = Scratch::default();
    let mut search = Search::new(w, usize::MAX, &mut scratch);
    let mut ctx = Dfs {
        incumbent,
        abort,
        pool,
        node_budget: cfg.node_budget,
        lp_depth: cfg.lp_depth,
        lp: if cfg.lp_depth > 0 {
            Some(LpPruner::new(w))
        } else {
            None
        },
        stats: SolverStats::default(),
        unsynced: 0,
    };
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= prefixes.len() || abort.load(Ordering::Relaxed) {
            break;
        }
        let prefix = &prefixes[i];
        let mut path = prefix.choices.clone();
        for &c in &prefix.choices {
            apply(&mut search, c);
        }
        let prev = path.last().copied().unwrap_or(Choice::Idle);
        let prev2 = if path.len() >= 2 {
            path[path.len() - 2]
        } else {
            Choice::Idle
        };
        ctx.dfs(&mut search, prev, prev2, prefix.acc, &mut path);
        for &c in &prefix.choices {
            undo(&mut search, c);
        }
    }
    ctx.flush_nodes();
    ctx.stats
}

/// Depth-first search state shared by reference with every recursion
/// level of one worker.
struct Dfs<'w> {
    incumbent: &'w AtomicI64,
    abort: &'w AtomicBool,
    pool: &'w AtomicU64,
    node_budget: u64,
    lp_depth: usize,
    lp: Option<LpPruner>,
    stats: SolverStats,
    unsynced: u64,
}

impl Dfs<'_> {
    /// Counts one node and periodically settles the batch against the
    /// shared pool, raising the abort flag when the global budget trips.
    fn tick(&mut self) {
        self.stats.bb_nodes += 1;
        self.unsynced += 1;
        if self.unsynced >= SYNC_BATCH {
            self.flush_nodes();
        }
    }

    fn flush_nodes(&mut self) {
        if self.unsynced == 0 {
            return;
        }
        let before = self.pool.fetch_add(self.unsynced, Ordering::Relaxed);
        if before + self.unsynced > self.node_budget {
            self.abort.store(true, Ordering::Relaxed);
        }
        self.unsynced = 0;
    }

    fn dfs(
        &mut self,
        s: &mut Search<'_>,
        prev: Choice,
        prev2: Choice,
        acc: i64,
        path: &mut Vec<Choice>,
    ) {
        if self.abort.load(Ordering::Relaxed) {
            return;
        }
        self.tick();
        let k = path.len();
        if k == s.n - 1 {
            self.incumbent
                .fetch_max(acc + s.terminal_value(prev, prev2), Ordering::Relaxed);
            return;
        }
        // Admissible closed-form bound: `suffix_cap` dominates every
        // completion of the current budgets, so a subtree at or below the
        // incumbent cannot improve the maximum.
        if acc + s.suffix_cap(k, prev, prev2) <= self.incumbent.load(Ordering::Relaxed) {
            return;
        }
        if k < self.lp_depth {
            if let Some(lp) = self.lp.as_mut() {
                let incumbent = self.incumbent.load(Ordering::Relaxed);
                if lp.proves_dominated(path, incumbent, &mut self.stats) {
                    return;
                }
            }
        }
        let mut cands = Vec::new();
        for_candidates(s, k, prev, prev2, |cand, d| cands.push((cand, d)));
        for (cand, d) in cands {
            apply(s, cand);
            path.push(cand);
            self.dfs(s, cand, prev, acc + d, path);
            path.pop();
            undo(s, cand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcrt::DelayEngine;
    use crate::window::{test_task, WindowCase, WindowModel};
    use crate::ExactEngine;
    use pmcs_model::{TaskId, TaskSet, Time};

    fn window(tasks: Vec<pmcs_model::Task>, id: u32, t: i64) -> WindowModel {
        let set = TaskSet::new(tasks).unwrap();
        WindowModel::build(&set, TaskId(id), WindowCase::Nls, Time::from_ticks(t)).unwrap()
    }

    #[test]
    fn matches_the_dp_on_small_windows() {
        let w = window(
            vec![
                test_task(0, 10, 2, 2, 1_000, 0, false),
                test_task(1, 40, 5, 5, 900, 1, true),
                test_task(2, 20, 5, 5, 1_000, 2, false),
            ],
            2,
            30,
        );
        let dp = ExactEngine::default().max_total_delay(&w).unwrap();
        assert!(dp.exact);
        for jobs in [1, 2, 4] {
            for lp_depth in [0, 2] {
                let cfg = BnbConfig {
                    jobs,
                    lp_depth,
                    ..BnbConfig::default()
                };
                let run = solve_window(&w, &cfg).expect("budget suffices");
                assert_eq!(
                    Time::from_ticks(run.value),
                    dp.delay,
                    "jobs={jobs} lp_depth={lp_depth}"
                );
            }
        }
    }

    #[test]
    fn rescues_a_starved_engine_exactly() {
        let w = window(
            vec![
                test_task(0, 10, 2, 2, 100, 0, false),
                test_task(1, 10, 2, 2, 100, 1, false),
                test_task(2, 10, 2, 2, 100, 2, false),
            ],
            2,
            150,
        );
        let exact = ExactEngine::default().max_total_delay(&w).unwrap();
        assert!(exact.exact);
        let rescued = ExactEngine::with_max_states(1)
            .with_branch_and_bound(BnbConfig::default())
            .max_total_delay(&w)
            .unwrap();
        assert!(rescued.exact, "branch-and-bound must restore exactness");
        assert_eq!(rescued.delay, exact.delay);
        let stats = ExactEngine::with_max_states(1)
            .with_branch_and_bound(BnbConfig::default())
            .solver_stats();
        assert!(stats.is_empty(), "fresh engine reports no effort");
    }

    #[test]
    fn node_budget_exhaustion_returns_none() {
        let w = window(
            vec![
                test_task(0, 10, 2, 2, 100, 0, false),
                test_task(1, 11, 3, 3, 110, 1, false),
                test_task(2, 12, 4, 4, 120, 2, false),
                test_task(3, 50, 5, 5, 10_000, 3, false),
            ],
            3,
            400,
        );
        let cfg = BnbConfig {
            node_budget: 1,
            ..BnbConfig::default()
        };
        assert!(solve_window(&w, &cfg).is_none());
    }
}
