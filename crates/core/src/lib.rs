//! # pmcs-core
//!
//! The primary contribution of *"Predictable Memory-CPU Co-Scheduling with
//! Support for Latency-Sensitive Tasks"* (Casini, Pazzaglia, Biondi,
//! Di Natale, Buttazzo — DAC 2020):
//!
//! * the **co-scheduling protocol** with reduced priority-inversion
//!   blocking for latency-sensitive (LS) tasks — rules R1–R6 ([`protocol`]);
//! * its **worst-case response-time analysis**, which maximizes the delay
//!   an adversarial-but-protocol-legal schedule can inflict on a task.
//!   The optimization is available in two exact engines:
//!   a faithful **MILP formulation** solved with [`pmcs_milp`]
//!   ([`formulation`], [`MilpEngine`]) and a **specialized combinatorial
//!   branch & bound** over interval assignments ([`engine`],
//!   [`ExactEngine`]) that solves the same problem orders of magnitude
//!   faster;
//! * the **fixed-point WCRT iteration** (Section VI) ([`wcrt`]);
//! * the **greedy LS-marking algorithm** that promotes deadline-missing
//!   tasks to latency-sensitive ([`schedulability`]).
//!
//! ## Quickstart
//!
//! ```
//! use pmcs_model::prelude::*;
//! use pmcs_core::{analyze_task_set, ExactEngine};
//!
//! let mk = |id: u32, c: i64, t: i64, p: u32| {
//!     Task::builder(TaskId(id))
//!         .exec(Time::from_ticks(c))
//!         .copy_in(Time::from_ticks(c / 5))
//!         .copy_out(Time::from_ticks(c / 5))
//!         .sporadic(Time::from_ticks(t))
//!         .deadline(Time::from_ticks(t))
//!         .priority(Priority(p))
//!         .build()
//!         .unwrap()
//! };
//! let set = TaskSet::new(vec![mk(0, 10, 100, 0), mk(1, 20, 200, 1)])?;
//! let report = analyze_task_set(&set, &ExactEngine::default())?;
//! assert!(report.schedulable());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod certify;
pub mod chains;
pub mod contention;
pub mod engine;
pub mod error;
pub mod formulation;
pub mod ls_search;
pub mod partitioning;
pub mod protocol;
pub mod schedulability;
pub mod session;
pub mod wcrt;
pub mod window;

pub use cache::{
    CacheStats, CachedEngine, DelayCache, SharedCachedEngine, SharedDelayCache, WindowKey,
};
pub use certify::{certify_task_set, certify_window_dp, certify_window_milp};
pub use chains::{chain_latency, ChainActivation, TaskChain};
pub use contention::Inflation;
pub use engine::bnb;
pub use engine::ExactEngine;
pub use error::CoreError;
pub use formulation::{MilpEngine, AUDIT_ENV_VAR};
pub use ls_search::{exhaustive_ls_assignment, ExhaustiveResult};
pub use partitioning::{
    analyze_platform, assign_budgets, partition, partition_regulated, BudgetAttempt, BudgetSearch,
    Heuristic, PartitionError, Partitioning,
};
pub use pmcs_milp::{BackendKind, SolverStats};
pub use protocol::{ProtocolRule, RULES};
pub use schedulability::{
    analyze_task_set, analyze_task_set_traced, promotion_affects, GreedyTrace, LsAssignment,
    RoundEntry, SchedulabilityReport, TaskVerdict,
};
pub use session::{AnalysisSession, SessionStats};
pub use wcrt::{DelayEngine, TaskAnalysis, TaskTrace, TraceStep, WcrtAnalyzer};
pub use window::{WindowCase, WindowModel, WindowTask};
