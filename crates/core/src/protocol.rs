//! The co-scheduling protocol: rules R1–R6 (Section IV of the paper).
//!
//! The protocol operates per core on **scheduling time intervals**
//! (Definition 1). Within an interval the two local-memory partitions are
//! statically assigned, one to the CPU and one to the DMA engine; the
//! assignment swaps at every interval boundary. The executable semantics
//! live in `pmcs-sim`; this module is the canonical, documented statement
//! of the rules, shared by the analysis and the simulator, plus the
//! blocking-bound properties (Properties 1–4) as constants used by both.

use std::fmt;

/// One protocol rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtocolRule {
    /// Rule tag, `"R1"`–`"R6"`.
    pub tag: &'static str,
    /// Normative statement of the rule.
    pub statement: &'static str,
}

impl fmt::Display for ProtocolRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.tag, self.statement)
    }
}

/// The six rules of the proposed protocol, quoted from Section IV-A.
pub const RULES: [ProtocolRule; 6] = [
    ProtocolRule {
        tag: "R1",
        statement: "when an interval begins, the partition assignment is swapped: the \
                    processor partition goes to the DMA engine and vice versa",
    },
    ProtocolRule {
        tag: "R2",
        statement: "at the beginning of each interval, the DMA first copies out any output \
                    data left in its partition, then performs the copy-in of the \
                    highest-priority ready task (removing it from the ready queue)",
    },
    ProtocolRule {
        tag: "R3",
        statement: "if a latency-sensitive task is released while the DMA is copying in a \
                    lower-priority task, the copy-in is canceled and the task is put back \
                    in the ready queue",
    },
    ProtocolRule {
        tag: "R4",
        statement: "at the end of an interval in which a copy-in was canceled or no copy-in \
                    was executed, the highest-priority latency-sensitive task released in \
                    the interval (if any) becomes urgent and leaves the ready queue",
    },
    ProtocolRule {
        tag: "R5",
        statement: "at the beginning of each interval, an urgent task (if any) has its \
                    copy-in performed by the CPU and is then executed sequentially; \
                    otherwise the task whose copy-in completed in the previous interval \
                    is executed; otherwise the CPU idles until the interval ends",
    },
    ProtocolRule {
        tag: "R6",
        statement: "the interval length is the longest of the CPU operations and the DMA \
                    operations performed in it",
    },
];

/// Maximum number of intervals an **NLS** task can be blocked by
/// lower-priority tasks (Property 3).
pub const NLS_BLOCKING_INTERVALS: usize = 2;

/// Maximum number of intervals an **LS** task can be blocked by
/// lower-priority tasks (Property 4).
pub const LS_BLOCKING_INTERVALS: usize = 1;

/// Maximum number of intervals a task can be blocked under the baseline
/// protocol of Wasly & Pellizzoni \[3\] (Section III-A) — identical to the
/// NLS bound, but applying to *every* task since \[3\] has no LS support.
pub const WP_BLOCKING_INTERVALS: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rules_in_order() {
        assert_eq!(RULES.len(), 6);
        for (i, r) in RULES.iter().enumerate() {
            assert_eq!(r.tag, format!("R{}", i + 1));
            assert!(!r.statement.is_empty());
        }
    }

    #[test]
    fn blocking_bounds_match_properties() {
        assert_eq!(NLS_BLOCKING_INTERVALS, 2);
        assert_eq!(LS_BLOCKING_INTERVALS, 1);
        assert_eq!(WP_BLOCKING_INTERVALS, NLS_BLOCKING_INTERVALS);
    }

    #[test]
    fn display_is_tagged() {
        assert!(RULES[0].to_string().starts_with("R1: "));
    }
}
