//! Fixed-point worst-case response-time iteration (Section VI).
//!
//! For a tentative response time `R̄_i`, the delay window has length
//! `t = R̄_i − C_i − u_i`; the delay engine maximizes `Σ_k Δ_k` over all
//! protocol-legal schedules of the `N_i(t)` intervals, yielding a new
//! tentative `R̄_i' = Σ_k Δ_k + u_i` (Eq. (1): the final copy-out runs
//! undelayed at the start of interval `N_i(t)`, rule R2). The iteration
//! starts from the interference-free response `l_i + C_i + u_i` and stops
//! at the first fixed point, or as soon as the bound exceeds the deadline.

use pmcs_model::{Sensitivity, TaskId, TaskSet, Time};

use crate::error::CoreError;
use crate::window::{WindowCase, WindowModel};

/// Result of one window optimization: the maximal total delay `Σ_k Δ_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayBound {
    /// Upper bound on `Σ_k Δ_k`.
    pub delay: Time,
    /// `true` iff the bound is the exact optimum (engines degrade to safe
    /// over-approximations when their search budgets run out).
    pub exact: bool,
    /// Search effort indicator (nodes explored / solver nodes).
    pub nodes: u64,
}

/// A delay-maximization engine: the MILP of Section V
/// ([`MilpEngine`](crate::MilpEngine)) or the specialized combinatorial
/// solver ([`ExactEngine`](crate::ExactEngine)).
pub trait DelayEngine {
    /// Upper-bounds the total delay `Σ_k Δ_k` over all protocol-legal
    /// schedules of the window.
    ///
    /// # Errors
    ///
    /// Implementations report solver failures as [`CoreError`].
    fn max_total_delay(&self, window: &WindowModel) -> Result<DelayBound, CoreError>;
}

impl<E: DelayEngine + ?Sized> DelayEngine for &E {
    fn max_total_delay(&self, window: &WindowModel) -> Result<DelayBound, CoreError> {
        (**self).max_total_delay(window)
    }
}

/// Per-task analysis outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskAnalysis {
    /// The analyzed task.
    pub task: TaskId,
    /// WCRT bound. When the iteration aborts on a deadline miss this is
    /// the first bound that exceeded the deadline (still a valid lower
    /// bound on the true WCRT bound).
    pub wcrt: Time,
    /// `true` iff `wcrt ≤ D_i`.
    pub schedulable: bool,
    /// Fixed-point iterations performed.
    pub iterations: usize,
    /// `true` iff every engine invocation returned an exact optimum.
    pub exact: bool,
    /// For LS tasks, the response time of the urgent-promotion case (b);
    /// `None` for NLS tasks.
    pub case_b_response: Option<Time>,
}

/// Fixed-point WCRT analyzer.
///
/// # Example
///
/// ```
/// use pmcs_core::{ExactEngine, WcrtAnalyzer};
/// use pmcs_core::window::test_task;
/// use pmcs_model::{TaskId, TaskSet};
///
/// let set = TaskSet::new(vec![
///     test_task(0, 10, 2, 2, 100, 0, false),
///     test_task(1, 20, 4, 4, 200, 1, false),
/// ]).expect("valid task set");
/// let analyzer = WcrtAnalyzer::default();
/// let a = analyzer.analyze_task(&set, TaskId(1), &ExactEngine::default())?;
/// assert!(a.schedulable);
/// # Ok::<(), pmcs_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WcrtAnalyzer {
    /// Cap on fixed-point rounds (a safety net; convergence or a deadline
    /// miss normally occurs within a handful of rounds).
    pub max_iterations: usize,
}

impl Default for WcrtAnalyzer {
    fn default() -> Self {
        WcrtAnalyzer {
            max_iterations: 512,
        }
    }
}

impl WcrtAnalyzer {
    /// Creates an analyzer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the WCRT bound of `task` within `set` under the proposed
    /// protocol, honoring the task's current LS/NLS marking.
    ///
    /// # Errors
    ///
    /// Propagates engine failures and unknown-task errors; returns
    /// [`CoreError::NoConvergence`] if the iteration cap is exhausted
    /// before a fixed point or deadline miss.
    pub fn analyze_task(
        &self,
        set: &TaskSet,
        task: TaskId,
        engine: &impl DelayEngine,
    ) -> Result<TaskAnalysis, CoreError> {
        self.analyze_inner(set, task, engine, None)
    }

    /// [`WcrtAnalyzer::analyze_task`] plus a transcript of the fixed-point
    /// iteration (one [`TraceStep`] per engine invocation), the basis of
    /// certificate emission (see [`certify`](crate::certify)).
    ///
    /// # Errors
    ///
    /// Same as [`WcrtAnalyzer::analyze_task`].
    pub fn analyze_task_traced(
        &self,
        set: &TaskSet,
        task: TaskId,
        engine: &impl DelayEngine,
    ) -> Result<(TaskAnalysis, TaskTrace), CoreError> {
        let mut trace = TaskTrace {
            case: WindowCase::Nls,
            steps: Vec::new(),
            case_b: None,
        };
        let analysis = self.analyze_inner(set, task, engine, Some(&mut trace))?;
        Ok((analysis, trace))
    }

    fn analyze_inner(
        &self,
        set: &TaskSet,
        task: TaskId,
        engine: &impl DelayEngine,
        mut trace: Option<&mut TaskTrace>,
    ) -> Result<TaskAnalysis, CoreError> {
        let t = set.require(task)?;
        let deadline = t.deadline();
        match t.sensitivity() {
            Sensitivity::Nls => {
                let fp = self.fixed_point(
                    set,
                    task,
                    WindowCase::Nls,
                    deadline,
                    engine,
                    trace.as_deref_mut().map(|tr| &mut tr.steps),
                )?;
                Ok(TaskAnalysis {
                    task,
                    wcrt: fp.response,
                    schedulable: fp.response <= deadline,
                    iterations: fp.iterations,
                    exact: fp.exact,
                    case_b_response: None,
                })
            }
            Sensitivity::Ls => {
                if let Some(tr) = trace.as_deref_mut() {
                    tr.case = WindowCase::LsCaseA;
                }
                // Case (b) is a closed form, independent of the window
                // length (Section V-B.2).
                let w0 = WindowModel::build(set, task, WindowCase::LsCaseA, Time::ZERO)?;
                let case_b = w0.ls_case_b_response();
                if let Some(tr) = trace.as_deref_mut() {
                    tr.case_b = Some(case_b);
                }
                if case_b > deadline {
                    return Ok(TaskAnalysis {
                        task,
                        wcrt: case_b,
                        schedulable: false,
                        iterations: 0,
                        exact: true,
                        case_b_response: Some(case_b),
                    });
                }
                let fp = self.fixed_point(
                    set,
                    task,
                    WindowCase::LsCaseA,
                    deadline,
                    engine,
                    trace.map(|tr| &mut tr.steps),
                )?;
                let wcrt = fp.response.max(case_b);
                Ok(TaskAnalysis {
                    task,
                    wcrt,
                    schedulable: wcrt <= deadline,
                    iterations: fp.iterations,
                    exact: fp.exact,
                    case_b_response: Some(case_b),
                })
            }
        }
    }

    fn fixed_point(
        &self,
        set: &TaskSet,
        task: TaskId,
        case: WindowCase,
        deadline: Time,
        engine: &impl DelayEngine,
        mut trace: Option<&mut Vec<TraceStep>>,
    ) -> Result<FixedPoint, CoreError> {
        let t = set.require(task)?;
        let base = t.exec() + t.copy_out();
        // Interference-free response: copy-in + execute + copy-out.
        let mut response = t.copy_in() + base;
        let mut exact = true;
        for iteration in 1..=self.max_iterations {
            let window_len = response - base;
            debug_assert!(window_len.is_duration());
            let window = WindowModel::build(set, task, case, window_len)?;
            let bound = engine.max_total_delay(&window)?;
            exact &= bound.exact;
            if let Some(steps) = trace.as_deref_mut() {
                steps.push(TraceStep {
                    window_len,
                    delay: bound.delay,
                    exact: bound.exact,
                });
            }
            let next = bound.delay + t.copy_out();
            if next > deadline {
                return Ok(FixedPoint {
                    response: next,
                    iterations: iteration,
                    exact,
                });
            }
            if next <= response {
                return Ok(FixedPoint {
                    response,
                    iterations: iteration,
                    exact,
                });
            }
            response = next;
        }
        Err(CoreError::NoConvergence {
            task,
            iterations: self.max_iterations,
        })
    }
}

/// One engine invocation of the fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// The window length `t = R̄ − C − u` fed to the engine.
    pub window_len: Time,
    /// The engine's bound on `Σ_k Δ_k`.
    pub delay: Time,
    /// Whether the bound was exact.
    pub exact: bool,
}

/// Transcript of one task analysis, sufficient to re-derive every window
/// the fixed point solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTrace {
    /// The analysis case used by the fixed point.
    pub case: WindowCase,
    /// One step per engine invocation, in iteration order (empty when the
    /// LS case (b) closed form already misses the deadline).
    pub steps: Vec<TraceStep>,
    /// LS case (b) closed-form response; `None` for NLS tasks.
    pub case_b: Option<Time>,
}

struct FixedPoint {
    response: Time,
    iterations: usize,
    exact: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::window::test_task;
    use pmcs_model::TaskSet;

    #[test]
    fn isolated_task_gets_structural_minimum() {
        let set =
            TaskSet::new(vec![test_task(0, 10, 3, 2, 100, 0, false)]).expect("valid task set");
        let a = WcrtAnalyzer::default()
            .analyze_task(&set, TaskId(0), &ExactEngine::default())
            .expect("analysis of an isolated task cannot fail");
        // From the engine test: Σ Δ = 15 → R = 15 + u = 17.
        assert_eq!(a.wcrt, Time::from_ticks(17));
        assert!(a.schedulable);
        assert!(a.exact);
        assert!(a.case_b_response.is_none());
    }

    #[test]
    fn wcrt_is_at_least_interference_free_response() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 200, 1, false),
        ])
        .expect("valid task set");
        for id in [0u32, 1] {
            let a = WcrtAnalyzer::default()
                .analyze_task(&set, TaskId(id), &ExactEngine::default())
                .expect("two-task analysis converges");
            let t = set.get(TaskId(id)).expect("task id is in the set");
            assert!(a.wcrt >= t.copy_in() + t.exec() + t.copy_out());
        }
    }

    #[test]
    fn hp_task_unaffected_by_lp_exec_time_growth_beyond_blocking() {
        // Growing an lp task's WCET grows the hp task's bound linearly
        // through one (NLS: via two intervals) blocking term, but the
        // budget caps it at one execution.
        let mk = |c_lp: i64| {
            TaskSet::new(vec![
                test_task(0, 10, 2, 2, 10_000, 0, false),
                test_task(1, c_lp, 2, 2, 10_000, 1, false),
            ])
            .expect("valid task set")
        };
        let engine = ExactEngine::default();
        let a100 = WcrtAnalyzer::default()
            .analyze_task(&mk(100), TaskId(0), &engine)
            .expect("analysis converges for C_lp = 100");
        let a200 = WcrtAnalyzer::default()
            .analyze_task(&mk(200), TaskId(0), &engine)
            .expect("analysis converges for C_lp = 200");
        // One extra blocking execution of +100.
        assert_eq!(a200.wcrt - a100.wcrt, Time::from_ticks(100));
    }

    #[test]
    fn ls_marking_reduces_wcrt_under_heavy_lp_blocking() {
        let base = vec![
            test_task(0, 10, 2, 2, 10_000, 0, false),
            test_task(1, 300, 2, 2, 10_000, 1, false),
            test_task(2, 400, 2, 2, 10_000, 2, false),
        ];
        let nls_set = TaskSet::new(base.clone()).expect("valid task set");
        let ls_set = nls_set
            .with_sensitivity(TaskId(0), Sensitivity::Ls)
            .expect("τ0 is in the set");
        let engine = ExactEngine::default();
        let nls = WcrtAnalyzer::default()
            .analyze_task(&nls_set, TaskId(0), &engine)
            .expect("NLS analysis converges");
        let ls = WcrtAnalyzer::default()
            .analyze_task(&ls_set, TaskId(0), &engine)
            .expect("LS analysis converges");
        assert!(ls.case_b_response.is_some());
        assert!(
            ls.wcrt < nls.wcrt,
            "LS ({}) must beat NLS ({}) with two heavy lp tasks",
            ls.wcrt,
            nls.wcrt
        );
    }

    #[test]
    fn deadline_miss_reported_not_erred() {
        // Utilization far above 1 → the lowest-priority task misses.
        let set = TaskSet::new(vec![
            test_task(0, 90, 5, 5, 100, 0, false),
            test_task(1, 90, 5, 5, 100, 1, false),
        ])
        .expect("valid task set");
        let a = WcrtAnalyzer::default()
            .analyze_task(&set, TaskId(1), &ExactEngine::default())
            .expect("a deadline miss is a result, not an error");
        assert!(!a.schedulable);
        assert!(
            a.wcrt
                > set
                    .get(TaskId(1))
                    .expect("task id is in the set")
                    .deadline()
        );
    }

    #[test]
    fn iterations_are_counted() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 400, 1, false),
        ])
        .expect("valid task set");
        let a = WcrtAnalyzer::default()
            .analyze_task(&set, TaskId(1), &ExactEngine::default())
            .expect("two-task analysis converges");
        assert!(a.iterations >= 1);
    }
}
