//! Partitioned-multiprocessor support.
//!
//! The paper's model is partitioned scheduling: tasks are statically
//! assigned to cores and every core is analyzed in isolation
//! (Section II). This module provides the partitioning step itself —
//! bin-packing heuristics with the schedulability analysis as admission
//! test — and whole-platform analysis.

use std::fmt;

use pmcs_model::{Platform, Task, TaskId, TaskSet};

use crate::error::CoreError;
use crate::schedulability::{analyze_task_set, SchedulabilityReport};
use crate::wcrt::DelayEngine;

/// Bin-packing heuristic used to pick the target core for each task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// First core (in index order) that admits the task.
    FirstFit,
    /// Admitting core with the highest current utilization (tightest fit).
    BestFit,
    /// Admitting core with the lowest current utilization (load spread).
    WorstFit,
}

impl fmt::Display for Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Heuristic::FirstFit => "first-fit",
            Heuristic::BestFit => "best-fit",
            Heuristic::WorstFit => "worst-fit",
        })
    }
}

/// Outcome of [`partition`].
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// The resulting platform (one task set per core).
    pub platform: Platform,
    /// Per-core schedulability reports under the final assignment.
    pub reports: Vec<SchedulabilityReport>,
}

impl Partitioning {
    /// `true` iff every core is schedulable.
    pub fn schedulable(&self) -> bool {
        self.reports.iter().all(SchedulabilityReport::schedulable)
    }
}

/// Error: a task could not be placed on any core.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionError {
    /// The task that does not fit anywhere.
    pub task: TaskId,
    /// Cores tried.
    pub cores: usize,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} is not schedulable on any of the {} cores",
            self.task, self.cores
        )
    }
}

impl std::error::Error for PartitionError {}

/// Statically partitions `tasks` onto `cores` cores, using the proposed
/// protocol's greedy-LS schedulability analysis as the admission test.
///
/// Tasks are considered in decreasing-utilization order (the standard
/// bin-packing decreasing variant); a placement is admitted iff the
/// target core's task set remains schedulable *as a whole* (LS markings
/// are re-derived from scratch by the greedy algorithm on every test, so
/// earlier placements may change marking when later tasks arrive).
///
/// # Errors
///
/// Two failure kinds are kept apart in the nested result: an engine or
/// model failure aborts with `Err(CoreError)`, while an ordinary packing
/// failure (no core admits some task) is a normal outcome reported as
/// `Ok(Err(PartitionError))`.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn partition(
    tasks: Vec<Task>,
    cores: usize,
    heuristic: Heuristic,
    engine: &impl DelayEngine,
) -> Result<Result<Partitioning, PartitionError>, CoreError> {
    assert!(cores > 0, "need at least one core");
    let mut ordered = tasks;
    ordered.sort_by(|a, b| {
        b.utilization()
            .partial_cmp(&a.utilization())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut bins: Vec<Vec<Task>> = vec![Vec::new(); cores];
    for task in ordered {
        let mut admitted = false;
        for core in candidate_order(&bins, heuristic) {
            let mut trial = bins[core].clone();
            trial.push(task.clone());
            let Ok(set) = TaskSet::new(trial) else {
                continue; // duplicate priority on this core — try another
            };
            let report = analyze_task_set(&set, engine)?;
            if report.schedulable() {
                bins[core].push(task.clone());
                admitted = true;
                break;
            }
        }
        if !admitted {
            return Ok(Err(PartitionError {
                task: task.id(),
                cores,
            }));
        }
    }

    let mut builder = Platform::builder();
    let mut reports = Vec::with_capacity(cores);
    for bin in bins.into_iter().filter(|b| !b.is_empty()) {
        let set = TaskSet::new(bin).expect("admitted bins are valid sets");
        reports.push(analyze_task_set(&set, engine)?);
        builder = builder.core(set);
    }
    let platform = builder.build().map_err(CoreError::from)?;
    Ok(Ok(Partitioning { platform, reports }))
}

/// Candidate core order for one placement.
fn candidate_order(bins: &[Vec<Task>], heuristic: Heuristic) -> Vec<usize> {
    let mut order: Vec<usize> = (0..bins.len()).collect();
    let util = |core: usize| -> f64 { bins[core].iter().map(Task::utilization).sum() };
    match heuristic {
        Heuristic::FirstFit => {}
        Heuristic::BestFit => {
            order.sort_by(|&a, &b| {
                util(b)
                    .partial_cmp(&util(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        Heuristic::WorstFit => {
            order.sort_by(|&a, &b| {
                util(a)
                    .partial_cmp(&util(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
    }
    order
}

/// Analyzes every core of an already-partitioned platform.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn analyze_platform(
    platform: &Platform,
    engine: &impl DelayEngine,
) -> Result<Vec<SchedulabilityReport>, CoreError> {
    platform
        .iter()
        .map(|(_, set)| analyze_task_set(set, engine))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::window::test_task;

    fn tasks(n: u32) -> Vec<Task> {
        (0..n)
            .map(|i| test_task(i, 30 + 5 * i as i64, 5, 5, 200 + 10 * i as i64, i, false))
            .collect()
    }

    #[test]
    fn single_core_partitioning_matches_direct_analysis() {
        let ts = tasks(3);
        let engine = ExactEngine::default();
        let result = partition(ts.clone(), 1, Heuristic::FirstFit, &engine)
            .unwrap()
            .unwrap();
        assert_eq!(result.platform.num_cores(), 1);
        assert!(result.schedulable());
        let direct = analyze_task_set(&TaskSet::new(ts).unwrap(), &engine).unwrap();
        assert_eq!(direct.schedulable(), result.schedulable());
    }

    #[test]
    fn overload_spreads_across_cores() {
        // Six tasks that cannot share one core but fit on two.
        let ts: Vec<Task> = (0..6)
            .map(|i| test_task(i, 40, 8, 8, 150, i, false))
            .collect();
        let engine = ExactEngine::default();
        assert!(
            partition(ts.clone(), 1, Heuristic::FirstFit, &engine)
                .unwrap()
                .is_err(),
            "six 27%-utilization tasks with heavy blocking cannot share one core"
        );
        let two = partition(ts, 3, Heuristic::WorstFit, &engine)
            .unwrap()
            .unwrap();
        assert!(two.schedulable());
        assert!(two.platform.num_cores() >= 2);
    }

    #[test]
    fn heuristics_produce_valid_partitions() {
        let ts = tasks(5);
        let engine = ExactEngine::default();
        for h in [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit] {
            let p = partition(ts.clone(), 2, h, &engine).unwrap().unwrap();
            assert!(p.schedulable(), "{h}");
            let total: usize = p.platform.iter().map(|(_, s)| s.len()).sum();
            assert_eq!(total, 5, "{h}: every task placed exactly once");
        }
    }

    #[test]
    fn worst_fit_spreads_best_fit_packs() {
        let ts = tasks(4);
        let engine = ExactEngine::default();
        let wf = partition(ts.clone(), 4, Heuristic::WorstFit, &engine)
            .unwrap()
            .unwrap();
        let bf = partition(ts, 4, Heuristic::BestFit, &engine)
            .unwrap()
            .unwrap();
        // Worst-fit uses at least as many cores as best-fit.
        assert!(wf.platform.num_cores() >= bf.platform.num_cores());
    }

    #[test]
    fn analyze_platform_covers_all_cores() {
        let ts = tasks(4);
        let engine = ExactEngine::default();
        let p = partition(ts, 2, Heuristic::WorstFit, &engine)
            .unwrap()
            .unwrap();
        let reports = analyze_platform(&p.platform, &engine).unwrap();
        assert_eq!(reports.len(), p.platform.num_cores());
    }

    #[test]
    fn partition_error_displays_task() {
        let err = PartitionError {
            task: TaskId(7),
            cores: 2,
        };
        assert!(err.to_string().contains("τ7"));
    }
}
