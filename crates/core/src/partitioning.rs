//! Partitioned-multiprocessor support.
//!
//! The paper's model is partitioned scheduling: tasks are statically
//! assigned to cores and every core is analyzed in isolation
//! (Section II). This module provides the partitioning step itself —
//! bin-packing heuristics with the schedulability analysis as admission
//! test — and whole-platform analysis.
//!
//! On a platform with a regulated shared bus ([`BusModel::regulated`])
//! the admission test is contention-aware: every candidate placement is
//! analyzed under the copy-phase inflation *induced by that candidate
//! assignment* ([`partition_regulated`]), and [`assign_budgets`]
//! searches the regulation knob itself — a deterministic descent over
//! uniform per-core budget levels, accepting the first one that yields
//! a schedulable partition.

use std::fmt;

use pmcs_model::{BusModel, CoreId, ModelError, Platform, Task, TaskId, TaskSet, Time};

use crate::contention::Inflation;
use crate::error::CoreError;
use crate::schedulability::{analyze_task_set, SchedulabilityReport};
use crate::wcrt::DelayEngine;

/// Bin-packing heuristic used to pick the target core for each task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// First core (in index order) that admits the task.
    FirstFit,
    /// Admitting core with the highest current utilization (tightest fit).
    BestFit,
    /// Admitting core with the lowest current utilization (load spread).
    WorstFit,
}

impl Heuristic {
    /// All heuristics, in the order they are usually swept.
    pub const ALL: [Heuristic; 3] = [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit];

    /// Parses the [`fmt::Display`] names (`first-fit`, `best-fit`,
    /// `worst-fit`) plus the short forms `ff`/`bf`/`wf`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "first-fit" | "ff" => Some(Heuristic::FirstFit),
            "best-fit" | "bf" => Some(Heuristic::BestFit),
            "worst-fit" | "wf" => Some(Heuristic::WorstFit),
            _ => None,
        }
    }
}

impl fmt::Display for Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Heuristic::FirstFit => "first-fit",
            Heuristic::BestFit => "best-fit",
            Heuristic::WorstFit => "worst-fit",
        })
    }
}

/// Outcome of [`partition`].
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// The resulting platform (one task set per core).
    pub platform: Platform,
    /// Per-core schedulability reports under the final assignment.
    pub reports: Vec<SchedulabilityReport>,
}

impl Partitioning {
    /// `true` iff every core is schedulable.
    pub fn schedulable(&self) -> bool {
        self.reports.iter().all(SchedulabilityReport::schedulable)
    }
}

/// Error: a task could not be placed on any core.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionError {
    /// The task that does not fit anywhere.
    pub task: TaskId,
    /// Cores tried.
    pub cores: usize,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} is not schedulable on any of the {} cores",
            self.task, self.cores
        )
    }
}

impl std::error::Error for PartitionError {}

/// Statically partitions `tasks` onto `cores` cores, using the proposed
/// protocol's greedy-LS schedulability analysis as the admission test.
///
/// Tasks are considered in decreasing-utilization order (the standard
/// bin-packing decreasing variant); a placement is admitted iff the
/// target core's task set remains schedulable *as a whole* (LS markings
/// are re-derived from scratch by the greedy algorithm on every test, so
/// earlier placements may change marking when later tasks arrive).
///
/// # Errors
///
/// Two failure kinds are kept apart in the nested result: an engine or
/// model failure aborts with `Err(CoreError)`, while an ordinary packing
/// failure (no core admits some task) is a normal outcome reported as
/// `Ok(Err(PartitionError))`.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn partition(
    tasks: Vec<Task>,
    cores: usize,
    heuristic: Heuristic,
    engine: &impl DelayEngine,
) -> Result<Result<Partitioning, PartitionError>, CoreError> {
    assert!(cores > 0, "need at least one core");
    let mut ordered = tasks;
    ordered.sort_by(|a, b| {
        b.utilization()
            .partial_cmp(&a.utilization())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut bins: Vec<Vec<Task>> = vec![Vec::new(); cores];
    for task in ordered {
        let mut admitted = false;
        for core in candidate_order(&bins, heuristic) {
            let mut trial = bins[core].clone();
            trial.push(task.clone());
            let Ok(set) = TaskSet::new(trial) else {
                continue; // duplicate priority on this core — try another
            };
            let report = analyze_task_set(&set, engine)?;
            if report.schedulable() {
                bins[core].push(task.clone());
                admitted = true;
                break;
            }
        }
        if !admitted {
            return Ok(Err(PartitionError {
                task: task.id(),
                cores,
            }));
        }
    }

    let mut builder = Platform::builder();
    let mut reports = Vec::with_capacity(cores);
    for bin in bins.into_iter().filter(|b| !b.is_empty()) {
        let set = TaskSet::new(bin).expect("admitted bins are valid sets");
        reports.push(analyze_task_set(&set, engine)?);
        builder = builder.core(set);
    }
    let platform = builder.build().map_err(CoreError::from)?;
    Ok(Ok(Partitioning { platform, reports }))
}

/// Statically partitions `tasks` onto `cores` cores sharing `bus`, with
/// a contention-aware admission test: every candidate placement is
/// analyzed under the copy-phase inflation *induced by that candidate
/// assignment* ([`Inflation::for_core_among`], counting only non-empty
/// cores as contenders). Placing a task on a previously empty core
/// raises every other core's inflation, so such placements additionally
/// re-verify all already-populated cores before being admitted.
///
/// With a contention-free `bus` this is exactly [`partition`]. The
/// returned platform carries the bus restricted to its non-empty cores,
/// and the reports are the per-core analyses of the inflated sets.
///
/// # Errors
///
/// Same convention as [`partition`], plus [`CoreError::Model`] with
/// [`ModelError::InvalidBus`] when a regulated `bus` does not cover
/// exactly `cores` cores.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn partition_regulated(
    tasks: Vec<Task>,
    cores: usize,
    bus: &BusModel,
    heuristic: Heuristic,
    engine: &impl DelayEngine,
) -> Result<Result<Partitioning, PartitionError>, CoreError> {
    assert!(cores > 0, "need at least one core");
    if bus.is_contention_free() {
        return partition(tasks, cores, heuristic, engine);
    }
    if bus.num_cores() != cores {
        return Err(CoreError::Model(ModelError::InvalidBus {
            reason: format!(
                "bus regulates {} core(s) but partitioning onto {}",
                bus.num_cores(),
                cores
            ),
        }));
    }
    let mut ordered = tasks;
    ordered.sort_by(|a, b| {
        b.utilization()
            .partial_cmp(&a.utilization())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut bins: Vec<Vec<Task>> = vec![Vec::new(); cores];
    for task in ordered {
        let mut admitted = false;
        for core in candidate_order(&bins, heuristic) {
            let mut trial = bins[core].clone();
            trial.push(task.clone());
            let Ok(set) = TaskSet::new(trial) else {
                continue; // duplicate priority on this core — try another
            };
            let mut active: Vec<bool> = bins.iter().map(|b| !b.is_empty()).collect();
            let newly_active = !active[core];
            active[core] = true;
            let infl = Inflation::for_core_among(bus, CoreId(core as u32), &active);
            if !analyze_task_set(&infl.inflate_set(&set)?, engine)?.schedulable() {
                continue;
            }
            // Activating a fresh core adds its budget to everyone
            // else's contention, so the placements admitted so far must
            // survive the raised inflation too.
            if newly_active && !rivals_still_schedulable(&bins, bus, &active, core, engine)? {
                continue;
            }
            bins[core].push(task.clone());
            admitted = true;
            break;
        }
        if !admitted {
            return Ok(Err(PartitionError {
                task: task.id(),
                cores,
            }));
        }
    }

    let keep: Vec<bool> = bins.iter().map(|b| !b.is_empty()).collect();
    let restricted = bus.restrict(&keep).map_err(CoreError::from)?;
    let mut builder = Platform::builder().bus(restricted.clone());
    let mut reports = Vec::new();
    for (kept, bin) in bins.into_iter().filter(|b| !b.is_empty()).enumerate() {
        let set = TaskSet::new(bin).expect("admitted bins are valid sets");
        let infl = Inflation::for_core(&restricted, CoreId(kept as u32));
        reports.push(analyze_task_set(&infl.inflate_set(&set)?, engine)?);
        builder = builder.core(set);
    }
    let platform = builder.build().map_err(CoreError::from)?;
    Ok(Ok(Partitioning { platform, reports }))
}

/// Re-analyzes every populated core except `placed` under the `active`
/// contention map; `true` iff all stay schedulable.
fn rivals_still_schedulable(
    bins: &[Vec<Task>],
    bus: &BusModel,
    active: &[bool],
    placed: usize,
    engine: &impl DelayEngine,
) -> Result<bool, CoreError> {
    for (m, bin) in bins.iter().enumerate() {
        if m == placed || bin.is_empty() {
            continue;
        }
        let set = TaskSet::new(bin.clone()).expect("admitted bins are valid sets");
        let infl = Inflation::for_core_among(bus, CoreId(m as u32), active);
        if !analyze_task_set(&infl.inflate_set(&set)?, engine)?.schedulable() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// One uniform budget level tried by [`assign_budgets`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetAttempt {
    /// Per-core budget `Q` tried (same for every core).
    pub budget: Time,
    /// Whether partitioning under this budget was fully schedulable.
    pub schedulable: bool,
}

/// Outcome of the budget-assignment search ([`assign_budgets`]).
#[derive(Debug, Clone)]
pub struct BudgetSearch {
    /// Budget levels tried, in search order (most generous first).
    pub attempts: Vec<BudgetAttempt>,
    /// The first schedulable partition found, if any; its platform
    /// carries the winning bus.
    pub solution: Option<Partitioning>,
}

/// Fractions of the fair share `P / cores` tried by [`assign_budgets`],
/// most generous first: 100%, 75%, 50%, 25%.
const BUDGET_LEVELS: &[(i64, i64)] = &[(1, 1), (3, 4), (1, 2), (1, 4)];

/// Searches the regulation knob: tries uniform per-core budgets at
/// descending fractions of the fair share `period / cores`
/// ([`BUDGET_LEVELS`]: 100%, 75%, 50%, 25%), partitioning with
/// [`partition_regulated`] at each level, and stops at the first fully
/// schedulable partition. The descent is deterministic, so identical
/// inputs always select the same budget.
///
/// # Errors
///
/// Propagates engine and model failures; packing failures at one level
/// are a normal outcome recorded in the attempt log.
///
/// # Panics
///
/// Panics if `cores` is zero or `period` is not positive.
pub fn assign_budgets(
    tasks: Vec<Task>,
    cores: usize,
    period: Time,
    heuristic: Heuristic,
    engine: &impl DelayEngine,
) -> Result<BudgetSearch, CoreError> {
    assert!(cores > 0, "need at least one core");
    assert!(period > Time::ZERO, "need a positive replenishment period");
    let share = period.as_ticks() / cores as i64;
    let mut attempts: Vec<BudgetAttempt> = Vec::new();
    for &(num, den) in BUDGET_LEVELS {
        let q = Time::from_ticks((share * num / den).max(1));
        if attempts.iter().any(|a| a.budget == q) {
            continue; // tiny shares collapse adjacent levels
        }
        let bus = BusModel::uniform(period, cores, q).map_err(CoreError::from)?;
        let outcome = partition_regulated(tasks.clone(), cores, &bus, heuristic, engine)?;
        let solution = outcome.ok().filter(Partitioning::schedulable);
        attempts.push(BudgetAttempt {
            budget: q,
            schedulable: solution.is_some(),
        });
        if solution.is_some() {
            return Ok(BudgetSearch { attempts, solution });
        }
    }
    Ok(BudgetSearch {
        attempts,
        solution: None,
    })
}

/// Candidate core order for one placement.
fn candidate_order(bins: &[Vec<Task>], heuristic: Heuristic) -> Vec<usize> {
    let mut order: Vec<usize> = (0..bins.len()).collect();
    let util = |core: usize| -> f64 { bins[core].iter().map(Task::utilization).sum() };
    match heuristic {
        Heuristic::FirstFit => {}
        Heuristic::BestFit => {
            order.sort_by(|&a, &b| {
                util(b)
                    .partial_cmp(&util(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        Heuristic::WorstFit => {
            order.sort_by(|&a, &b| {
                util(a)
                    .partial_cmp(&util(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
    }
    order
}

/// Analyzes every core of an already-partitioned platform.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn analyze_platform(
    platform: &Platform,
    engine: &impl DelayEngine,
) -> Result<Vec<SchedulabilityReport>, CoreError> {
    platform
        .iter()
        .map(|(_, set)| analyze_task_set(set, engine))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::window::test_task;

    fn tasks(n: u32) -> Vec<Task> {
        (0..n)
            .map(|i| test_task(i, 30 + 5 * i as i64, 5, 5, 200 + 10 * i as i64, i, false))
            .collect()
    }

    #[test]
    fn single_core_partitioning_matches_direct_analysis() {
        let ts = tasks(3);
        let engine = ExactEngine::default();
        let result = partition(ts.clone(), 1, Heuristic::FirstFit, &engine)
            .unwrap()
            .unwrap();
        assert_eq!(result.platform.num_cores(), 1);
        assert!(result.schedulable());
        let direct = analyze_task_set(&TaskSet::new(ts).unwrap(), &engine).unwrap();
        assert_eq!(direct.schedulable(), result.schedulable());
    }

    #[test]
    fn overload_spreads_across_cores() {
        // Six tasks that cannot share one core but fit on two.
        let ts: Vec<Task> = (0..6)
            .map(|i| test_task(i, 40, 8, 8, 150, i, false))
            .collect();
        let engine = ExactEngine::default();
        assert!(
            partition(ts.clone(), 1, Heuristic::FirstFit, &engine)
                .unwrap()
                .is_err(),
            "six 27%-utilization tasks with heavy blocking cannot share one core"
        );
        let two = partition(ts, 3, Heuristic::WorstFit, &engine)
            .unwrap()
            .unwrap();
        assert!(two.schedulable());
        assert!(two.platform.num_cores() >= 2);
    }

    #[test]
    fn heuristics_produce_valid_partitions() {
        let ts = tasks(5);
        let engine = ExactEngine::default();
        for h in [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit] {
            let p = partition(ts.clone(), 2, h, &engine).unwrap().unwrap();
            assert!(p.schedulable(), "{h}");
            let total: usize = p.platform.iter().map(|(_, s)| s.len()).sum();
            assert_eq!(total, 5, "{h}: every task placed exactly once");
        }
    }

    #[test]
    fn worst_fit_spreads_best_fit_packs() {
        let ts = tasks(4);
        let engine = ExactEngine::default();
        let wf = partition(ts.clone(), 4, Heuristic::WorstFit, &engine)
            .unwrap()
            .unwrap();
        let bf = partition(ts, 4, Heuristic::BestFit, &engine)
            .unwrap()
            .unwrap();
        // Worst-fit uses at least as many cores as best-fit.
        assert!(wf.platform.num_cores() >= bf.platform.num_cores());
    }

    #[test]
    fn analyze_platform_covers_all_cores() {
        let ts = tasks(4);
        let engine = ExactEngine::default();
        let p = partition(ts, 2, Heuristic::WorstFit, &engine)
            .unwrap()
            .unwrap();
        let reports = analyze_platform(&p.platform, &engine).unwrap();
        assert_eq!(reports.len(), p.platform.num_cores());
    }

    #[test]
    fn heuristic_parse_roundtrips() {
        for h in Heuristic::ALL {
            assert_eq!(Heuristic::parse(&h.to_string()), Some(h));
        }
        assert_eq!(Heuristic::parse("ff"), Some(Heuristic::FirstFit));
        assert_eq!(Heuristic::parse("nope"), None);
    }

    #[test]
    fn contention_free_bus_partitions_exactly_like_partition() {
        let ts = tasks(5);
        let engine = ExactEngine::default();
        let plain = partition(ts.clone(), 2, Heuristic::BestFit, &engine)
            .unwrap()
            .unwrap();
        let free = partition_regulated(
            ts,
            2,
            &BusModel::contention_free(),
            Heuristic::BestFit,
            &engine,
        )
        .unwrap()
        .unwrap();
        assert_eq!(plain.platform, free.platform);
    }

    #[test]
    fn regulated_bus_must_cover_the_cores() {
        let bus = BusModel::uniform(Time::from_ticks(100), 3, Time::from_ticks(10)).unwrap();
        let err = partition_regulated(
            tasks(2),
            2,
            &bus,
            Heuristic::FirstFit,
            &ExactEngine::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::Model(ModelError::InvalidBus { .. })),
            "{err}"
        );
    }

    #[test]
    fn contention_shrinks_what_fits() {
        // Two cores, heavy copy phases: fine on a crossbar, hopeless
        // under a starved regulated bus (tiny budgets inflate every
        // copy phase past the deadlines).
        let ts: Vec<Task> = (0..2)
            .map(|i| test_task(i, 30, 20, 20, 300, i, false))
            .collect();
        let engine = ExactEngine::default();
        let free = partition_regulated(
            ts.clone(),
            2,
            &BusModel::contention_free(),
            Heuristic::WorstFit,
            &engine,
        )
        .unwrap()
        .unwrap();
        assert!(free.schedulable());
        let starved = BusModel::uniform(Time::from_ticks(200), 2, Time::from_ticks(2)).unwrap();
        let packed = partition_regulated(ts, 2, &starved, Heuristic::WorstFit, &engine).unwrap();
        match packed {
            Err(_) => {}
            Ok(p) => assert!(
                !p.schedulable() || p.platform.num_cores() == 1,
                "a starved bus cannot admit both cores"
            ),
        }
    }

    #[test]
    fn regulated_platform_carries_the_restricted_bus() {
        let ts = tasks(2);
        let engine = ExactEngine::default();
        let bus = BusModel::uniform(Time::from_ticks(1_000), 4, Time::from_ticks(250)).unwrap();
        let p = partition_regulated(ts, 4, &bus, Heuristic::FirstFit, &engine)
            .unwrap()
            .unwrap();
        let platform_bus = p.platform.bus();
        assert_eq!(platform_bus.num_cores(), p.platform.num_cores());
        assert_eq!(platform_bus.period(), Some(Time::from_ticks(1_000)));
    }

    #[test]
    fn budget_search_descends_until_schedulable() {
        let ts = tasks(3);
        let engine = ExactEngine::default();
        let search =
            assign_budgets(ts, 2, Time::from_ticks(200), Heuristic::WorstFit, &engine).unwrap();
        assert!(!search.attempts.is_empty());
        if let Some(p) = &search.solution {
            let winner = search.attempts.last().unwrap();
            assert!(winner.schedulable);
            assert_eq!(
                p.platform.bus().budgets().first().copied(),
                Some(winner.budget)
            );
            // Everything before the winner failed.
            for a in &search.attempts[..search.attempts.len() - 1] {
                assert!(!a.schedulable);
            }
        }
    }

    #[test]
    fn partition_error_displays_task() {
        let err = PartitionError {
            task: TaskId(7),
            cores: 2,
        };
        assert!(err.to_string().contains("τ7"));
    }
}
