//! Incremental schedulability analysis sessions.
//!
//! Admission control is a stream of small edits to one task set: a new
//! task asks to join a core, a finished task leaves, a parameter change
//! re-prices an existing one. Re-running [`analyze_task_set`] from
//! scratch after every edit repeats almost all of the work — most tasks'
//! analysis inputs did not change. An [`AnalysisSession`] keeps the task
//! set *and* a content-addressed [`VerdictCache`] alive across edits:
//! every per-task fixed point computed by any greedy round of any
//! operation is stored under a canonical [`VerdictKey`], and later
//! operations reuse it whenever the same task shape faces the same
//! competitor configuration again.
//!
//! ## Invalidation
//!
//! There is no explicit invalidation. The key captures everything a
//! per-task analysis may read — the target's full parameters and every
//! competitor's execution shape, arrival model, rank-normalized priority
//! and *canonicalized* LS marking — so an edit that changes a task's
//! analysis inputs changes its key and misses, while untouched
//! configurations keep hitting. Marking canonicalization delegates to
//! [`promotion_affects`]: a competitor's LS flag is dropped from the key
//! exactly when that predicate proves the flag inert for the analyzed
//! task, so verdicts survive inert promotions across operations for the
//! same reason they are reused across greedy rounds. Competitor
//! *deadlines* are deliberately excluded — no window or fixed point of
//! the analyzed task ever reads them — so a deadline-only edit of one
//! task invalidates nothing else.
//!
//! ## One code path
//!
//! [`analyze_task_set`] is the trivial session: admit every task into a
//! fresh session and read the report. Batch and incremental analysis
//! therefore exercise the same greedy loop
//! ([`schedulability::greedy_analyze`](crate::schedulability)), and the
//! differential property test in `tests/session_differential.rs` drives
//! random edit sequences against the from-scratch analyzer.
//!
//! [`analyze_task_set`]: crate::analyze_task_set
//! [`promotion_affects`]: crate::schedulability::promotion_affects

use std::collections::HashMap;

use pmcs_model::{ArrivalModel, Task, TaskId, TaskSet};

use crate::cache::CacheStats;
use crate::error::CoreError;
use crate::schedulability::{greedy_analyze, promotion_affects, SchedulabilityReport};
use crate::wcrt::{DelayEngine, TaskAnalysis};

/// One competitor as seen by a [`VerdictKey`]: everything the analyzed
/// task's windows may read from it, id dropped, priority rank-normalized
/// and LS marking canonicalized (deadline deliberately absent).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CompetitorKey {
    exec: i64,
    copy_in: i64,
    copy_out: i64,
    arrival: ArrivalModel,
    /// Canonicalized marking: the raw flag survives only when
    /// [`promotion_affects`] proves it can influence the analyzed task.
    ls: bool,
    prio_rank: u32,
}

/// Canonical content key of one per-task analysis: the target's full
/// parameters plus every competitor's [`CompetitorKey`] in decreasing
/// priority order.
///
/// Equal keys imply identical [`TaskAnalysis`] outcomes: the WCRT fixed
/// point reads the target's execution shape, arrival, deadline, marking
/// and relative priority, and the competitors' shapes, arrivals,
/// markings and relative priorities — each present verbatim or
/// rank-normalized. Task identifiers never influence an engine, so they
/// are excluded and the cached analysis is relabeled on a hit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct VerdictKey {
    target: CompetitorKey,
    deadline: i64,
    competitors: Vec<CompetitorKey>,
}

impl VerdictKey {
    /// Builds the canonical key for analyzing `target` within `set`
    /// under the set's current markings.
    pub(crate) fn of(set: &TaskSet, target: TaskId) -> Self {
        let mut prios: Vec<u32> = set.iter().map(|t| t.priority().0).collect();
        prios.sort_unstable();
        let rank = |p: u32| -> u32 {
            prios
                .binary_search(&p)
                .expect("priority present by construction") as u32
        };
        let mut target_key = None;
        let mut competitors = Vec::with_capacity(set.len().saturating_sub(1));
        for t in set.iter() {
            let key = CompetitorKey {
                exec: t.exec().as_ticks(),
                copy_in: t.copy_in().as_ticks(),
                copy_out: t.copy_out().as_ticks(),
                arrival: t.arrival().clone(),
                ls: if t.id() == target {
                    // The target's own marking selects the analysis case
                    // (NLS vs LS case a/b) — always significant.
                    t.is_ls()
                } else {
                    t.is_ls() && promotion_affects(set, t.id(), target)
                },
                prio_rank: rank(t.priority().0),
            };
            if t.id() == target {
                target_key = Some((key, t.deadline().as_ticks()));
            } else {
                competitors.push(key);
            }
        }
        let (target, deadline) = target_key.expect("target task in set");
        VerdictKey {
            target,
            deadline,
            competitors,
        }
    }
}

/// Memo of per-task analyses keyed by [`VerdictKey`].
///
/// The session-level analogue of the window-level
/// [`DelayCache`](crate::DelayCache): entries are content-addressed and
/// never go stale, so the only eviction is a wholesale clear when the
/// entry budget is exceeded.
#[derive(Debug, Default)]
pub(crate) struct VerdictCache {
    map: HashMap<VerdictKey, TaskAnalysis>,
    stats: CacheStats,
    max_entries: usize,
}

impl VerdictCache {
    const DEFAULT_MAX_ENTRIES: usize = 1 << 16;

    pub(crate) fn new() -> Self {
        VerdictCache {
            map: HashMap::new(),
            stats: CacheStats::default(),
            max_entries: Self::DEFAULT_MAX_ENTRIES,
        }
    }

    /// Looks up an analysis, relabeling it to `target` on a hit.
    pub(crate) fn get(&mut self, key: &VerdictKey, target: TaskId) -> Option<TaskAnalysis> {
        match self.map.get(key) {
            Some(a) => {
                self.stats.hits += 1;
                let mut a = a.clone();
                a.task = target;
                Some(a)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: VerdictKey, analysis: TaskAnalysis) {
        if self.map.len() >= self.max_entries {
            self.stats.evictions += self.map.len() as u64;
            self.map.clear();
        }
        self.map.insert(key, analysis);
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Counters of one [`AnalysisSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Mutating operations applied (admits, removes, updates; bulk
    /// admits count once).
    pub ops: u64,
    /// Per-task analyses served from the session's verdict cache instead
    /// of re-running the fixed point.
    pub verdicts_reused: u64,
    /// Per-task analyses computed fresh.
    pub verdicts_fresh: u64,
    /// Greedy rounds run across all operations.
    pub rounds: u64,
}

impl SessionStats {
    /// `verdicts_reused / (verdicts_reused + verdicts_fresh)`, or `0.0`
    /// before the first analysis — the session's incremental-vs-scratch
    /// reuse rate.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.verdicts_reused + self.verdicts_fresh;
        if total == 0 {
            0.0
        } else {
            self.verdicts_reused as f64 / total as f64
        }
    }
}

/// A stateful, incrementally-updated schedulability analysis.
///
/// Owns a task set, the current [`SchedulabilityReport`] (verdicts plus
/// LS assignment), and a [`VerdictCache`] reused across operations. Every
/// mutating operation re-runs the greedy LS-marking loop — the same code
/// path as [`analyze_task_set`](crate::analyze_task_set) — but only the
/// dirty subset of per-task fixed points is recomputed: clean ones hit
/// the verdict cache (see the module docs for the invalidation rule).
///
/// Operations are transactional: on any error (invalid task set, engine
/// failure, capacity) the session's task set and report are unchanged.
///
/// # Example
///
/// ```
/// use pmcs_core::{AnalysisSession, ExactEngine};
/// use pmcs_core::window::test_task;
///
/// let mut session = AnalysisSession::new(ExactEngine::default());
/// session.admit(test_task(0, 10, 2, 2, 100, 0, false))?;
/// let report = session.admit(test_task(1, 20, 4, 4, 200, 1, false))?;
/// assert!(report.schedulable());
/// session.remove(pmcs_model::TaskId(0))?;
/// assert_eq!(session.report().verdicts().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct AnalysisSession<E> {
    engine: E,
    tasks: Vec<Task>,
    capacity: Option<usize>,
    cache: VerdictCache,
    report: SchedulabilityReport,
    ops: u64,
    rounds: u64,
}

impl<E: DelayEngine> AnalysisSession<E> {
    /// Creates an empty session with unbounded capacity.
    pub fn new(engine: E) -> Self {
        AnalysisSession {
            engine,
            tasks: Vec::new(),
            capacity: None,
            cache: VerdictCache::new(),
            report: SchedulabilityReport::empty(),
            ops: 0,
            rounds: 0,
        }
    }

    /// Creates an empty session that rejects admits beyond `capacity`
    /// tasks with [`CoreError::SessionCapacity`].
    pub fn with_capacity(engine: E, capacity: usize) -> Self {
        let mut s = AnalysisSession::new(engine);
        s.capacity = Some(capacity);
        s
    }

    /// The delay engine answering this session's window queries.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Number of admitted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff no task is admitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// `true` iff `id` is admitted.
    pub fn contains(&self, id: TaskId) -> bool {
        self.tasks.iter().any(|t| t.id() == id)
    }

    /// The admitted tasks, in decreasing priority order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The report for the current task set. For an empty session this is
    /// the trivially-schedulable empty report with zero rounds.
    pub fn report(&self) -> &SchedulabilityReport {
        &self.report
    }

    /// Consumes the session, returning the final report.
    pub fn into_report(self) -> SchedulabilityReport {
        self.report
    }

    /// Operation and verdict-reuse counters.
    pub fn stats(&self) -> SessionStats {
        let cache = self.cache.stats();
        SessionStats {
            ops: self.ops,
            verdicts_reused: cache.hits,
            verdicts_fresh: cache.misses,
            rounds: self.rounds,
        }
    }

    /// Admits one task and re-analyzes.
    ///
    /// The task stays admitted even when the resulting report is
    /// unschedulable — admission *policy* (e.g. reject-on-miss) is the
    /// caller's; [`remove`](AnalysisSession::remove) undoes the admit.
    ///
    /// # Errors
    ///
    /// [`CoreError::SessionCapacity`] at capacity,
    /// [`CoreError::Model`] for duplicate ids or priorities, and engine
    /// errors from the re-analysis; the session is unchanged on error.
    pub fn admit(&mut self, task: Task) -> Result<&SchedulabilityReport, CoreError> {
        self.admit_all([task])
    }

    /// Admits a batch of tasks with a single re-analysis.
    ///
    /// # Errors
    ///
    /// Same as [`admit`](AnalysisSession::admit).
    pub fn admit_all(
        &mut self,
        tasks: impl IntoIterator<Item = Task>,
    ) -> Result<&SchedulabilityReport, CoreError> {
        let mut next = self.tasks.clone();
        next.extend(tasks);
        if let Some(capacity) = self.capacity {
            if next.len() > capacity {
                return Err(CoreError::SessionCapacity { capacity });
            }
        }
        self.apply(next)
    }

    /// Removes one task and re-analyzes. Removing the last task yields
    /// the empty report.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] ([`UnknownTask`](pmcs_model::ModelError)) if
    /// `id` is not admitted, and engine errors from the re-analysis; the
    /// session is unchanged on error.
    pub fn remove(&mut self, id: TaskId) -> Result<&SchedulabilityReport, CoreError> {
        if !self.contains(id) {
            return Err(CoreError::Model(pmcs_model::ModelError::UnknownTask(id)));
        }
        let next: Vec<Task> = self
            .tasks
            .iter()
            .filter(|t| t.id() != id)
            .cloned()
            .collect();
        self.apply(next)
    }

    /// Replaces the task with id `id` by `task` (which may carry a
    /// different id) and re-analyzes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] ([`UnknownTask`](pmcs_model::ModelError)) if
    /// `id` is not admitted, validation errors for the replacement, and
    /// engine errors; the session is unchanged on error.
    pub fn update(&mut self, id: TaskId, task: Task) -> Result<&SchedulabilityReport, CoreError> {
        if !self.contains(id) {
            return Err(CoreError::Model(pmcs_model::ModelError::UnknownTask(id)));
        }
        let next: Vec<Task> = self
            .tasks
            .iter()
            .filter(|t| t.id() != id)
            .cloned()
            .chain(std::iter::once(task))
            .collect();
        self.apply(next)
    }

    /// Validates `next` and re-analyzes, committing both only on success.
    fn apply(&mut self, next: Vec<Task>) -> Result<&SchedulabilityReport, CoreError> {
        let report = if next.is_empty() {
            SchedulabilityReport::empty()
        } else {
            let set = TaskSet::new(next.clone())?;
            greedy_analyze(&set, &&self.engine, true, None, Some(&mut self.cache))?
        };
        // TaskSet::new sorted its copy; mirror the order so `tasks()`
        // matches the report's verdict order.
        let mut next = next;
        next.sort_by_key(|t| t.priority());
        self.ops += 1;
        self.rounds += report.rounds() as u64;
        self.tasks = next;
        self.report = report;
        Ok(&self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::schedulability::analyze_task_set;
    use crate::window::test_task;
    use pmcs_model::ModelError;

    fn batch(tasks: &[Task]) -> SchedulabilityReport {
        let set = TaskSet::new(tasks.to_vec()).expect("valid set");
        analyze_task_set(&set, &ExactEngine::default()).expect("batch analysis")
    }

    #[test]
    fn empty_session_is_trivially_schedulable() {
        let session = AnalysisSession::new(ExactEngine::default());
        assert!(session.is_empty());
        assert!(session.report().schedulable());
        assert_eq!(session.report().rounds(), 0);
    }

    #[test]
    fn admit_remove_update_match_batch_analysis() {
        let mut session = AnalysisSession::new(ExactEngine::default());
        let t0 = test_task(0, 10, 2, 2, 100, 0, false);
        let t1 = test_task(1, 20, 4, 4, 200, 1, false);
        let t2 = test_task(2, 30, 6, 6, 300, 2, false);

        session.admit(t0.clone()).expect("admit τ0");
        assert_eq!(*session.report(), batch(&[t0.clone()]));

        session.admit(t1.clone()).expect("admit τ1");
        session.admit(t2.clone()).expect("admit τ2");
        assert_eq!(
            *session.report(),
            batch(&[t0.clone(), t1.clone(), t2.clone()])
        );

        session.remove(t1.id()).expect("remove τ1");
        assert_eq!(*session.report(), batch(&[t0.clone(), t2.clone()]));

        let t2b = test_task(2, 40, 6, 6, 300, 2, false);
        session.update(t2.id(), t2b.clone()).expect("update τ2");
        assert_eq!(*session.report(), batch(&[t0.clone(), t2b.clone()]));

        session.remove(t0.id()).expect("remove τ0");
        session.remove(t2b.id()).expect("remove τ2");
        assert!(session.is_empty());
        assert!(session.report().schedulable());
    }

    #[test]
    fn unrelated_edits_reuse_verdicts() {
        let mut session = AnalysisSession::new(ExactEngine::default());
        let t0 = test_task(0, 10, 2, 2, 100, 0, false);
        let t1 = test_task(1, 20, 4, 4, 200, 1, false);
        session.admit_all([t0, t1]).expect("bulk admit");
        let before = session.stats();
        assert_eq!(before.verdicts_reused, 0, "fresh session computes all");

        // Admitting and removing a lowest-priority task restores the
        // exact prior configuration: both verdicts must come from cache.
        let t9 = test_task(9, 1, 0, 0, 1_000, 9, false);
        session.admit(t9).expect("admit τ9");
        session.remove(TaskId(9)).expect("remove τ9");
        let after = session.stats();
        assert!(
            after.verdicts_reused >= before.verdicts_reused + 2,
            "expected ≥2 cached verdicts, stats {after:?}"
        );
        assert_eq!(after.ops, 3);
    }

    #[test]
    fn capacity_is_enforced_without_state_change() {
        let mut session = AnalysisSession::with_capacity(ExactEngine::default(), 1);
        session
            .admit(test_task(0, 10, 2, 2, 100, 0, false))
            .expect("first admit fits");
        let err = session
            .admit(test_task(1, 20, 4, 4, 200, 1, false))
            .expect_err("second admit exceeds capacity");
        assert_eq!(err, CoreError::SessionCapacity { capacity: 1 });
        assert_eq!(session.len(), 1);
    }

    #[test]
    fn duplicate_and_unknown_ids_are_rejected_transactionally() {
        let mut session = AnalysisSession::new(ExactEngine::default());
        let t0 = test_task(0, 10, 2, 2, 100, 0, false);
        session.admit(t0.clone()).expect("admit τ0");
        let report_before = session.report().clone();

        let dup = session.admit(test_task(0, 5, 1, 1, 50, 1, false));
        assert!(matches!(
            dup,
            Err(CoreError::Model(ModelError::DuplicateTaskId(_)))
        ));
        let unknown = session.remove(TaskId(7));
        assert!(matches!(
            unknown,
            Err(CoreError::Model(ModelError::UnknownTask(_)))
        ));
        assert_eq!(session.len(), 1);
        assert_eq!(*session.report(), report_before);
    }

    #[test]
    fn verdict_key_ignores_competitor_deadlines() {
        // Two sets differing only in τ1's deadline: τ0's key is equal,
        // τ1's differs.
        let mk = |deadline: i64| {
            let t = test_task(1, 20, 4, 4, 200, 1, false);
            let t1 = Task::builder(t.id())
                .exec(t.exec())
                .copy_in(t.copy_in())
                .copy_out(t.copy_out())
                .sporadic(pmcs_model::Time::from_ticks(200))
                .deadline(pmcs_model::Time::from_ticks(deadline))
                .priority(t.priority())
                .build()
                .expect("valid task");
            TaskSet::new(vec![test_task(0, 10, 2, 2, 100, 0, false), t1]).expect("valid set")
        };
        let a = mk(150);
        let b = mk(190);
        assert_eq!(VerdictKey::of(&a, TaskId(0)), VerdictKey::of(&b, TaskId(0)));
        assert_ne!(VerdictKey::of(&a, TaskId(1)), VerdictKey::of(&b, TaskId(1)));
    }

    #[test]
    fn verdict_key_canonicalizes_inert_ls_flags() {
        // τ2: zero copy-in, lowest priority → its LS flag is inert for
        // τ0's analysis but significant for its own.
        let tasks = vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 4, 4, 200, 1, false),
            test_task(2, 30, 0, 6, 300, 2, false),
        ];
        let set = TaskSet::new(tasks).expect("valid set");
        let promoted = set
            .with_sensitivity(TaskId(2), pmcs_model::Sensitivity::Ls)
            .expect("τ2 in set");
        assert_eq!(
            VerdictKey::of(&set, TaskId(0)),
            VerdictKey::of(&promoted, TaskId(0))
        );
        assert_ne!(
            VerdictKey::of(&set, TaskId(2)),
            VerdictKey::of(&promoted, TaskId(2))
        );
    }
}
