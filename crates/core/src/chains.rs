//! End-to-end latency of communicating task chains — the extension the
//! paper names as future work (Section IV: rule R2 performs every
//! copy-out as soon as possible precisely so that data outputs are
//! "communicated in a timely and predictable fashion to ensure flow
//! preservation in functional chains").
//!
//! A chain `τ_{c1} → τ_{c2} → … → τ_{cm}` passes data through the global
//! memory: each stage's copy-out publishes its output, the next stage's
//! copy-in samples it. Because the protocol completes a job only when its
//! copy-out finishes (the response time *includes* publication), classical
//! chain composition applies directly on top of the per-task WCRT bounds:
//!
//! * **Triggered chains** (each stage released by its predecessor's
//!   completion): `L = Σ R_i`.
//! * **Sampling chains** (independently activated periodic stages that
//!   read the latest published value): a fresh input written just after a
//!   stage sampled waits up to one period plus that stage's response, so
//!   `L = R_1 + Σ_{i≥2} (T_i + R_i)` — the standard bound for
//!   register-based communication.
//!
//! Stages may live on different cores: the per-core analyses are
//! independent (partitioned scheduling), so the caller supplies per-task
//! WCRTs from whichever cores host the stages.

use std::collections::BTreeMap;

use pmcs_model::{Task, TaskId, TaskSet, Time};

use crate::error::CoreError;
use crate::schedulability::analyze_task_set;
use crate::wcrt::DelayEngine;

/// How successive chain stages are activated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainActivation {
    /// Each stage is released when its predecessor completes.
    Triggered,
    /// Stages run on their own periodic activations and sample the latest
    /// published data (register communication).
    Sampling,
}

/// A task chain: an ordered list of stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskChain {
    stages: Vec<TaskId>,
}

impl TaskChain {
    /// Builds a chain from its ordered stages.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or a stage repeats.
    pub fn new(stages: Vec<TaskId>) -> Self {
        assert!(!stages.is_empty(), "a chain needs at least one stage");
        let mut seen = stages.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), stages.len(), "chain stages must be distinct");
        TaskChain { stages }
    }

    /// The ordered stages.
    pub fn stages(&self) -> &[TaskId] {
        &self.stages
    }

    /// End-to-end latency bound given per-task WCRT bounds and (for
    /// sampling chains) the stage tasks' minimum inter-arrival times.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] if a stage has no WCRT entry or (for
    /// sampling chains) no finite minimum inter-arrival time.
    pub fn latency_bound(
        &self,
        wcrts: &BTreeMap<TaskId, Time>,
        tasks: &BTreeMap<TaskId, Task>,
        activation: ChainActivation,
    ) -> Result<Time, CoreError> {
        let mut latency = Time::ZERO;
        for (idx, stage) in self.stages.iter().enumerate() {
            let r =
                *wcrts
                    .get(stage)
                    .ok_or(CoreError::Model(pmcs_model::ModelError::UnknownTask(
                        *stage,
                    )))?;
            latency += r;
            if idx > 0 && activation == ChainActivation::Sampling {
                let t = tasks
                    .get(stage)
                    .and_then(|t| t.arrival().min_inter_arrival())
                    .ok_or(CoreError::Model(pmcs_model::ModelError::UnknownTask(
                        *stage,
                    )))?;
                latency += t;
            }
        }
        Ok(latency)
    }
}

/// Convenience: analyzes every core-local task set and bounds the chain's
/// end-to-end latency in one call. `cores` lists the task set of every
/// core hosting at least one stage (tasks not on any listed core are an
/// error).
///
/// # Errors
///
/// Propagates analysis failures; unknown stages surface as
/// [`CoreError::Model`].
pub fn chain_latency(
    chain: &TaskChain,
    cores: &[TaskSet],
    activation: ChainActivation,
    engine: &impl DelayEngine,
) -> Result<Time, CoreError> {
    let mut wcrts = BTreeMap::new();
    let mut tasks = BTreeMap::new();
    for set in cores {
        let report = analyze_task_set(set, engine)?;
        for v in report.verdicts() {
            wcrts.insert(v.task, v.wcrt);
        }
        for t in set.iter() {
            tasks.insert(t.id(), t.clone());
        }
    }
    chain.latency_bound(&wcrts, &tasks, activation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::window::test_task;

    fn core_a() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .unwrap()
    }

    fn core_b() -> TaskSet {
        TaskSet::new(vec![test_task(2, 30, 5, 5, 3_000, 0, false)]).unwrap()
    }

    #[test]
    fn triggered_latency_is_sum_of_wcrts() {
        let chain = TaskChain::new(vec![TaskId(0), TaskId(2)]);
        let engine = ExactEngine::default();
        let l = chain_latency(
            &chain,
            &[core_a(), core_b()],
            ChainActivation::Triggered,
            &engine,
        )
        .unwrap();
        // Both stages are analyzed in their own cores; latency = R0 + R2.
        let ra = analyze_task_set(&core_a(), &engine).unwrap();
        let rb = analyze_task_set(&core_b(), &engine).unwrap();
        let expected = ra.verdict(TaskId(0)).unwrap().wcrt + rb.verdict(TaskId(2)).unwrap().wcrt;
        assert_eq!(l, expected);
    }

    #[test]
    fn sampling_adds_downstream_periods() {
        let chain = TaskChain::new(vec![TaskId(0), TaskId(2)]);
        let engine = ExactEngine::default();
        let triggered = chain_latency(
            &chain,
            &[core_a(), core_b()],
            ChainActivation::Triggered,
            &engine,
        )
        .unwrap();
        let sampling = chain_latency(
            &chain,
            &[core_a(), core_b()],
            ChainActivation::Sampling,
            &engine,
        )
        .unwrap();
        assert_eq!(sampling - triggered, Time::from_ticks(3_000));
    }

    #[test]
    fn single_stage_chain_is_just_the_wcrt() {
        let chain = TaskChain::new(vec![TaskId(1)]);
        let engine = ExactEngine::default();
        let l = chain_latency(&chain, &[core_a()], ChainActivation::Sampling, &engine).unwrap();
        let r = analyze_task_set(&core_a(), &engine).unwrap();
        assert_eq!(l, r.verdict(TaskId(1)).unwrap().wcrt);
    }

    #[test]
    fn unknown_stage_is_an_error() {
        let chain = TaskChain::new(vec![TaskId(9)]);
        let engine = ExactEngine::default();
        assert!(chain_latency(&chain, &[core_a()], ChainActivation::Triggered, &engine).is_err());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_stage_panics() {
        let _ = TaskChain::new(vec![TaskId(0), TaskId(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_panics() {
        let _ = TaskChain::new(vec![]);
    }
}
