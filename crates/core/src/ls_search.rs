//! Exhaustive latency-sensitivity assignment search.
//!
//! Section VI proposes a *greedy* algorithm for choosing which tasks to
//! mark LS, noting that the choice matters: LS marking reduces a task's
//! own blocking but inflates the interference it causes (urgent
//! executions occupy the CPU for `l + C`, cancellations waste DMA time).
//! This module provides the brute-force ground truth — trying every one of
//! the `2^n` markings — so the greedy's optimality gap can be measured
//! (see the `ablation` binary and the `greedy_vs_exhaustive` tests).

use pmcs_model::{Sensitivity, TaskId, TaskSet};

use crate::error::CoreError;
use crate::schedulability::{analyze_fixed_marking, SchedulabilityReport};
use crate::wcrt::DelayEngine;

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// A schedulable marking with the fewest LS tasks, if any marking is
    /// schedulable at all.
    pub best: Option<(Vec<TaskId>, SchedulabilityReport)>,
    /// Number of markings that were schedulable.
    pub schedulable_markings: usize,
    /// Markings evaluated (`2^n`).
    pub evaluated: usize,
}

/// Tries every LS/NLS marking of `set` and returns the schedulable one
/// with the fewest LS tasks (ties broken toward lower task indices).
///
/// Complexity is `2^n` full analyses — use only for small `n` (the
/// function refuses `n > 16`).
///
/// # Errors
///
/// Propagates engine failures.
///
/// # Panics
///
/// Panics if the set has more than 16 tasks.
pub fn exhaustive_ls_assignment(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<ExhaustiveResult, CoreError> {
    let n = set.len();
    assert!(n <= 16, "exhaustive search is exponential; n ≤ 16 required");
    let ids: Vec<TaskId> = set.iter().map(|t| t.id()).collect();

    let mut best: Option<(Vec<TaskId>, SchedulabilityReport)> = None;
    let mut schedulable_markings = 0usize;
    // Enumerate masks in popcount-then-value order so the first
    // schedulable hit is automatically minimal.
    let mut masks: Vec<u32> = (0..(1u32 << n)).collect();
    masks.sort_by_key(|m| (m.count_ones(), *m));

    for mask in masks {
        // Once a minimal marking is found, only same-size masks could tie;
        // smaller masks were already tried. Stop early at the next size.
        if let Some((bst, _)) = &best {
            if mask.count_ones() as usize > bst.len() {
                break;
            }
        }
        let mut marked = set.all_nls();
        let mut ls = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask >> i & 1 == 1 {
                marked = marked.with_sensitivity(*id, Sensitivity::Ls)?;
                ls.push(*id);
            }
        }
        let report = analyze_fixed_marking(&marked, engine)?;
        if report.schedulable() {
            schedulable_markings += 1;
            if best.is_none() {
                best = Some((ls, report));
            }
        }
    }
    // `schedulable_markings` counts hits up to the early cutoff only;
    // `evaluated` reports the full search-space size.
    let evaluated = 1usize << n;
    Ok(ExhaustiveResult {
        best,
        schedulable_markings,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::schedulability::analyze_task_set;
    use crate::window::test_task;
    use pmcs_model::Time;

    #[test]
    fn schedulable_without_ls_finds_empty_marking() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .unwrap();
        let r = exhaustive_ls_assignment(&set, &ExactEngine::default()).unwrap();
        let (ls, report) = r.best.expect("schedulable");
        assert!(ls.is_empty());
        assert!(report.schedulable());
    }

    #[test]
    fn finds_the_single_necessary_promotion() {
        // The schedulability test from the greedy suite: τ0 needs LS.
        let tasks = vec![
            pmcs_model::Task::builder(TaskId(0))
                .exec(Time::from_ticks(10))
                .copy_in(Time::from_ticks(2))
                .copy_out(Time::from_ticks(2))
                .sporadic(Time::from_ticks(10_000))
                .deadline(Time::from_ticks(600))
                .priority(pmcs_model::Priority(0))
                .build()
                .unwrap(),
            test_task(1, 300, 2, 2, 10_000, 1, false),
            test_task(2, 400, 2, 2, 10_000, 2, false),
        ];
        let set = TaskSet::new(tasks).unwrap();
        let engine = ExactEngine::default();
        let r = exhaustive_ls_assignment(&set, &engine).unwrap();
        let (ls, _) = r.best.expect("schedulable with LS");
        assert_eq!(ls, vec![TaskId(0)]);
        // And the greedy found the same thing.
        let greedy = analyze_task_set(&set, &engine).unwrap();
        assert_eq!(greedy.assignment().promoted, ls);
    }

    #[test]
    fn greedy_failure_confirmed_by_exhaustive_search_or_not() {
        // Overload: no marking helps.
        let set = TaskSet::new(vec![
            test_task(0, 90, 5, 5, 100, 0, false),
            test_task(1, 90, 5, 5, 100, 1, false),
        ])
        .unwrap();
        let r = exhaustive_ls_assignment(&set, &ExactEngine::default()).unwrap();
        assert!(r.best.is_none());
        assert_eq!(r.evaluated, 4);
        assert_eq!(r.schedulable_markings, 0);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn refuses_large_sets() {
        let tasks: Vec<_> = (0..17)
            .map(|i| test_task(i, 1, 0, 0, 1_000, i, false))
            .collect();
        let set = TaskSet::new(tasks).unwrap();
        let _ = exhaustive_ls_assignment(&set, &ExactEngine::default());
    }
}
