//! The MILP formulation of Section V, solved with [`pmcs_milp`].
//!
//! Variable map (one block per scheduling interval):
//!
//! | paper | here | meaning |
//! |---|---|---|
//! | `E_j^k` | `e[j][k]` | task `j` executes in `I_k` (k ∈ [0, N−2]) |
//! | `LE_j^k` | `le[j][k]` | urgent execution: CPU copy-in + execute (LS only) |
//! | `L_j^k` | `l[j][k]` | DMA copy-in of `j` in `I_k` (k ∈ [0, N−3]) |
//! | `CL_j^k` | `cl[j][k]` | canceled copy-in of `j` in `I_k` |
//! | `Δ_k, Δ^cpu_k, Δ^in_k, Δ^out_k` | `delta/dcpu/din/dout` | durations |
//! | `α_k` | `alpha[k]` | max-selector of Constraint 13 |
//!
//! Deviations from the paper's letter (both safe, both mirrored by
//! [`ExactEngine`](crate::ExactEngine) so the engines stay equivalent):
//!
//! * Constraints 5 and 6 are relaxed from `= 1` to `≤ 1` so that windows
//!   with fewer competitors than intervals stay feasible (an idle CPU or
//!   DMA slot simply contributes less delay — the maximizer never prefers
//!   it when a real activity is available).
//! * Constraint 8 is applied per urgent task with the victim set
//!   `lp(τ_j)` (tasks with priority lower than the *urgent* task), which
//!   is the set rules R3/R4 actually permit.
//! * The task under analysis never appears as a cancellation victim: its
//!   copy-in is pinned to `I_{N−2}` by Constraint 12.

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use pmcs_milp::{
    presolve, AuditReport, AuditedOutcome, BackendKind, BasisStore, BasisStoreStats, Cmp, Limits,
    LinExpr, MilpError, MilpSolution, Objective, PresolveOutcome, Problem, Solver, SolverStats,
    Var,
};
use pmcs_model::Time;

use crate::error::CoreError;
use crate::wcrt::{DelayBound, DelayEngine};
use crate::window::WindowModel;

/// Conventional environment variable requesting audited solves: set
/// `PMCS_AUDIT=1` (or `true`) and every solve of the WCRT fixed-point
/// iteration is re-verified with exact rational arithmetic
/// ([`pmcs_milp::audit`]). A refuted answer surfaces as
/// [`CoreError::AuditFailed`] instead of silently feeding a wrong bound
/// into the iteration.
///
/// This crate never reads the variable itself: it is honored only at the
/// CLI edge, by `pmcs_analysis::AnalysisConfig::resolve` (precedence
/// flag > env > default), which then constructs the engine with the
/// `audit` field set explicitly.
pub const AUDIT_ENV_VAR: &str = "PMCS_AUDIT";

/// Delay engine backed by the faithful MILP formulation.
///
/// Exponentially slower than [`ExactEngine`](crate::ExactEngine) on large
/// windows; intended for validation, small task sets, and benchmarking the
/// formulation itself (as the paper does with CPLEX).
#[derive(Debug, Clone, Default)]
pub struct MilpEngine {
    /// Branch-and-bound limits handed to the solver.
    pub limits: Limits,
    /// When `true`, every solve is re-verified with exact rational
    /// arithmetic and a refuted answer is an error. Off by default;
    /// callers honoring [`AUDIT_ENV_VAR`] set it explicitly.
    pub audit: bool,
    /// LP backend for the relaxations. [`BackendKind::Dense`] (the
    /// default) keeps the reference pipeline: every round rebuilds and
    /// solves the full problem on the dense tableau. [`BackendKind::Revised`]
    /// enables the incremental path: the window program is presolved once
    /// per structure, across fixed-point rounds only the `C7_j` budget-row
    /// right-hand sides are mutated in place, and each re-solve warm-starts
    /// from the previous round's root basis.
    pub backend: BackendKind,
    /// Effort gate: windows whose formulation has more than this many
    /// integral variables are not solved at all — the engine returns the
    /// formulation's deterministic safe delay cap (`N · M`, an upper
    /// bound on the objective `Σ_k Δ_k`) with `exact = false` instead.
    ///
    /// The big-M placement formulation has an LP relaxation too weak to
    /// prune its highly symmetric branch-and-bound tree, so large windows
    /// are intractable for *any* LP backend (the paper solves them with
    /// CPLEX's cut generation, which this reproduction does not have).
    /// The gate keeps bounded-effort sweeps deterministic: whether a
    /// window is solved depends only on the problem, never on the
    /// backend, so `dense` and `revised` produce identical verdicts by
    /// construction. `None` (the default) never gates — the historical
    /// behavior for validation-sized windows.
    pub bin_budget: Option<usize>,
    /// Presolved programs and warm-start bases reused across solves of
    /// structurally identical windows (revised backend only). The store
    /// is session-scoped: it answers for the last
    /// [`DEFAULT_STORE_ENTRIES`](pmcs_milp::basis_store::DEFAULT_STORE_ENTRIES)
    /// distinct structures, so repeated window shapes across *queries*
    /// reuse their presolve and basis, not just consecutive fixed-point
    /// rounds.
    store: RefCell<BasisStore>,
    /// Cumulative solver effort across every solve this engine performed.
    stats: Cell<SolverStats>,
}

impl MilpEngine {
    /// Creates an unaudited engine with default solver limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine that audits every solve regardless of the
    /// environment.
    pub fn audited() -> Self {
        MilpEngine {
            audit: true,
            ..Self::default()
        }
    }

    /// Selects the LP backend (see the `backend` field).
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the effort gate (see the `bin_budget` field).
    #[must_use]
    pub fn with_bin_budget(mut self, bin_budget: Option<usize>) -> Self {
        self.bin_budget = bin_budget;
        self
    }

    /// Cumulative solver effort (LP pivots, presolve reductions, B&B
    /// nodes, warm-start hits) across every solve so far.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats.get()
    }

    fn record(&self, stats: SolverStats) {
        let mut cur = self.stats.get();
        cur.merge(stats);
        self.stats.set(cur);
    }

    /// Builds the MILP for a window (exposed for inspection and tests).
    pub fn build_problem(&self, w: &WindowModel) -> Problem {
        Formulation::build(w).problem
    }

    fn solve(&self, problem: &Problem) -> Result<MilpSolution, CoreError> {
        let solver = Solver::with_limits(self.limits.clone()).with_backend(self.backend);
        if !self.audit {
            if self.backend == BackendKind::Revised {
                return self.solve_incremental(problem);
            }
            return Ok(solver.solve(problem)?);
        }
        // Audited solves always run the full pipeline: `Solver::solve`
        // restores through the inverse transforms before the audit checks
        // the answer against the original problem, so a presolve bug is a
        // refutation, never a silent shift.
        let audited = solver.solve_audited(problem)?;
        if audited.report.failed() {
            return Err(audit_error(&audited.report));
        }
        match audited.outcome {
            AuditedOutcome::Solved(sol) => Ok(sol),
            // The WCRT windows always admit the all-idle schedule, so an
            // infeasibility verdict — even an audited one — means the
            // formulation itself is broken; keep the solver's error.
            AuditedOutcome::Infeasible => Err(MilpError::Infeasible.into()),
        }
    }

    /// The incremental path: presolve once per window structure, then on
    /// every re-solve of a stored structure mutate only the budget-row
    /// RHS values and warm-start from that structure's last root basis.
    /// The [`BasisStore`] keeps many structures, so reuse spans queries,
    /// not just consecutive fixed-point rounds.
    fn solve_incremental(&self, problem: &Problem) -> Result<MilpSolution, CoreError> {
        let budget_rows: Vec<(usize, f64)> = problem
            .constraints()
            .filter(|c| c.name().is_some_and(|n| n.starts_with("C7_")))
            .map(|c| (c.index(), c.rhs()))
            .collect();
        let fingerprint = structural_fingerprint(problem, &budget_rows);

        let mut store = self.store.borrow_mut();
        if store.lookup(fingerprint) {
            let entry = store.entry_mut(fingerprint).expect("hit implies entry");
            for &(row, rhs) in &budget_rows {
                entry.program.update_rhs(row, rhs)?;
            }
        } else {
            let mutable: Vec<usize> = budget_rows.iter().map(|&(r, _)| r).collect();
            let program = match presolve(problem, &mutable)? {
                PresolveOutcome::Reduced(p) => p,
                // See `solve`: the windows are feasible by construction.
                PresolveOutcome::Infeasible(_) => return Err(MilpError::Infeasible.into()),
            };
            store.insert(fingerprint, program);
        }
        let entry = store.entry_mut(fingerprint).expect("populated above");
        let solver = Solver::with_limits(self.limits.clone()).with_backend(BackendKind::Revised);
        let solved = solver.solve_program(&entry.program, entry.basis.as_ref())?;
        if solved.basis.is_some() {
            entry.basis = solved.basis;
        }
        Ok(solved.solution)
    }

    /// Presolve/basis reuse counters of the structure store (revised
    /// backend only; all zeros otherwise).
    pub fn basis_store_stats(&self) -> BasisStoreStats {
        self.store.borrow().stats()
    }
}

/// Hashes everything about `problem` except the RHS of the budget rows:
/// two fixed-point rounds with equal fingerprints differ at most in those
/// RHS values, so the presolved program can be reused via
/// [`PresolvedProblem::update_rhs`].
fn structural_fingerprint(problem: &Problem, budget_rows: &[(usize, f64)]) -> u64 {
    let mut h = DefaultHasher::new();
    problem.num_vars().hash(&mut h);
    matches!(problem.direction(), Objective::Maximize).hash(&mut h);
    for v in problem.vars() {
        let (lo, hi) = problem.var_bounds(v);
        lo.to_bits().hash(&mut h);
        hi.to_bits().hash(&mut h);
        problem.var_kind(v).is_integral().hash(&mut h);
    }
    for c in problem.constraints() {
        c.name().hash(&mut h);
        (c.cmp() as u8).hash(&mut h);
        for (var, coeff) in c.expr().iter() {
            var.index().hash(&mut h);
            coeff.to_bits().hash(&mut h);
        }
        c.expr().constant().to_bits().hash(&mut h);
        if budget_rows
            .binary_search_by_key(&c.index(), |&(r, _)| r)
            .is_err()
        {
            c.rhs().to_bits().hash(&mut h);
        }
    }
    for (var, coeff) in problem.objective().iter() {
        var.index().hash(&mut h);
        coeff.to_bits().hash(&mut h);
    }
    problem.objective().constant().to_bits().hash(&mut h);
    h.finish()
}

/// Maps the first failed check of `report` to [`CoreError::AuditFailed`].
fn audit_error(report: &AuditReport) -> CoreError {
    let failed = report
        .problems()
        .find(|c| c.status == pmcs_milp::CheckStatus::Failed);
    match failed {
        Some(check) => CoreError::AuditFailed {
            check: check.name,
            detail: check.detail.clone(),
        },
        None => CoreError::AuditFailed {
            check: "unknown",
            detail: "audit reported failure without a failed check".to_string(),
        },
    }
}

impl DelayEngine for MilpEngine {
    fn max_total_delay(&self, w: &WindowModel) -> Result<DelayBound, CoreError> {
        let f = Formulation::build(w);
        if let Some(budget) = self.bin_budget {
            if f.problem.integral_vars().count() > budget {
                return Ok(DelayBound {
                    delay: Time::from_f64_ceil(f.delay_cap - 1e-6),
                    exact: false,
                    nodes: 0,
                });
            }
        }
        let sol = self.solve(&f.problem)?;
        self.record(sol.stats());
        let (value, exact) = if sol.is_optimal() {
            (sol.objective(), true)
        } else {
            // Node limit hit: fall back to the formulation's own cap, not
            // the search's remaining-tree bound. Both are safe upper
            // bounds, but the cap is a function of the problem alone, so
            // every LP backend reports the same (conservative) delay.
            (f.delay_cap, false)
        };
        // All durations are integer ticks, so the optimum is integral;
        // round defensively toward the safe side.
        let delay = Time::from_f64_ceil(value - 1e-6);
        Ok(DelayBound {
            delay,
            exact,
            nodes: sol.nodes() as u64,
        })
    }
}

/// Index helper: `Option<Var>` per (task, interval), absent when the
/// variable is structurally zero.
type VarGrid = Vec<Vec<Option<Var>>>;

/// Per-slot interval-length caps in integer ticks, derived from which
/// placement variables structurally exist at each slot. These are exactly
/// the bounds the `A007` big-M lint derives from the row activity ranges:
/// using them as the Constraint-13 big-M constants (instead of one uniform
/// window-wide `M`) keeps the lint quiet and makes the LP relaxation tight
/// enough to prune.
pub(crate) struct SlotCaps {
    /// Max CPU demand of `I_k`: the largest `C_j` (or `l_j + C_j` for an
    /// urgent execution) over tasks placeable in slot `k`; `C_i` at `N−1`.
    pub(crate) dcpu: Vec<i64>,
    /// Max DMA copy-in of `I_k` over the copy-in/cancel variables of the
    /// slot; pinned values at the window boundary (Constraint 12).
    pub(crate) din: Vec<i64>,
    /// Max DMA copy-out of `I_k`: the largest `u_j` over tasks placeable
    /// in `I_{k−1}`; `max_u` at the window start (Constraint 12).
    pub(crate) dout: Vec<i64>,
    /// `max(dcpu, din + dout)` — an upper bound on `Δ_k` itself.
    pub(crate) delta: Vec<i64>,
}

impl SlotCaps {
    pub(crate) fn derive(w: &WindowModel) -> SlotCaps {
        let n = w.n();
        let last_lp = w.last_lp_exec_interval();
        let exec_slots = n - 1;
        let placeable = |k: usize| w.tasks.iter().filter(move |t| t.hp || k <= last_lp);
        let dcpu: Vec<i64> = (0..n)
            .map(|k| {
                if k == n - 1 {
                    w.exec_i.as_ticks()
                } else {
                    placeable(k)
                        .map(|t| t.demand(t.ls).as_ticks())
                        .max()
                        .unwrap_or(0)
                }
            })
            .collect();
        let din: Vec<i64> = (0..n)
            .map(|k| {
                if k == n - 2 {
                    w.copy_in_i.as_ticks()
                } else if k == n - 1 {
                    w.max_l.as_ticks()
                } else {
                    // Slots 0 … N−3: the DMA loads the copy-in of the task
                    // executing next (`L_j^k`, paired with `E_j^{k+1}`) or
                    // a canceled copy-in (`CL_j^k`).
                    w.tasks
                        .iter()
                        .enumerate()
                        .filter(|&(j, t)| {
                            let load = (t.hp || (k < last_lp && k == 0 && w.lp_copy_in_allowed()))
                                && k + 1 < exec_slots;
                            let cancel = (t.hp || k == 0) && w.cancel_triggerable(j);
                            load || cancel
                        })
                        .map(|(_, t)| t.copy_in.as_ticks())
                        .max()
                        .unwrap_or(0)
                }
            })
            .collect();
        let dout: Vec<i64> = (0..n)
            .map(|k| {
                if k == 0 {
                    w.max_u.as_ticks()
                } else {
                    placeable(k - 1)
                        .map(|t| t.copy_out.as_ticks())
                        .max()
                        .unwrap_or(0)
                }
            })
            .collect();
        let delta: Vec<i64> = (0..n).map(|k| dcpu[k].max(din[k] + dout[k])).collect();
        SlotCaps {
            dcpu,
            din,
            dout,
            delta,
        }
    }

    /// `Σ_k delta[k]` in integer arithmetic: the deterministic safe delay
    /// cap of the formulation. `pmcs-cert` re-derives this value
    /// independently, so the summation must stay integral.
    pub(crate) fn delay_cap_ticks(&self) -> i64 {
        self.delta.iter().sum()
    }
}

pub(crate) struct Formulation {
    pub(crate) problem: Problem,
    /// Deterministic upper bound on the objective: `Σ_k Δ_k` with each
    /// `Δ_k` at its slot cap ([`SlotCaps::delay_cap_ticks`]). Used as the
    /// safe fallback delay when a solve is gated or hits its node limit.
    pub(crate) delay_cap: f64,
    /// Plain/urgent execution variables per (task, slot); kept so the
    /// branch-and-bound LP bounding can pin a search prefix through
    /// variable bounds.
    pub(crate) e: VarGrid,
    pub(crate) le: VarGrid,
}

impl Formulation {
    pub(crate) fn build(w: &WindowModel) -> Formulation {
        let n = w.n();
        let m = w.tasks.len();
        let exec_slots = n - 1; // intervals 0 ..= N−2 host competitor executions
        let copyin_slots = n.saturating_sub(2); // intervals 0 ..= N−3 host copy-ins

        let mut p = Problem::maximize();

        // Per-slot caps replace the old uniform big-M (which A007 flagged
        // as up to ~2e4× looser than the derivable bound).
        let caps = SlotCaps::derive(w);

        // --- Variables ---------------------------------------------------
        let mut e: VarGrid = vec![vec![None; exec_slots]; m];
        let mut le: VarGrid = vec![vec![None; exec_slots]; m];
        let mut lv: VarGrid = vec![vec![None; copyin_slots]; m];
        let mut cl: VarGrid = vec![vec![None; copyin_slots]; m];
        for (j, task) in w.tasks.iter().enumerate() {
            for k in 0..exec_slots {
                let exec_allowed = task.hp || k <= w.last_lp_exec_interval();
                if exec_allowed {
                    e[j][k] = Some(p.binary(format!("E_{j}_{k}")));
                    if task.ls {
                        le[j][k] = Some(p.binary(format!("LE_{j}_{k}")));
                    }
                }
            }
            for k in 0..copyin_slots {
                // Constraint 1 pairs L_j^k with E_j^{k+1}; the copy-in of
                // an execution in I_0 predates the window.
                let exec_next = k + 1 < exec_slots + 1 && k < exec_slots - 1 + 1;
                let next_e_exists = k < exec_slots - 1 && e[j][k + 1].is_some();
                let copyin_allowed = task.hp || (k == 0 && w.lp_copy_in_allowed());
                if exec_next && next_e_exists && copyin_allowed {
                    lv[j][k] = Some(p.binary(format!("L_{j}_{k}")));
                }
                // Cancellations: hp anywhere, lp only in I_0
                // (Constraint 3), and only when some higher-priority LS
                // task exists to trigger the cancel (rule R3).
                if (task.hp || k == 0) && w.cancel_triggerable(j) {
                    cl[j][k] = Some(p.binary(format!("CL_{j}_{k}")));
                }
            }
        }
        let delta: Vec<Var> = (0..n)
            .map(|k| p.continuous(format!("delta_{k}"), 0.0, caps.delta[k] as f64))
            .collect();
        let dcpu: Vec<Var> = (0..n)
            .map(|k| p.continuous(format!("dcpu_{k}"), 0.0, caps.dcpu[k] as f64))
            .collect();
        let din: Vec<Var> = (0..n)
            .map(|k| p.continuous(format!("din_{k}"), 0.0, caps.din[k] as f64))
            .collect();
        let dout: Vec<Var> = (0..n)
            .map(|k| p.continuous(format!("dout_{k}"), 0.0, caps.dout[k] as f64))
            .collect();
        let alpha: Vec<Var> = (0..n).map(|k| p.binary(format!("alpha_{k}"))).collect();

        // --- Constraint 1: L_j^k = E_j^{k+1} ------------------------------
        #[allow(clippy::needless_range_loop)]
        for j in 0..m {
            for k in 0..copyin_slots {
                if k + 1 > exec_slots - 1 {
                    continue;
                }
                match (lv[j][k], e[j][k + 1]) {
                    (Some(l), Some(ex)) => {
                        p.constrain_named(Some(format!("C1_{j}_{k}")), l - ex, Cmp::Eq, 0.0);
                    }
                    (None, Some(ex))
                        // Execution without an in-window DMA copy-in is
                        // only legal in I_0 (pre-window copy-in).
                        if k + 1 >= 1 => {
                            p.constrain_named(
                                Some(format!("C1z_{j}_{k}")),
                                LinExpr::from(ex),
                                Cmp::Eq,
                                0.0,
                            );
                        }
                    _ => {}
                }
            }
        }

        // --- Constraint 5 (relaxed): one execution per interval ----------
        for k in 0..exec_slots {
            let mut sum = LinExpr::zero();
            for j in 0..m {
                if let Some(v) = e[j][k] {
                    sum += LinExpr::from(v);
                }
                if let Some(v) = le[j][k] {
                    sum += LinExpr::from(v);
                }
            }
            if !sum.is_constant() {
                p.constrain_named(Some(format!("C5_{k}")), sum, Cmp::Le, 1.0);
            }
        }

        // --- Constraint 6 (relaxed): one copy-in activity per interval ---
        for k in 0..copyin_slots {
            let mut sum = LinExpr::zero();
            for j in 0..m {
                if let Some(v) = lv[j][k] {
                    sum += LinExpr::from(v);
                }
                if let Some(v) = cl[j][k] {
                    sum += LinExpr::from(v);
                }
            }
            if !sum.is_constant() {
                p.constrain_named(Some(format!("C6_{k}")), sum, Cmp::Le, 1.0);
            }
        }

        // --- Constraint 7: job budgets ------------------------------------
        for (j, task) in w.tasks.iter().enumerate() {
            let mut sum = LinExpr::zero();
            for k in 0..exec_slots {
                if let Some(v) = e[j][k] {
                    sum += LinExpr::from(v);
                }
                if let Some(v) = le[j][k] {
                    sum += LinExpr::from(v);
                }
            }
            if !sum.is_constant() {
                p.constrain_named(Some(format!("C7_{j}")), sum, Cmp::Le, task.budget as f64);
            }
        }

        // --- Constraint 8: urgency requires a lower-priority cancel ------
        #[allow(clippy::needless_range_loop)]
        for j in 0..m {
            if !w.tasks[j].ls {
                continue;
            }
            for k in 0..copyin_slots {
                let Some(le_next) = (k < exec_slots - 1).then(|| le[j][k + 1]).flatten() else {
                    continue;
                };
                let mut victims = LinExpr::zero();
                for v in 0..m {
                    if v != j && w.cancellation_enables(v, j) {
                        if let Some(clv) = cl[v][k] {
                            victims += LinExpr::from(clv);
                        }
                    }
                }
                p.constrain_named(Some(format!("C8_{j}_{k}")), victims - le_next, Cmp::Ge, 0.0);
            }
        }

        // --- Constraint 9: CPU time per interval --------------------------
        for k in 0..exec_slots {
            let mut cap = LinExpr::zero();
            for (j, task) in w.tasks.iter().enumerate() {
                if let Some(v) = e[j][k] {
                    cap += v * task.exec.as_f64();
                }
                if let Some(v) = le[j][k] {
                    cap += v * (task.copy_in + task.exec).as_f64();
                }
            }
            p.constrain_named(Some(format!("C9_{k}")), dcpu[k] - cap, Cmp::Le, 0.0);
        }
        // Constraint 12: the last interval executes τ_i.
        p.fix(dcpu[n - 1], w.exec_i.as_f64());

        // --- Constraint 10: DMA copy-in time ------------------------------
        for k in 0..copyin_slots {
            let mut cap = LinExpr::zero();
            for (j, task) in w.tasks.iter().enumerate() {
                if let Some(v) = lv[j][k] {
                    cap += v * task.copy_in.as_f64();
                }
                if let Some(v) = cl[j][k] {
                    cap += v * task.copy_in.as_f64();
                }
            }
            p.constrain_named(Some(format!("C10_{k}")), din[k] - cap, Cmp::Le, 0.0);
        }
        // Constraint 12: τ_i's copy-in in I_{N−2}; a future task's copy-in
        // may occupy the DMA in I_{N−1}.
        p.fix(din[n - 2], w.copy_in_i.as_f64());
        p.constrain_named(
            Some("C12_din_last".to_string()),
            LinExpr::from(din[n - 1]),
            Cmp::Le,
            w.max_l.as_f64(),
        );

        // --- Constraints 2+11: DMA copy-out time --------------------------
        for k in 1..n {
            let mut cap = LinExpr::zero();
            if k - 1 < exec_slots {
                for (j, task) in w.tasks.iter().enumerate() {
                    if let Some(v) = e[j][k - 1] {
                        cap += v * task.copy_out.as_f64();
                    }
                    if let Some(v) = le[j][k - 1] {
                        cap += v * task.copy_out.as_f64();
                    }
                }
            }
            p.constrain_named(Some(format!("C11_{k}")), dout[k] - cap, Cmp::Le, 0.0);
        }
        // Constraint 12: the first interval may copy out a pre-window task.
        p.constrain_named(
            Some("C12_dout0".to_string()),
            LinExpr::from(dout[0]),
            Cmp::Le,
            w.max_u.as_f64(),
        );

        // --- Constraint 13: Δ_k = max(Δ^cpu_k, Δ^in_k + Δ^out_k) ---------
        // Big-M disjunction with the slot-local cap as M: `Δ_k ≤ cap_k`
        // already holds by the variable bound, so the inactive branch is
        // slack for every feasible point while the LP relaxation stays as
        // tight as the A007 lint can prove. A zero cap pins Δ_k = 0 and
        // needs no disjunction at all (and would otherwise zero out the
        // alpha column).
        for k in 0..n {
            let mk = caps.delta[k] as f64;
            if mk == 0.0 {
                continue;
            }
            // `dcpu_{N−1}` is fixed at `C_i`, so the relaxed a-row only
            // has to absorb the gap above that floor; charging the full
            // slot cap there is exactly what A007 flags as loose.
            let mk_a = if k == n - 1 {
                (caps.delta[k] - w.exec_i.as_ticks()) as f64
            } else {
                mk
            };
            p.constrain_named(
                Some(format!("C13a_{k}")),
                delta[k] - dcpu[k] - alpha[k] * mk_a,
                Cmp::Le,
                0.0,
            );
            p.constrain_named(
                Some(format!("C13b_{k}")),
                delta[k] - din[k] - dout[k] + alpha[k] * mk,
                Cmp::Le,
                mk,
            );
        }

        // --- Symmetry-breaking ordering cuts -----------------------------
        // Two competitor tasks are *interchangeable* when swapping them is
        // an automorphism of the formulation: identical shape, protocol
        // flags and budget, identical cancellation relations against every
        // third task, and (for LS pairs, whose C8 rows reference each
        // other's cancel columns) a symmetric pair-internal relation. Any
        // feasible placement can then be rewritten — reassigning the pooled
        // executions of the pair chronologically, lower index first —
        // without changing any interval length, so forcing the prefix sums
        // of the lower-indexed task to dominate cuts the mirrored half of
        // the branch tree without cutting the optimum.
        let interchangeable = |a: usize, b: usize| -> bool {
            let (ta, tb) = (&w.tasks[a], &w.tasks[b]);
            ta.exec == tb.exec
                && ta.copy_in == tb.copy_in
                && ta.copy_out == tb.copy_out
                && ta.ls == tb.ls
                && ta.hp == tb.hp
                && ta.budget == tb.budget
                && w.cancel_triggerable(a) == w.cancel_triggerable(b)
                && (!ta.ls || w.cancellation_enables(a, b) == w.cancellation_enables(b, a))
                && (0..m).filter(|&v| v != a && v != b).all(|v| {
                    w.cancellation_enables(v, a) == w.cancellation_enables(v, b)
                        && w.cancellation_enables(a, v) == w.cancellation_enables(b, v)
                })
        };
        for j2 in 1..m {
            // One cut chain per adjacent pair is enough: dominance is
            // transitive along a run of interchangeable tasks.
            let j = j2 - 1;
            if !interchangeable(j, j2) {
                continue;
            }
            let mut prefix = LinExpr::zero();
            for (kk, cut) in (0..exec_slots).map(|kk| (kk, format!("SYM_{j}_{j2}_{kk}"))) {
                for (hi, lo) in [(e[j][kk], e[j2][kk]), (le[j][kk], le[j2][kk])] {
                    if let Some(v) = hi {
                        prefix += v * 1.0;
                    }
                    if let Some(v) = lo {
                        prefix += v * -1.0;
                    }
                }
                p.constrain_named(Some(cut), prefix.clone(), Cmp::Ge, 0.0);
            }
        }

        // --- Objective (Eq. 1, without the constant u_i) -------------------
        let mut obj = LinExpr::zero();
        for &d in &delta {
            obj += LinExpr::from(d);
        }
        p.set_objective(obj);

        Formulation {
            problem: p,
            delay_cap: caps.delay_cap_ticks() as f64,
            e,
            le,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{test_task, WindowCase, WindowModel};
    use pmcs_model::{TaskId, TaskSet};

    fn window(tasks: Vec<pmcs_model::Task>, id: u32, case: WindowCase, t: i64) -> WindowModel {
        let set = TaskSet::new(tasks).unwrap();
        WindowModel::build(&set, TaskId(id), case, Time::from_ticks(t)).unwrap()
    }

    fn milp_delay(w: &WindowModel) -> i64 {
        let b = MilpEngine::default().max_total_delay(w).unwrap();
        assert!(b.exact);
        b.delay.as_ticks()
    }

    #[test]
    fn singleton_matches_engine_hand_calculation() {
        let w = window(
            vec![test_task(0, 10, 3, 2, 100, 0, false)],
            0,
            WindowCase::Nls,
            3,
        );
        assert_eq!(milp_delay(&w), 15);
    }

    #[test]
    fn lp_blocking_example_matches_engine() {
        let w = window(
            vec![
                test_task(0, 10, 1, 1, 10_000, 0, false),
                test_task(1, 500, 1, 1, 10_000, 1, false),
            ],
            0,
            WindowCase::Nls,
            12,
        );
        // Matches the exact engine: 2 (standalone copy-in interval of the
        // lp job) + 500 (its execution interval) + 10 (τ_i's execution).
        assert_eq!(milp_delay(&w), 512);
    }

    #[test]
    fn ls_case_a_example_matches_engine() {
        let w = window(
            vec![
                test_task(0, 10, 1, 1, 10_000, 0, true),
                test_task(1, 500, 1, 1, 10_000, 1, false),
            ],
            0,
            WindowCase::LsCaseA,
            12,
        );
        assert_eq!(milp_delay(&w), 510);
    }

    #[test]
    fn audited_engine_agrees_with_unaudited() {
        let w = window(
            vec![
                test_task(0, 10, 2, 2, 100, 0, false),
                test_task(1, 20, 4, 4, 200, 1, false),
                test_task(2, 30, 5, 5, 300, 2, true),
            ],
            0,
            WindowCase::Nls,
            50,
        );
        let plain = MilpEngine {
            audit: false,
            ..MilpEngine::default()
        };
        let audited = MilpEngine {
            audit: true,
            ..MilpEngine::default()
        };
        let a = plain.max_total_delay(&w).unwrap();
        let b = audited.max_total_delay(&w).unwrap();
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.exact, b.exact);
    }

    #[test]
    fn audited_constructor_forces_audit_on() {
        assert!(MilpEngine::audited().audit);
    }

    #[test]
    fn effort_gate_returns_the_deterministic_cap_for_both_backends() {
        let w = window(
            vec![
                test_task(0, 10, 1, 1, 10_000, 0, false),
                test_task(1, 500, 1, 1, 10_000, 1, false),
            ],
            0,
            WindowCase::Nls,
            12,
        );
        // A zero budget gates every window; the bound must not depend on
        // the backend (it is computed from the formulation, not a search).
        let gated: Vec<DelayBound> = [BackendKind::Dense, BackendKind::Revised]
            .into_iter()
            .map(|k| {
                MilpEngine::new()
                    .with_backend(k)
                    .with_bin_budget(Some(0))
                    .max_total_delay(&w)
                    .unwrap()
            })
            .collect();
        assert_eq!(gated[0].delay, gated[1].delay);
        assert!(!gated[0].exact && gated[0].nodes == 0);
        // The cap dominates the true optimum (515 here): it is a safe,
        // conservative over-approximation, never an underestimate.
        let full = MilpEngine::default().max_total_delay(&w).unwrap();
        assert!(full.exact);
        assert!(gated[0].delay >= full.delay);
        // An ample budget never gates.
        let ungated = MilpEngine::new()
            .with_bin_budget(Some(10_000))
            .max_total_delay(&w)
            .unwrap();
        assert_eq!(ungated.delay, full.delay);
        assert!(ungated.exact);
    }

    #[test]
    fn problem_size_scales_with_intervals() {
        let w = window(
            vec![
                test_task(0, 10, 2, 2, 100, 0, false),
                test_task(1, 20, 4, 4, 200, 1, false),
            ],
            1,
            WindowCase::Nls,
            150,
        );
        let p = MilpEngine::default().build_problem(&w);
        assert!(p.num_vars() > 4 * w.n());
        assert!(p.num_constraints() >= 2 * w.n());
    }

    #[test]
    fn revised_backend_matches_dense_and_warm_starts() {
        let tasks = || {
            vec![
                test_task(0, 10, 2, 2, 100, 0, false),
                test_task(1, 20, 4, 4, 200, 1, false),
                test_task(2, 30, 5, 5, 300, 2, true),
            ]
        };
        let dense = MilpEngine::default();
        let revised = MilpEngine::default().with_backend(BackendKind::Revised);
        // Several window lengths: structure changes as n grows, and the
        // repeat of each length exercises the fingerprint-reuse path the
        // fixed-point iteration takes once budgets stabilize.
        for t in [10, 25, 25, 50, 50] {
            let w = window(tasks(), 0, WindowCase::Nls, t);
            let a = dense.max_total_delay(&w).unwrap();
            let b = revised.max_total_delay(&w).unwrap();
            assert_eq!(a.delay, b.delay, "t={t}");
            assert_eq!(a.exact, b.exact, "t={t}");
        }
        let stats = revised.solver_stats();
        assert!(stats.lp_solves > 0);
        assert!(
            stats.warm_start_hits > 0,
            "repeated structures must warm-start: {stats}"
        );
        assert!(
            dense.solver_stats().warm_start_attempts == 0,
            "dense reference path never warm-starts"
        );
        assert!(dense.solver_stats().bb_nodes > 0);
    }

    #[test]
    fn audited_revised_backend_is_certified() {
        let w = window(
            vec![
                test_task(0, 10, 2, 2, 100, 0, false),
                test_task(1, 20, 4, 4, 200, 1, false),
            ],
            0,
            WindowCase::Nls,
            20,
        );
        let audited = MilpEngine::audited().with_backend(BackendKind::Revised);
        let plain = MilpEngine::default();
        let a = audited.max_total_delay(&w).unwrap();
        let b = plain.max_total_delay(&w).unwrap();
        assert_eq!(a.delay, b.delay);
    }

    #[test]
    fn urgent_blocking_is_representable() {
        // The urgent-execution gadget: LS hp task with big copy-in.
        let w = window(
            vec![
                test_task(0, 10, 50, 1, 100_000, 0, true),
                test_task(1, 10, 1, 1, 100_000, 1, false),
                test_task(2, 10, 1, 1, 100_000, 2, false),
            ],
            2,
            WindowCase::Nls,
            5,
        );
        let d = milp_delay(&w);
        assert!(d >= 60, "MILP bound {d} must cover urgent CPU demand 60");
    }
}
