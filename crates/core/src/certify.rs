//! Certificate emission: proof-carrying analysis results.
//!
//! Every WCRT verdict the analysis produces can be accompanied by a
//! machine-checkable certificate bundle (a [`pmcs_cert::CertificateSet`]):
//!
//! * **window level** — each delay bound ships a concrete placement
//!   witness attaining it plus an upper-bound proof: the DP's full memo
//!   table ([`UpperProof::DpTable`], replayed Bellman equation by Bellman
//!   equation), a VIPR-style branch-and-bound tree with exact-rational
//!   dual certificates at the leaves ([`UpperProof::BbTree`], for the
//!   MILP path), or a closed-form safe cap for inexact bounds;
//! * **task level** — the monotone fixed-point iteration, each step's
//!   window referenced by content hash ([`WcrtCertificate`]);
//! * **set level** — the greedy LS-marking transcript
//!   ([`SchedCertificate`]).
//!
//! Emission runs *outside* any timed region: [`certify_task_set`] re-runs
//! the traced analysis from scratch (deterministic, so the transcript
//! matches the production verdicts exactly) and the independent checker
//! in `pmcs-cert` validates the bundle with zero dependency on this
//! crate.

use std::collections::{HashMap, HashSet};

use pmcs_cert::types::{
    CertArrival, CertCase, CertChoice, CertRound, CertRoundEntry, CertTask, CertTaskSet,
    CertWcrtStep, CertWindow, CertWindowTask, CertificateSet, DelayCertificate, DpEntry,
    SchedCertificate, UpperProof, WcrtCertificate,
};
use pmcs_milp::{certify_upper_bound, CertifyLimits, Rational};
use pmcs_model::{ArrivalModel, Sensitivity, TaskSet};

use crate::engine::ExactEngine;
use crate::error::CoreError;
use crate::formulation::MilpEngine;
use crate::schedulability::{analyze_task_set_traced, SchedulabilityReport};
use crate::wcrt::{DelayBound, TaskTrace, WcrtAnalyzer};
use crate::window::{WindowCase, WindowModel};

fn cert_err(detail: impl Into<String>) -> CoreError {
    CoreError::Certification {
        detail: detail.into(),
    }
}

/// Converts an arrival model to its certificate encoding.
///
/// # Errors
///
/// Rejects arrival models the certificate format cannot express (none
/// today; the arm exists because [`ArrivalModel`] is non-exhaustive).
pub fn cert_arrival_of(arrival: &ArrivalModel) -> Result<CertArrival, CoreError> {
    match arrival {
        ArrivalModel::Sporadic { min_inter_arrival } => Ok(CertArrival::Sporadic {
            min_inter_arrival: min_inter_arrival.as_ticks(),
        }),
        ArrivalModel::PeriodicJitter { period, jitter } => Ok(CertArrival::PeriodicJitter {
            period: period.as_ticks(),
            jitter: jitter.as_ticks(),
        }),
        ArrivalModel::Staircase(curve) => Ok(CertArrival::Staircase {
            steps: curve
                .steps()
                .iter()
                .map(|&(delta, count)| (delta.as_ticks(), count))
                .collect(),
            tail_period: curve.tail_period().as_ticks(),
        }),
        other => Err(cert_err(format!(
            "arrival model {other:?} has no certificate encoding"
        ))),
    }
}

/// Converts a task set to its certificate encoding (tasks stay in the
/// set's decreasing-priority order).
///
/// # Errors
///
/// Propagates [`cert_arrival_of`] failures.
pub fn cert_task_set_of(set: &TaskSet) -> Result<CertTaskSet, CoreError> {
    let mut tasks = Vec::with_capacity(set.len());
    for t in set.iter() {
        tasks.push(CertTask {
            id: t.id().0,
            exec: t.exec().as_ticks(),
            copy_in: t.copy_in().as_ticks(),
            copy_out: t.copy_out().as_ticks(),
            deadline: t.deadline().as_ticks(),
            priority: t.priority().0,
            arrival: cert_arrival_of(t.arrival())?,
        });
    }
    Ok(CertTaskSet { tasks })
}

/// Converts an analysis window to its certificate encoding (markings are
/// recorded raw; the checker applies the inertness canonicalization
/// itself).
pub fn cert_window_of(w: &WindowModel) -> CertWindow {
    CertWindow {
        case: match w.case {
            WindowCase::Nls => CertCase::Nls,
            WindowCase::LsCaseA => CertCase::LsCaseA,
        },
        n_intervals: w.n_intervals as u64,
        tasks: w
            .tasks
            .iter()
            .map(|t| CertWindowTask {
                exec: t.exec.as_ticks(),
                copy_in: t.copy_in.as_ticks(),
                copy_out: t.copy_out.as_ticks(),
                ls: t.ls,
                hp: t.hp,
                priority: t.priority.0,
                budget: t.budget,
            })
            .collect(),
        exec_i: w.exec_i.as_ticks(),
        copy_in_i: w.copy_in_i.as_ticks(),
        copy_out_i: w.copy_out_i.as_ticks(),
        priority_i: w.priority_i.0,
        max_l: w.max_l.as_ticks(),
        max_u: w.max_u.as_ticks(),
    }
}

/// Certifies one window bound produced by the DP engine.
///
/// Exact bounds get the recorded memo table as the upper proof and the
/// traced-back optimal placement as the witness; inexact bounds get the
/// closed-form safe cap.
///
/// # Errors
///
/// [`CoreError::Certification`] when the recording solve cannot reproduce
/// the claimed exact bound (an engine bug, not a property of the window).
pub fn certify_window_dp(
    engine: &ExactEngine,
    w: &WindowModel,
    bound: DelayBound,
) -> Result<DelayCertificate, CoreError> {
    let window = cert_window_of(w);
    let window_hash = window.content_hash();
    let claimed = bound.delay.as_ticks();
    if w.n() < 2 || !bound.exact {
        // Degenerate windows are closed forms; inexact bounds are the
        // engine's fallback cap — both checked against the checker's own
        // re-derivation, no table or witness applies.
        return Ok(DelayCertificate {
            window,
            window_hash,
            claimed,
            exact: bound.exact,
            witness: None,
            upper: UpperProof::SafeCap,
        });
    }
    let rec = engine.solve_recorded(w).ok_or_else(|| {
        cert_err("recording solve exhausted its budget on a window the production solve finished")
    })?;
    if rec.value != claimed {
        return Err(cert_err(format!(
            "recording solve found {} but the production bound is {claimed}",
            rec.value
        )));
    }
    Ok(DelayCertificate {
        window,
        window_hash,
        claimed,
        exact: true,
        witness: Some(
            rec.witness
                .iter()
                .map(|&c| CertChoice::from_code(c))
                .collect(),
        ),
        upper: UpperProof::DpTable(
            rec.states
                .into_iter()
                .map(|s| DpEntry {
                    k: s.k as u64,
                    prev: CertChoice::from_code(s.prev),
                    prev2: CertChoice::from_code(s.prev2),
                    budgets: s.budgets,
                    value: s.value,
                })
                .collect(),
        ),
    })
}

/// Certifies one window bound produced by the MILP engine.
///
/// Exact bounds get a VIPR-style branch-and-bound proof tree over the
/// engine's own formulation (every leaf carries an exact-rational dual
/// bound or Farkas certificate) plus a DP-derived placement witness
/// pinching the claim from below; inexact bounds get the `N·M` big-M cap.
///
/// # Errors
///
/// [`CoreError::Certification`] when the proof tree cannot be built
/// within `limits` or the DP witness disagrees with the MILP optimum.
pub fn certify_window_milp(
    milp: &MilpEngine,
    witness_engine: &ExactEngine,
    w: &WindowModel,
    bound: DelayBound,
    limits: &CertifyLimits,
) -> Result<DelayCertificate, CoreError> {
    let window = cert_window_of(w);
    let window_hash = window.content_hash();
    let claimed = bound.delay.as_ticks();
    if w.n() < 2 {
        return Ok(DelayCertificate {
            window,
            window_hash,
            claimed,
            exact: bound.exact,
            witness: None,
            upper: UpperProof::SafeCap,
        });
    }
    if !bound.exact {
        return Ok(DelayCertificate {
            window,
            window_hash,
            claimed,
            exact: false,
            witness: None,
            upper: UpperProof::MilpCap,
        });
    }
    let problem = milp.build_problem(w);
    let tree = certify_upper_bound(&problem, Rational::from_int(i128::from(claimed)), limits)
        .map_err(|e| cert_err(format!("proof tree construction failed: {e}")))?;
    let rec = witness_engine
        .solve_recorded(w)
        .ok_or_else(|| cert_err("witness solve exhausted its budget"))?;
    if rec.value != claimed {
        return Err(cert_err(format!(
            "DP witness value {} disagrees with the MILP bound {claimed}",
            rec.value
        )));
    }
    Ok(DelayCertificate {
        window,
        window_hash,
        claimed,
        exact: true,
        witness: Some(
            rec.witness
                .iter()
                .map(|&c| CertChoice::from_code(c))
                .collect(),
        ),
        upper: UpperProof::BbTree { problem, tree },
    })
}

/// Runs the greedy schedulability analysis and emits the full certificate
/// bundle for it: one [`DelayCertificate`] per distinct window solved, one
/// [`WcrtCertificate`] per fresh task analysis, and the set-level
/// [`SchedCertificate`] transcript.
///
/// The returned report is the ordinary analysis result — certification
/// changes nothing about the verdicts, it only attaches proofs.
///
/// # Errors
///
/// Propagates analysis errors and [`CoreError::Certification`] emission
/// failures.
pub fn certify_task_set(
    set: &TaskSet,
    engine: &ExactEngine,
) -> Result<(SchedulabilityReport, CertificateSet), CoreError> {
    let (report, trace) = analyze_task_set_traced(set, engine)?;
    let mut bundle = CertificateSet::new(cert_task_set_of(set)?);
    let analyzer = WcrtAnalyzer::default();

    // Window certificates are deduplicated by content hash: across
    // fixed-point iterations and greedy rounds the same window recurs
    // constantly (this mirrors `CachedEngine`, but keyed on the *recorded*
    // window, not the canonicalized cache key).
    let mut seen_windows: HashMap<u64, (i64, bool)> = HashMap::new();
    let mut seen_wcrts: HashSet<(u32, Vec<u32>)> = HashSet::new();

    let mut current = set.all_nls();
    let mut rounds = Vec::with_capacity(trace.rounds.len());
    for (r, round) in trace.rounds.iter().enumerate() {
        if r > 0 {
            current = current.with_sensitivity(trace.promoted[r - 1], Sensitivity::Ls)?;
        }
        let mut marking: Vec<u32> = trace.promoted[..r].iter().map(|t| t.0).collect();
        marking.sort_unstable();
        let mut entries = Vec::with_capacity(round.len());
        for entry in round {
            entries.push(CertRoundEntry {
                task: entry.task.0,
                wcrt: entry.wcrt.as_ticks(),
                schedulable: entry.schedulable,
                fresh: entry.fresh,
            });
            if !entry.fresh || !seen_wcrts.insert((entry.task.0, marking.clone())) {
                continue;
            }
            // Deterministic replay of the fresh analysis under this
            // round's marking; the transcript gives every window length
            // the fixed point visited.
            let (analysis, ttrace) = analyzer.analyze_task_traced(&current, entry.task, engine)?;
            if analysis.wcrt != entry.wcrt || analysis.schedulable != entry.schedulable {
                return Err(cert_err(format!(
                    "replay of {} diverged from the traced run",
                    entry.task
                )));
            }
            let steps = certify_steps(
                engine,
                &current,
                entry.task,
                &ttrace,
                &mut seen_windows,
                &mut bundle,
            )?;
            bundle.wcrts.push(WcrtCertificate {
                task: entry.task.0,
                marking: marking.clone(),
                case: match ttrace.case {
                    WindowCase::Nls => CertCase::Nls,
                    WindowCase::LsCaseA => CertCase::LsCaseA,
                },
                steps,
                case_b: ttrace.case_b.map(|t| t.as_ticks()),
                wcrt: analysis.wcrt.as_ticks(),
                schedulable: analysis.schedulable,
            });
        }
        rounds.push(CertRound { entries });
    }
    bundle.sched = Some(SchedCertificate {
        rounds,
        promoted: trace.promoted.iter().map(|t| t.0).collect(),
        schedulable: trace.schedulable,
    });
    Ok((report, bundle))
}

/// Certifies every window of one task's fixed-point transcript, pushing
/// new window certificates into the bundle and returning the step list.
fn certify_steps(
    engine: &ExactEngine,
    current: &TaskSet,
    task: pmcs_model::TaskId,
    ttrace: &TaskTrace,
    seen_windows: &mut HashMap<u64, (i64, bool)>,
    bundle: &mut CertificateSet,
) -> Result<Vec<CertWcrtStep>, CoreError> {
    let mut steps = Vec::with_capacity(ttrace.steps.len());
    for st in &ttrace.steps {
        let window = WindowModel::build(current, task, ttrace.case, st.window_len)?;
        let cw = cert_window_of(&window);
        let hash = cw.content_hash();
        match seen_windows.get(&hash) {
            Some(&(claimed, exact)) => {
                if claimed != st.delay.as_ticks() || exact != st.exact {
                    return Err(cert_err(format!(
                        "window {hash:016x} solved twice with different bounds \
                         ({claimed} vs {})",
                        st.delay.as_ticks()
                    )));
                }
            }
            None => {
                let cert = certify_window_dp(
                    engine,
                    &window,
                    DelayBound {
                        delay: st.delay,
                        exact: st.exact,
                        nodes: 0,
                    },
                )?;
                seen_windows.insert(hash, (cert.claimed, cert.exact));
                bundle.windows.push(cert);
            }
        }
        steps.push(CertWcrtStep {
            window_len: st.window_len.as_ticks(),
            delay: st.delay.as_ticks(),
            exact: st.exact,
            window_hash: hash,
        });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulability::analyze_task_set;
    use crate::window::test_task;
    use pmcs_cert::check_certificate_set;
    use pmcs_model::TaskId;

    fn promoting_set() -> TaskSet {
        // From the schedulability tests: τ0's deadline tolerates one heavy
        // blocking interval but not two → the greedy loop promotes it.
        TaskSet::new(vec![
            {
                let t = test_task(0, 10, 2, 2, 10_000, 0, false);
                pmcs_model::Task::builder(t.id())
                    .exec(t.exec())
                    .copy_in(t.copy_in())
                    .copy_out(t.copy_out())
                    .sporadic(pmcs_model::Time::from_ticks(10_000))
                    .deadline(pmcs_model::Time::from_ticks(600))
                    .priority(t.priority())
                    .build()
                    .expect("valid task")
            },
            test_task(1, 300, 2, 2, 10_000, 1, false),
            test_task(2, 400, 2, 2, 10_000, 2, false),
        ])
        .expect("valid task set")
    }

    #[test]
    fn certified_report_matches_plain_analysis() {
        let set = promoting_set();
        let engine = ExactEngine::default();
        let (report, _) = certify_task_set(&set, &engine).expect("certification succeeds");
        let plain = analyze_task_set(&set, &engine).expect("analysis succeeds");
        assert_eq!(report, plain);
    }

    #[test]
    fn emitted_bundle_passes_the_independent_checker() {
        let set = promoting_set();
        let (_, bundle) =
            certify_task_set(&set, &ExactEngine::default()).expect("certification succeeds");
        assert!(!bundle.windows.is_empty());
        assert!(!bundle.wcrts.is_empty());
        let report = check_certificate_set(&bundle);
        assert!(report.ok(), "rejections: {:?}", report.rejections);
    }

    #[test]
    fn unschedulable_set_certifies_too() {
        let set = TaskSet::new(vec![
            test_task(0, 90, 5, 5, 100, 0, false),
            test_task(1, 90, 5, 5, 100, 1, false),
        ])
        .expect("valid task set");
        let (report, bundle) =
            certify_task_set(&set, &ExactEngine::default()).expect("certification succeeds");
        assert!(!report.schedulable());
        let sched = bundle.sched.as_ref().expect("set certificate present");
        assert!(!sched.schedulable);
        let check = check_certificate_set(&bundle);
        assert!(check.ok(), "rejections: {:?}", check.rejections);
    }

    #[test]
    fn dp_certificate_round_trips_through_json() {
        let set = promoting_set();
        let (_, bundle) =
            certify_task_set(&set, &ExactEngine::default()).expect("certification succeeds");
        let encoded = pmcs_cert::encode_certificate_set(&bundle);
        let decoded = pmcs_cert::decode_certificate_set(&encoded).expect("decodes");
        let report = check_certificate_set(&decoded);
        assert!(report.ok(), "rejections: {:?}", report.rejections);
    }

    #[test]
    fn milp_certificate_carries_a_proof_tree() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 5, 5, 1_000, 1, false),
        ])
        .expect("valid task set");
        let w = WindowModel::build(
            &set,
            TaskId(1),
            WindowCase::Nls,
            pmcs_model::Time::from_ticks(10),
        )
        .expect("valid window");
        let exact = ExactEngine::default();
        let milp = MilpEngine::default();
        let bound = crate::wcrt::DelayEngine::max_total_delay(&exact, &w).expect("bound");
        assert!(bound.exact);
        let cert = certify_window_milp(&milp, &exact, &w, bound, &CertifyLimits::default())
            .expect("milp certification succeeds");
        assert!(matches!(cert.upper, UpperProof::BbTree { .. }));
        // Wrap it in a bundle and run the checker's window phase.
        let mut bundle = CertificateSet::new(cert_task_set_of(&set).expect("convertible"));
        bundle.windows.push(cert);
        let report = check_certificate_set(&bundle);
        assert!(report.ok(), "rejections: {:?}", report.rejections);
    }

    #[test]
    fn recording_solve_matches_production_bound() {
        let set = promoting_set();
        let engine = ExactEngine::default();
        for id in [0u32, 1, 2] {
            for case in [WindowCase::Nls, WindowCase::LsCaseA] {
                let w =
                    WindowModel::build(&set, TaskId(id), case, pmcs_model::Time::from_ticks(50))
                        .expect("valid window");
                let bound = crate::wcrt::DelayEngine::max_total_delay(&engine, &w).expect("bound");
                if bound.exact {
                    let cert = certify_window_dp(&engine, &w, bound).expect("certifiable");
                    assert_eq!(cert.claimed, bound.delay.as_ticks());
                }
            }
        }
    }
}
