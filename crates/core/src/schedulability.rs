//! Schedulability analysis with greedy LS marking (Section VI).
//!
//! The greedy algorithm starts with every task NLS. Whenever the analysis
//! finds a task missing its deadline, that task is promoted to
//! latency-sensitive and the whole set is re-analyzed (the promotion
//! reduces the task's own blocking but may increase the interference it
//! inflicts on lower-priority tasks through urgent executions). If a task
//! that is *already* LS misses its deadline, the set is deemed
//! unschedulable.

use std::fmt;

use pmcs_model::{Sensitivity, TaskId, TaskSet, Time};

use crate::error::CoreError;
use crate::wcrt::{DelayEngine, WcrtAnalyzer};

/// Per-task verdict in a [`SchedulabilityReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskVerdict {
    /// The task.
    pub task: TaskId,
    /// WCRT bound under the final LS assignment.
    pub wcrt: Time,
    /// The task's relative deadline.
    pub deadline: Time,
    /// `wcrt ≤ deadline`.
    pub schedulable: bool,
    /// Final sensitivity marking.
    pub sensitivity: Sensitivity,
}

/// The final latency-sensitivity assignment chosen by the greedy
/// algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LsAssignment {
    /// Tasks marked latency-sensitive, in promotion order.
    pub promoted: Vec<TaskId>,
}

impl fmt::Display for LsAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.promoted.is_empty() {
            return write!(f, "no LS tasks");
        }
        write!(f, "LS: ")?;
        for (i, t) in self.promoted.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Outcome of [`analyze_task_set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulabilityReport {
    verdicts: Vec<TaskVerdict>,
    assignment: LsAssignment,
    rounds: usize,
}

impl SchedulabilityReport {
    /// `true` iff every task meets its deadline under the final marking.
    pub fn schedulable(&self) -> bool {
        self.verdicts.iter().all(|v| v.schedulable)
    }

    /// Per-task verdicts (decreasing priority order).
    pub fn verdicts(&self) -> &[TaskVerdict] {
        &self.verdicts
    }

    /// The verdict for one task.
    pub fn verdict(&self, task: TaskId) -> Option<&TaskVerdict> {
        self.verdicts.iter().find(|v| v.task == task)
    }

    /// The final LS assignment.
    pub fn assignment(&self) -> &LsAssignment {
        &self.assignment
    }

    /// Greedy rounds performed (1 = no promotion needed).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl fmt::Display for SchedulabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} after {} round(s); {}",
            if self.schedulable() {
                "SCHEDULABLE"
            } else {
                "NOT SCHEDULABLE"
            },
            self.rounds,
            self.assignment
        )?;
        for v in &self.verdicts {
            writeln!(
                f,
                "  {} [{}] R={} D={} {}",
                v.task,
                v.sensitivity,
                v.wcrt,
                v.deadline,
                if v.schedulable { "ok" } else { "MISS" }
            )?;
        }
        Ok(())
    }
}

/// Runs the greedy LS-marking schedulability analysis of Section VI on a
/// task set (initial markings are ignored: the algorithm starts all-NLS).
///
/// # Errors
///
/// Propagates engine and model errors from the per-task analyses.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn analyze_task_set(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<SchedulabilityReport, CoreError> {
    let analyzer = WcrtAnalyzer::default();
    let mut current = set.all_nls();
    let mut promoted = Vec::new();

    // Each round either terminates or promotes one task; at most n
    // promotions are possible.
    for round in 1..=set.len() + 1 {
        let mut verdicts = Vec::with_capacity(current.len());
        let mut failing: Option<TaskId> = None;
        for task in current.iter() {
            let analysis = analyzer.analyze_task(&current, task.id(), engine)?;
            verdicts.push(TaskVerdict {
                task: task.id(),
                wcrt: analysis.wcrt,
                deadline: task.deadline(),
                schedulable: analysis.schedulable,
                sensitivity: task.sensitivity(),
            });
            if !analysis.schedulable && failing.is_none() {
                failing = Some(task.id());
                // An NLS miss triggers a promotion and a full re-analysis
                // anyway — skip the rest of this round (the paper's
                // algorithm restarts at the first miss). An LS miss is
                // final, so finish the scan for a complete report.
                if !task.is_ls() {
                    break;
                }
            }
        }
        match failing {
            None => {
                return Ok(SchedulabilityReport {
                    verdicts,
                    assignment: LsAssignment { promoted },
                    rounds: round,
                });
            }
            Some(task) => {
                let is_ls = current.get(task).map(|t| t.is_ls()).unwrap_or(false);
                if is_ls {
                    // Already LS and still missing: unschedulable.
                    return Ok(SchedulabilityReport {
                        verdicts,
                        assignment: LsAssignment { promoted },
                        rounds: round,
                    });
                }
                current = current.with_sensitivity(task, Sensitivity::Ls)?;
                promoted.push(task);
            }
        }
    }
    unreachable!("greedy LS marking performs at most n+1 rounds");
}

/// Analyzes a task set with its **current** LS/NLS markings (no greedy
/// promotion). Useful to evaluate a hand-chosen assignment, and used by
/// the baselines to run the formulation in all-NLS mode.
///
/// # Errors
///
/// Propagates engine and model errors from the per-task analyses.
pub fn analyze_fixed_marking(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<SchedulabilityReport, CoreError> {
    let analyzer = WcrtAnalyzer::default();
    let mut verdicts = Vec::with_capacity(set.len());
    for task in set.iter() {
        let analysis = analyzer.analyze_task(set, task.id(), engine)?;
        verdicts.push(TaskVerdict {
            task: task.id(),
            wcrt: analysis.wcrt,
            deadline: task.deadline(),
            schedulable: analysis.schedulable,
            sensitivity: task.sensitivity(),
        });
    }
    Ok(SchedulabilityReport {
        verdicts,
        assignment: LsAssignment {
            promoted: set.latency_sensitive().map(|t| t.id()).collect(),
        },
        rounds: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::window::test_task;

    #[test]
    fn easy_set_is_schedulable_without_promotions() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert!(r.schedulable());
        assert!(r.assignment().promoted.is_empty());
        assert_eq!(r.rounds(), 1);
        assert_eq!(r.verdicts().len(), 2);
    }

    #[test]
    fn overload_is_unschedulable() {
        let set = TaskSet::new(vec![
            test_task(0, 90, 5, 5, 100, 0, false),
            test_task(1, 90, 5, 5, 100, 1, false),
        ])
        .unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert!(!r.schedulable());
    }

    #[test]
    fn promotion_rescues_a_tightly_constrained_task() {
        // τ0 has a deadline that tolerates one heavy blocking interval but
        // not two → NLS analysis fails, LS promotion succeeds.
        let tasks = vec![
            {
                let mut t = test_task(0, 10, 2, 2, 10_000, 0, false);
                // Deadline between the LS and NLS response times.
                t = pmcs_model::Task::builder(t.id())
                    .exec(t.exec())
                    .copy_in(t.copy_in())
                    .copy_out(t.copy_out())
                    .sporadic(Time::from_ticks(10_000))
                    .deadline(Time::from_ticks(600))
                    .priority(t.priority())
                    .build()
                    .unwrap();
                t
            },
            test_task(1, 300, 2, 2, 10_000, 1, false),
            test_task(2, 400, 2, 2, 10_000, 2, false),
        ];
        let set = TaskSet::new(tasks).unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert!(r.schedulable(), "{r}");
        assert_eq!(r.assignment().promoted, vec![TaskId(0)]);
        assert!(r.rounds() > 1);
        assert_eq!(r.verdict(TaskId(0)).unwrap().sensitivity, Sensitivity::Ls);
    }

    #[test]
    fn fixed_marking_respects_existing_ls_flags() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, true),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .unwrap();
        let r = analyze_fixed_marking(&set, &ExactEngine::default()).unwrap();
        assert_eq!(r.assignment().promoted, vec![TaskId(0)]);
        assert_eq!(r.verdict(TaskId(0)).unwrap().sensitivity, Sensitivity::Ls);
    }

    #[test]
    fn report_display_mentions_verdicts() {
        let set = TaskSet::new(vec![test_task(0, 10, 2, 2, 1_000, 0, false)]).unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        let s = r.to_string();
        assert!(s.contains("SCHEDULABLE"));
        assert!(s.contains("τ0"));
        assert!(LsAssignment::default().to_string().contains("no LS"));
    }
}
