//! Schedulability analysis with greedy LS marking (Section VI).
//!
//! The greedy algorithm starts with every task NLS. Whenever the analysis
//! finds a task missing its deadline, that task is promoted to
//! latency-sensitive and the whole set is re-analyzed (the promotion
//! reduces the task's own blocking but may increase the interference it
//! inflicts on lower-priority tasks through urgent executions). If a task
//! that is *already* LS misses its deadline, the set is deemed
//! unschedulable.
//!
//! Re-analysis after a promotion skips every task whose windows the
//! promotion provably cannot change (see [`promotion_affects`]): the
//! previous round's [`TaskAnalysis`] is reused verbatim. Combined with a
//! [`CachedEngine`](crate::CachedEngine) this makes greedy rounds after
//! the first one cheap.

use std::fmt;

use pmcs_model::{Sensitivity, TaskId, TaskSet, Time};

use crate::error::CoreError;
use crate::session::{AnalysisSession, VerdictCache, VerdictKey};
use crate::wcrt::{DelayEngine, TaskAnalysis, WcrtAnalyzer};

/// `true` iff promoting `promoted` to latency-sensitive can change the
/// WCRT analysis of `analyzed`.
///
/// The analysis windows of `analyzed` contain every other task of the
/// set, so a promotion flips the LS bit of `promoted` inside all of them.
/// That bit is *inert*, however, when both
///
/// * `promoted` has a zero copy-in — an urgent execution then has exactly
///   the CPU demand of a plain one, and no cancellation charge can be
///   attributed to its prefetch; and
/// * no third task has strictly lower priority than `promoted` — rules
///   R3/R4 (Constraint 8) let an LS task trigger cancellations and urgent
///   executions only at the expense of a lower-priority victim, so with no
///   victim the flag enables nothing.
///
/// This is the same canonicalization applied by
/// [`cache::WindowKey`](crate::cache::WindowKey) and by the DP engine, so
/// a "not affected" verdict is exact, not heuristic: every window of
/// `analyzed` before and after the promotion maps to the same canonical
/// key and the same delay bound.
pub fn promotion_affects(set: &TaskSet, promoted: TaskId, analyzed: TaskId) -> bool {
    if promoted == analyzed {
        return true;
    }
    let Some(pj) = set.get(promoted) else {
        return true; // Unknown task: be conservative.
    };
    if pj.copy_in() > Time::ZERO {
        return true;
    }
    set.iter().any(|t| {
        t.id() != analyzed && t.id() != promoted && pj.priority().is_higher_than(t.priority())
    })
}

/// Per-task verdict in a [`SchedulabilityReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskVerdict {
    /// The task.
    pub task: TaskId,
    /// WCRT bound under the final LS assignment.
    pub wcrt: Time,
    /// The task's relative deadline.
    pub deadline: Time,
    /// `wcrt ≤ deadline`.
    pub schedulable: bool,
    /// Final sensitivity marking.
    pub sensitivity: Sensitivity,
}

/// The final latency-sensitivity assignment chosen by the greedy
/// algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LsAssignment {
    /// Tasks marked latency-sensitive, in promotion order.
    pub promoted: Vec<TaskId>,
}

impl fmt::Display for LsAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.promoted.is_empty() {
            return write!(f, "no LS tasks");
        }
        write!(f, "LS: ")?;
        for (i, t) in self.promoted.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Outcome of [`analyze_task_set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulabilityReport {
    verdicts: Vec<TaskVerdict>,
    assignment: LsAssignment,
    rounds: usize,
}

impl SchedulabilityReport {
    /// `true` iff every task meets its deadline under the final marking.
    pub fn schedulable(&self) -> bool {
        self.verdicts.iter().all(|v| v.schedulable)
    }

    /// Per-task verdicts (decreasing priority order).
    pub fn verdicts(&self) -> &[TaskVerdict] {
        &self.verdicts
    }

    /// The verdict for one task.
    pub fn verdict(&self, task: TaskId) -> Option<&TaskVerdict> {
        self.verdicts.iter().find(|v| v.task == task)
    }

    /// The final LS assignment.
    pub fn assignment(&self) -> &LsAssignment {
        &self.assignment
    }

    /// Greedy rounds performed (1 = no promotion needed; 0 = empty
    /// session, nothing analyzed).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The report of an empty [`AnalysisSession`]: no verdicts, no LS
    /// tasks, trivially schedulable, zero rounds.
    pub(crate) fn empty() -> Self {
        SchedulabilityReport {
            verdicts: Vec::new(),
            assignment: LsAssignment::default(),
            rounds: 0,
        }
    }
}

impl fmt::Display for SchedulabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} after {} round(s); {}",
            if self.schedulable() {
                "SCHEDULABLE"
            } else {
                "NOT SCHEDULABLE"
            },
            self.rounds,
            self.assignment
        )?;
        for v in &self.verdicts {
            writeln!(
                f,
                "  {} [{}] R={} D={} {}",
                v.task,
                v.sensitivity,
                v.wcrt,
                v.deadline,
                if v.schedulable { "ok" } else { "MISS" }
            )?;
        }
        Ok(())
    }
}

/// Runs the greedy LS-marking schedulability analysis of Section VI on a
/// task set (initial markings are ignored: the algorithm starts all-NLS).
///
/// This is the trivial [`AnalysisSession`] use: admit every task into a
/// fresh session and read its report — batch and incremental analysis
/// share one code path.
///
/// # Errors
///
/// Propagates engine and model errors from the per-task analyses.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn analyze_task_set(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<SchedulabilityReport, CoreError> {
    let mut session = AnalysisSession::new(engine);
    session.admit_all(set.iter().cloned())?;
    Ok(session.into_report())
}

/// One per-task entry of a greedy round transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundEntry {
    /// The analyzed task.
    pub task: TaskId,
    /// WCRT bound under the round's marking.
    pub wcrt: Time,
    /// `wcrt ≤ deadline`.
    pub schedulable: bool,
    /// `true` iff the analysis ran fresh this round; `false` when the
    /// verdict was reused from an earlier round across a provably inert
    /// promotion (see [`promotion_affects`]).
    pub fresh: bool,
}

/// Transcript of a greedy LS-marking run: per round the scanned tasks in
/// priority order, plus the promotion sequence — everything certificate
/// emission needs to replay the marking decisions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GreedyTrace {
    /// One entry list per round, in scan order (a prefix of the set's
    /// priority order; non-final rounds stop at the promoted task).
    pub rounds: Vec<Vec<RoundEntry>>,
    /// Promoted task ids, in promotion order (round `r` scans under the
    /// marking `promoted[..r]`).
    pub promoted: Vec<TaskId>,
    /// Final verdict.
    pub schedulable: bool,
}

/// [`analyze_task_set`] plus the greedy-round transcript used by
/// certificate emission (see [`certify`](crate::certify)).
///
/// # Errors
///
/// Same as [`analyze_task_set`].
pub fn analyze_task_set_traced(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<(SchedulabilityReport, GreedyTrace), CoreError> {
    let mut trace = GreedyTrace::default();
    let report = greedy_analyze(set, engine, true, Some(&mut trace), None)?;
    Ok((report, trace))
}

/// [`analyze_task_set`] with the cross-round verdict reuse disabled:
/// every greedy round re-runs every task's fixed point from scratch.
///
/// Exists only as a differential-testing oracle for the reuse logic; it is
/// never faster and never gives a different report.
#[doc(hidden)]
pub fn analyze_task_set_no_reuse(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<SchedulabilityReport, CoreError> {
    greedy_analyze(set, engine, false, None, None)
}

/// The greedy LS-marking loop shared by every analysis entry point:
/// batch ([`analyze_task_set`]), traced ([`analyze_task_set_traced`]),
/// the no-reuse oracle, and incremental
/// [`AnalysisSession`](crate::AnalysisSession) operations.
///
/// `verdicts`, when present, is a session-lifetime content-addressed
/// cache of per-task analyses: each fixed point is looked up under its
/// [`VerdictKey`] before running and stored after. This is orthogonal to
/// the *round-level* `carried` reuse (which survives provably inert
/// promotions within one call) — the cache additionally survives across
/// calls, i.e. across session operations.
pub(crate) fn greedy_analyze(
    set: &TaskSet,
    engine: &impl DelayEngine,
    reuse: bool,
    mut trace: Option<&mut GreedyTrace>,
    mut verdict_cache: Option<&mut VerdictCache>,
) -> Result<SchedulabilityReport, CoreError> {
    let analyzer = WcrtAnalyzer::default();
    let mut current = set.all_nls();
    let mut promoted = Vec::new();
    // Analyses carried over from earlier rounds, indexed like the set's
    // iteration order; an entry survives a promotion only when
    // `promotion_affects` proves the promotion inert for that task.
    let mut carried: Vec<Option<TaskAnalysis>> = vec![None; set.len()];

    // Each round either terminates or promotes one task; at most n
    // promotions are possible.
    for round in 1..=set.len() + 1 {
        if let Some(tr) = trace.as_deref_mut() {
            tr.rounds.push(Vec::new());
        }
        let mut verdicts = Vec::with_capacity(current.len());
        let mut failing: Option<TaskId> = None;
        for (idx, task) in current.iter().enumerate() {
            let fresh = carried[idx].is_none();
            let analysis = match carried[idx].as_ref() {
                Some(a) => a.clone(),
                None => {
                    let a = match verdict_cache.as_deref_mut() {
                        Some(cache) => {
                            let key = VerdictKey::of(&current, task.id());
                            match cache.get(&key, task.id()) {
                                Some(hit) => hit,
                                None => {
                                    let a = analyzer.analyze_task(&current, task.id(), engine)?;
                                    cache.insert(key, a.clone());
                                    a
                                }
                            }
                        }
                        None => analyzer.analyze_task(&current, task.id(), engine)?,
                    };
                    carried[idx] = Some(a.clone());
                    a
                }
            };
            if let Some(tr) = trace.as_deref_mut() {
                tr.rounds
                    .last_mut()
                    .expect("round entry pushed above")
                    .push(RoundEntry {
                        task: task.id(),
                        wcrt: analysis.wcrt,
                        schedulable: analysis.schedulable,
                        fresh,
                    });
            }
            verdicts.push(TaskVerdict {
                task: task.id(),
                wcrt: analysis.wcrt,
                deadline: task.deadline(),
                schedulable: analysis.schedulable,
                sensitivity: task.sensitivity(),
            });
            if !analysis.schedulable && failing.is_none() {
                failing = Some(task.id());
                // An NLS miss triggers a promotion and a full re-analysis
                // anyway — skip the rest of this round (the paper's
                // algorithm restarts at the first miss). An LS miss is
                // final, so finish the scan for a complete report.
                if !task.is_ls() {
                    break;
                }
            }
        }
        match failing {
            None => {
                if let Some(tr) = trace.as_deref_mut() {
                    tr.promoted = promoted.clone();
                    tr.schedulable = true;
                }
                return Ok(SchedulabilityReport {
                    verdicts,
                    assignment: LsAssignment { promoted },
                    rounds: round,
                });
            }
            Some(task) => {
                let is_ls = current.get(task).map(|t| t.is_ls()).unwrap_or(false);
                if is_ls {
                    // Already LS and still missing: unschedulable.
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.promoted = promoted.clone();
                        tr.schedulable = false;
                    }
                    return Ok(SchedulabilityReport {
                        verdicts,
                        assignment: LsAssignment { promoted },
                        rounds: round,
                    });
                }
                for (idx, t) in current.iter().enumerate() {
                    if !reuse || promotion_affects(&current, task, t.id()) {
                        carried[idx] = None;
                    }
                }
                current = current.with_sensitivity(task, Sensitivity::Ls)?;
                promoted.push(task);
            }
        }
    }
    unreachable!("greedy LS marking performs at most n+1 rounds");
}

/// Analyzes a task set with its **current** LS/NLS markings (no greedy
/// promotion). Useful to evaluate a hand-chosen assignment, and used by
/// the baselines to run the formulation in all-NLS mode.
///
/// # Errors
///
/// Propagates engine and model errors from the per-task analyses.
pub fn analyze_fixed_marking(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<SchedulabilityReport, CoreError> {
    let analyzer = WcrtAnalyzer::default();
    let mut verdicts = Vec::with_capacity(set.len());
    for task in set.iter() {
        let analysis = analyzer.analyze_task(set, task.id(), engine)?;
        verdicts.push(TaskVerdict {
            task: task.id(),
            wcrt: analysis.wcrt,
            deadline: task.deadline(),
            schedulable: analysis.schedulable,
            sensitivity: task.sensitivity(),
        });
    }
    Ok(SchedulabilityReport {
        verdicts,
        assignment: LsAssignment {
            promoted: set.latency_sensitive().map(|t| t.id()).collect(),
        },
        rounds: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEngine;
    use crate::engine::ExactEngine;
    use crate::wcrt::DelayBound;
    use crate::window::{test_task, WindowModel};
    use std::cell::Cell;

    /// Wraps an engine and counts invocations, to make the greedy loop's
    /// re-analysis skipping observable.
    struct CountingEngine<E> {
        inner: E,
        calls: Cell<u64>,
    }

    impl<E> CountingEngine<E> {
        fn new(inner: E) -> Self {
            CountingEngine {
                inner,
                calls: Cell::new(0),
            }
        }
    }

    impl<E: DelayEngine> DelayEngine for CountingEngine<E> {
        fn max_total_delay(&self, w: &WindowModel) -> Result<DelayBound, CoreError> {
            self.calls.set(self.calls.get() + 1);
            self.inner.max_total_delay(w)
        }
    }

    #[test]
    fn easy_set_is_schedulable_without_promotions() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert!(r.schedulable());
        assert!(r.assignment().promoted.is_empty());
        assert_eq!(r.rounds(), 1);
        assert_eq!(r.verdicts().len(), 2);
    }

    #[test]
    fn overload_is_unschedulable() {
        let set = TaskSet::new(vec![
            test_task(0, 90, 5, 5, 100, 0, false),
            test_task(1, 90, 5, 5, 100, 1, false),
        ])
        .unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert!(!r.schedulable());
    }

    #[test]
    fn promotion_rescues_a_tightly_constrained_task() {
        // τ0 has a deadline that tolerates one heavy blocking interval but
        // not two → NLS analysis fails, LS promotion succeeds.
        let tasks = vec![
            {
                let mut t = test_task(0, 10, 2, 2, 10_000, 0, false);
                // Deadline between the LS and NLS response times.
                t = pmcs_model::Task::builder(t.id())
                    .exec(t.exec())
                    .copy_in(t.copy_in())
                    .copy_out(t.copy_out())
                    .sporadic(Time::from_ticks(10_000))
                    .deadline(Time::from_ticks(600))
                    .priority(t.priority())
                    .build()
                    .unwrap();
                t
            },
            test_task(1, 300, 2, 2, 10_000, 1, false),
            test_task(2, 400, 2, 2, 10_000, 2, false),
        ];
        let set = TaskSet::new(tasks).unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert!(r.schedulable(), "{r}");
        assert_eq!(r.assignment().promoted, vec![TaskId(0)]);
        assert!(r.rounds() > 1);
        assert_eq!(r.verdict(TaskId(0)).unwrap().sensitivity, Sensitivity::Ls);
    }

    #[test]
    fn fixed_marking_respects_existing_ls_flags() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, true),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .unwrap();
        let r = analyze_fixed_marking(&set, &ExactEngine::default()).unwrap();
        assert_eq!(r.assignment().promoted, vec![TaskId(0)]);
        assert_eq!(r.verdict(TaskId(0)).unwrap().sensitivity, Sensitivity::Ls);
    }

    #[test]
    fn promotion_affects_is_exact_about_inert_promotions() {
        // τ1: zero copy-in, lowest priority → its promotion is inert for
        // everyone else; τ0: positive copy-in → always relevant.
        let set = TaskSet::new(vec![
            test_task(0, 50, 5, 5, 200, 0, false),
            test_task(1, 100, 0, 0, 1_000, 1, false),
        ])
        .unwrap();
        assert!(promotion_affects(&set, TaskId(1), TaskId(1)));
        assert!(!promotion_affects(&set, TaskId(1), TaskId(0)));
        assert!(promotion_affects(&set, TaskId(0), TaskId(1)));
        // With a third, even-lower task, τ1's promotion gains a victim.
        let set3 = TaskSet::new(vec![
            test_task(0, 50, 5, 5, 200, 0, false),
            test_task(1, 100, 0, 0, 1_000, 1, false),
            test_task(2, 10, 0, 3, 5_000, 2, false),
        ])
        .unwrap();
        assert!(promotion_affects(&set3, TaskId(1), TaskId(0)));
        // But τ1's promotion stays inert for τ2: inside τ2's windows the
        // only lower-priority candidate is τ2 itself, which never appears.
        assert!(!promotion_affects(&set3, TaskId(1), TaskId(2)));
        // τ2 (zero copy-in, lowest priority) promotes inertly for all.
        assert!(!promotion_affects(&set3, TaskId(2), TaskId(0)));
    }

    #[test]
    fn inert_promotion_skips_unaffected_reanalyses() {
        // τ1 misses as NLS, is promoted (copy-in 0, lowest priority → the
        // promotion is provably inert for τ0), and misses again as LS.
        // Round 2 must reuse τ0's verdict: the counting engine sees
        // strictly fewer calls with reuse than without, with an identical
        // report.
        let set = TaskSet::new(vec![test_task(0, 50, 5, 5, 200, 0, false), {
            let t = test_task(1, 100, 0, 0, 1_000, 1, false);
            pmcs_model::Task::builder(t.id())
                .exec(t.exec())
                .sporadic(Time::from_ticks(1_000))
                .deadline(Time::from_ticks(120))
                .priority(t.priority())
                .build()
                .unwrap()
        }])
        .unwrap();

        let counting = CountingEngine::new(ExactEngine::default());
        let with_reuse = analyze_task_set(&set, &counting).unwrap();
        let calls_reuse = counting.calls.get();

        let counting = CountingEngine::new(ExactEngine::default());
        let no_reuse = analyze_task_set_no_reuse(&set, &counting).unwrap();
        let calls_no_reuse = counting.calls.get();

        assert_eq!(with_reuse, no_reuse);
        assert!(with_reuse.rounds() > 1, "{with_reuse}");
        assert!(
            calls_reuse < calls_no_reuse,
            "reuse must skip τ0's round-2 windows ({calls_reuse} vs {calls_no_reuse})"
        );
    }

    #[test]
    fn reuse_matches_no_reuse_on_promoting_sets() {
        // A promotion with positive copy-in invalidates everything; the
        // reuse path must still agree with the from-scratch oracle.
        let set = TaskSet::new(vec![
            {
                let t = test_task(0, 10, 2, 2, 10_000, 0, false);
                pmcs_model::Task::builder(t.id())
                    .exec(t.exec())
                    .copy_in(t.copy_in())
                    .copy_out(t.copy_out())
                    .sporadic(Time::from_ticks(10_000))
                    .deadline(Time::from_ticks(600))
                    .priority(t.priority())
                    .build()
                    .unwrap()
            },
            test_task(1, 300, 2, 2, 10_000, 1, false),
            test_task(2, 400, 2, 2, 10_000, 2, false),
        ])
        .unwrap();
        let a = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        let b = analyze_task_set_no_reuse(&set, &ExactEngine::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_rounds_hit_the_delay_cache() {
        // Across fixed-point iterations and greedy rounds many windows
        // repeat; a CachedEngine must observe a non-zero hit-rate.
        let set = TaskSet::new(vec![
            {
                let t = test_task(0, 10, 2, 2, 10_000, 0, false);
                pmcs_model::Task::builder(t.id())
                    .exec(t.exec())
                    .copy_in(t.copy_in())
                    .copy_out(t.copy_out())
                    .sporadic(Time::from_ticks(10_000))
                    .deadline(Time::from_ticks(600))
                    .priority(t.priority())
                    .build()
                    .unwrap()
            },
            test_task(1, 300, 2, 2, 10_000, 1, false),
            test_task(2, 400, 2, 2, 10_000, 2, false),
        ])
        .unwrap();
        let engine = CachedEngine::new(ExactEngine::default());
        let cached = analyze_task_set(&set, &engine).unwrap();
        let stats = engine.stats();
        assert!(stats.hits > 0, "expected cache hits, got {stats}");
        let plain = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert_eq!(cached, plain, "caching must not change the report");
    }

    #[test]
    fn report_display_mentions_verdicts() {
        let set = TaskSet::new(vec![test_task(0, 10, 2, 2, 1_000, 0, false)]).unwrap();
        let r = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        let s = r.to_string();
        assert!(s.contains("SCHEDULABLE"));
        assert!(s.contains("τ0"));
        assert!(LsAssignment::default().to_string().contains("no LS"));
    }
}
