//! Integer time used throughout the workspace.
//!
//! All analyses and the discrete-event simulator operate on an integer
//! timeline so results are exactly reproducible across runs and platforms.
//! One [`Time`] tick corresponds to **one microsecond**; the evaluation
//! workloads of the paper (periods log-uniform in `[10, 100]` ms) map to
//! `[10_000, 100_000]` ticks.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A point in time or a duration, in integer ticks (1 tick = 1 µs).
///
/// `Time` is deliberately a single type for both instants and durations, as
/// is conventional in response-time analysis where both live on the same
/// one-dimensional timeline. Arithmetic panics on overflow in debug builds
/// (standard `i64` semantics); the magnitudes used by the analyses
/// (≤ hours in µs) are far below `i64::MAX`.
///
/// # Example
///
/// ```
/// use pmcs_model::Time;
///
/// let period = Time::from_millis(10);
/// assert_eq!(period.as_ticks(), 10_000);
/// assert_eq!(period + Time::from_micros(500), Time::from_micros(10_500));
/// assert_eq!(period.div_ceil(Time::from_millis(3)), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// Largest representable time; used as "infinity" sentinel by analyses.
    pub const MAX: Time = Time(i64::MAX);
    /// One tick (1 µs).
    pub const TICK: Time = Time(1);

    /// Creates a time from raw ticks.
    ///
    /// ```
    /// # use pmcs_model::Time;
    /// assert_eq!(Time::from_ticks(42).as_ticks(), 42);
    /// ```
    #[inline]
    pub const fn from_ticks(ticks: i64) -> Self {
        Time(ticks)
    }

    /// Creates a time from microseconds (1 µs = 1 tick).
    #[inline]
    pub const fn from_micros(us: i64) -> Self {
        Time(us)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Time(ms * 1_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Time(s * 1_000_000)
    }

    /// Raw tick count.
    #[inline]
    pub const fn as_ticks(self) -> i64 {
        self.0
    }

    /// This time expressed in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as a float tick count (for LP coefficients).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Builds a time from a float tick count, rounding to the nearest tick.
    ///
    /// Used when converting utilization-derived execution times back to the
    /// integer timeline; callers that need a *safe* (pessimistic) conversion
    /// should use [`Time::from_f64_ceil`].
    #[inline]
    pub fn from_f64_round(value: f64) -> Self {
        Time(value.round() as i64)
    }

    /// Builds a time from a float tick count, rounding up (pessimistic).
    #[inline]
    pub fn from_f64_ceil(value: f64) -> Self {
        Time(value.ceil() as i64)
    }

    /// `true` iff this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` iff this time is non-negative (valid duration).
    #[inline]
    pub const fn is_duration(self) -> bool {
        self.0 >= 0
    }

    /// Saturating subtraction clamped at zero: `max(self - rhs, 0)`.
    ///
    /// ```
    /// # use pmcs_model::Time;
    /// assert_eq!(Time::from_ticks(3).saturating_sub(Time::from_ticks(5)), Time::ZERO);
    /// ```
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time((self.0 - rhs.0).max(0))
    }

    /// Checked addition that saturates at [`Time::MAX`] (infinity sentinel
    /// stays infinite).
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Integer ceiling division of two times: `ceil(self / divisor)`.
    ///
    /// This is the `⌈δ/T⌉` used by sporadic arrival curves.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero or negative, or if `self` is negative.
    #[inline]
    pub fn div_ceil(self, divisor: Time) -> u64 {
        assert!(divisor.0 > 0, "div_ceil: divisor must be positive");
        assert!(self.0 >= 0, "div_ceil: dividend must be non-negative");
        (self.0 as u64).div_ceil(divisor.0 as u64)
    }

    /// Integer floor division of two times: `floor(self / divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero or negative, or if `self` is negative.
    #[inline]
    pub fn div_floor(self, divisor: Time) -> u64 {
        assert!(divisor.0 > 0, "div_floor: divisor must be positive");
        assert!(self.0 >= 0, "div_floor: dividend must be non-negative");
        self.0 as u64 / divisor.0 as u64
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({})", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == i64::MAX {
            return write!(f, "∞");
        }
        if self.0.abs() >= 1_000 && self.0 % 1_000 == 0 {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + *t)
    }
}

impl From<i64> for Time {
    fn from(ticks: i64) -> Self {
        Time(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Time::from_micros(1), Time::from_ticks(1));
        assert_eq!(Time::from_millis(1), Time::from_ticks(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ticks(1_000_000));
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = Time::from_ticks(7);
        let b = Time::from_ticks(3);
        assert_eq!(a + b, Time::from_ticks(10));
        assert_eq!(a - b, Time::from_ticks(4));
        assert_eq!(a * 2, Time::from_ticks(14));
        assert_eq!(2 * a, Time::from_ticks(14));
        assert_eq!(a / 2, Time::from_ticks(3));
        assert_eq!(a % b, Time::from_ticks(1));
        assert_eq!(-a, Time::from_ticks(-7));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(
            Time::from_ticks(3).saturating_sub(Time::from_ticks(10)),
            Time::ZERO
        );
        assert_eq!(
            Time::from_ticks(10).saturating_sub(Time::from_ticks(3)),
            Time::from_ticks(7)
        );
    }

    #[test]
    fn saturating_add_preserves_infinity() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ticks(5)), Time::MAX);
    }

    #[test]
    fn div_ceil_and_floor() {
        let t = Time::from_ticks(10);
        assert_eq!(Time::from_ticks(25).div_ceil(t), 3);
        assert_eq!(Time::from_ticks(30).div_ceil(t), 3);
        assert_eq!(Time::from_ticks(25).div_floor(t), 2);
        assert_eq!(Time::from_ticks(30).div_floor(t), 3);
        assert_eq!(Time::ZERO.div_ceil(t), 0);
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn div_ceil_rejects_zero_divisor() {
        let _ = Time::from_ticks(5).div_ceil(Time::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Time::from_ticks(4);
        let b = Time::from_ticks(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_times() {
        let v = [
            Time::from_ticks(1),
            Time::from_ticks(2),
            Time::from_ticks(3),
        ];
        let s: Time = v.iter().sum();
        assert_eq!(s, Time::from_ticks(6));
        let s2: Time = v.into_iter().sum();
        assert_eq!(s2, Time::from_ticks(6));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Time::from_millis(10).to_string(), "10ms");
        assert_eq!(Time::from_ticks(1_500).to_string(), "1500µs");
        assert_eq!(Time::MAX.to_string(), "∞");
    }

    #[test]
    fn float_conversions() {
        assert_eq!(Time::from_f64_round(2.4), Time::from_ticks(2));
        assert_eq!(Time::from_f64_round(2.6), Time::from_ticks(3));
        assert_eq!(Time::from_f64_ceil(2.1), Time::from_ticks(3));
        assert_eq!(Time::from_ticks(5).as_f64(), 5.0);
    }
}
