//! Shared-bus contention model with per-core bandwidth regulation.
//!
//! The paper analyzes each core in isolation: every core owns a private
//! DMA engine and a crossbar provides contention-free point-to-point
//! paths to memory, so all contention is folded into the per-task copy
//! bounds `l_i`/`u_i`. Real QorIQ-class targets are not that generous —
//! the per-core DMA engines share one bus/DRAM controller. [`BusModel`]
//! makes that assumption explicit and optional:
//!
//! * [`BusModel::contention_free`] — the paper's crossbar. Transfers
//!   from different cores never interfere; this is the default for
//!   every platform built without an explicit bus, so single-core and
//!   legacy multi-core experiments are bit-for-bit unchanged.
//! * [`BusModel::regulated`] — a MemGuard-style bandwidth-regulated
//!   shared bus (Agrawal et al., arXiv 1809.05921): every core `p_m`
//!   holds a budget of `Q_m` bus ticks that replenishes at every
//!   multiple of a global period `P`. One tick of bus service moves one
//!   tick worth of DMA data; a core whose budget is exhausted stalls —
//!   even if the bus is idle — until the next replenishment (hard,
//!   non-work-conserving regulation, which is what makes per-core
//!   interference bounds compositional).
//!
//! The admission constraint `Σ_m Q_m ≤ P` is validated at construction:
//! it guarantees that a continuously backlogged core always receives
//! its full budget within every period, which the contention analysis
//! in `pmcs-core` relies on.

use std::fmt;

use crate::error::ModelError;
use crate::platform::CoreId;
use crate::time::Time;

/// Memory-bus model of a platform: either the paper's contention-free
/// crossbar or a shared bus under per-core bandwidth regulation.
///
/// # Example
///
/// ```
/// use pmcs_model::{BusModel, CoreId, Time};
///
/// let bus = BusModel::regulated(
///     Time::from_ticks(100),
///     vec![Time::from_ticks(30), Time::from_ticks(30)],
/// )?;
/// assert!(!bus.is_contention_free());
/// assert_eq!(bus.budget(CoreId(1)), Some(Time::from_ticks(30)));
/// # Ok::<(), pmcs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusModel {
    /// Replenishment period `P`; `Time::ZERO` encodes the
    /// contention-free crossbar (no regulation, no budgets).
    period: Time,
    /// Per-core budgets `Q_m`, indexed by core; empty for the crossbar.
    budgets: Vec<Time>,
}

impl BusModel {
    /// The paper's contention-free crossbar: per-core DMA transfers
    /// never interfere. This is the default bus of every platform.
    pub fn contention_free() -> Self {
        BusModel {
            period: Time::ZERO,
            budgets: Vec::new(),
        }
    }

    /// A shared bus regulated with per-core budgets `budgets[m] = Q_m`
    /// replenished at every multiple of `period = P`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidBus`] unless `P > 0`, at least one
    /// budget is given, every budget is at least one tick, and the
    /// budgets sum to at most `P` (so every backlogged core drains its
    /// full budget each period regardless of arbitration order).
    pub fn regulated(period: Time, budgets: Vec<Time>) -> Result<Self, ModelError> {
        if period <= Time::ZERO {
            return Err(ModelError::InvalidBus {
                reason: format!("replenishment period must be positive, got {period}"),
            });
        }
        if budgets.is_empty() {
            return Err(ModelError::InvalidBus {
                reason: "a regulated bus needs at least one per-core budget".to_string(),
            });
        }
        for (m, &q) in budgets.iter().enumerate() {
            if q < Time::TICK {
                return Err(ModelError::InvalidBus {
                    reason: format!("budget of core {} must be at least one tick, got {q}", m),
                });
            }
        }
        let total: Time = budgets.iter().fold(Time::ZERO, |acc, &q| acc + q);
        if total > period {
            return Err(ModelError::InvalidBus {
                reason: format!("budgets sum to {total}, exceeding the period {period}"),
            });
        }
        Ok(BusModel { period, budgets })
    }

    /// A regulated bus giving each of `cores` cores the same `budget`
    /// (convenience for uniform-budget sweeps).
    ///
    /// # Errors
    ///
    /// Same validation as [`BusModel::regulated`].
    pub fn uniform(period: Time, cores: usize, budget: Time) -> Result<Self, ModelError> {
        BusModel::regulated(period, vec![budget; cores])
    }

    /// Whether this bus is the contention-free crossbar.
    pub fn is_contention_free(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Whether transfers on this bus can actually contend: regulated
    /// *and* at least two cores share it. A regulated bus with a single
    /// core degenerates to the crossbar (there is nothing to arbitrate),
    /// so `M = 1` platforms keep their uncontended analysis.
    pub fn is_contended(&self) -> bool {
        self.budgets.len() >= 2
    }

    /// Replenishment period `P`, or `None` for the crossbar.
    pub fn period(&self) -> Option<Time> {
        if self.is_contention_free() {
            None
        } else {
            Some(self.period)
        }
    }

    /// Per-core budgets, indexed by core (empty for the crossbar).
    pub fn budgets(&self) -> &[Time] {
        &self.budgets
    }

    /// Budget `Q_m` of the given core, or `None` for the crossbar or an
    /// out-of-range core.
    pub fn budget(&self, core: CoreId) -> Option<Time> {
        self.budgets.get(core.0 as usize).copied()
    }

    /// Number of cores the bus regulates (`0` for the crossbar).
    pub fn num_cores(&self) -> usize {
        self.budgets.len()
    }

    /// A copy regulating only the cores selected by `keep` (same
    /// length as [`BusModel::budgets`]), renumbered densely. Used when
    /// partitioning drops empty cores from the final platform. On a
    /// contention-free bus this is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidBus`] if `keep` selects no core of
    /// a regulated bus or its length disagrees with the budget count.
    pub fn restrict(&self, keep: &[bool]) -> Result<Self, ModelError> {
        if self.is_contention_free() {
            return Ok(self.clone());
        }
        if keep.len() != self.budgets.len() {
            return Err(ModelError::InvalidBus {
                reason: format!(
                    "restriction mask has {} entries for {} budgets",
                    keep.len(),
                    self.budgets.len()
                ),
            });
        }
        let budgets: Vec<Time> = self
            .budgets
            .iter()
            .zip(keep)
            .filter(|&(_, &k)| k)
            .map(|(&q, _)| q)
            .collect();
        BusModel::regulated(self.period, budgets)
    }
}

impl Default for BusModel {
    fn default() -> Self {
        BusModel::contention_free()
    }
}

impl fmt::Display for BusModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_contention_free() {
            write!(f, "contention-free crossbar")
        } else {
            write!(f, "regulated bus (P={}, Q=[", self.period)?;
            for (i, q) in self.budgets.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{q}")?;
            }
            write!(f, "])")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: i64) -> Time {
        Time::from_ticks(ticks)
    }

    #[test]
    fn contention_free_is_the_default() {
        let bus = BusModel::default();
        assert!(bus.is_contention_free());
        assert!(!bus.is_contended());
        assert_eq!(bus.period(), None);
        assert_eq!(bus.budgets(), &[]);
        assert_eq!(bus.budget(CoreId(0)), None);
        assert_eq!(bus.num_cores(), 0);
        assert_eq!(bus.to_string(), "contention-free crossbar");
    }

    #[test]
    fn regulated_bus_exposes_period_and_budgets() {
        let bus = BusModel::regulated(t(100), vec![t(30), t(20)]).unwrap();
        assert!(!bus.is_contention_free());
        assert!(bus.is_contended());
        assert_eq!(bus.period(), Some(t(100)));
        assert_eq!(bus.budget(CoreId(0)), Some(t(30)));
        assert_eq!(bus.budget(CoreId(1)), Some(t(20)));
        assert_eq!(bus.budget(CoreId(2)), None);
        assert_eq!(bus.num_cores(), 2);
        assert_eq!(bus.to_string(), "regulated bus (P=100µs, Q=[30µs, 20µs])");
    }

    #[test]
    fn single_core_regulated_bus_is_not_contended() {
        let bus = BusModel::regulated(t(100), vec![t(40)]).unwrap();
        assert!(!bus.is_contention_free());
        assert!(!bus.is_contended());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        for (period, budgets) in [
            (t(0), vec![t(10)]),          // non-positive period
            (t(-5), vec![t(10)]),         // negative period
            (t(100), vec![]),             // no budgets
            (t(100), vec![t(10), t(0)]),  // zero budget
            (t(100), vec![t(60), t(50)]), // budgets exceed period
            (t(100), vec![t(100), t(1)]), // just over
        ] {
            let err = BusModel::regulated(period, budgets.clone()).unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidBus { .. }),
                "P={period} Q={budgets:?}: {err}"
            );
        }
    }

    #[test]
    fn budgets_may_exactly_fill_the_period() {
        let bus = BusModel::regulated(t(100), vec![t(50), t(50)]).unwrap();
        assert_eq!(bus.num_cores(), 2);
    }

    #[test]
    fn uniform_budgets_replicate() {
        let bus = BusModel::uniform(t(100), 4, t(25)).unwrap();
        assert_eq!(bus.budgets(), &[t(25); 4]);
        assert!(BusModel::uniform(t(100), 4, t(26)).is_err());
    }

    #[test]
    fn restrict_drops_unselected_cores() {
        let bus = BusModel::regulated(t(100), vec![t(10), t(20), t(30)]).unwrap();
        let sub = bus.restrict(&[true, false, true]).unwrap();
        assert_eq!(sub.budgets(), &[t(10), t(30)]);
        assert_eq!(sub.period(), Some(t(100)));
        assert!(bus.restrict(&[true, false]).is_err());
        assert!(bus.restrict(&[false, false, false]).is_err());
        let free = BusModel::contention_free();
        assert_eq!(free.restrict(&[]).unwrap(), free);
    }
}
