//! Three-phase real-time tasks (Section II of the paper).
//!
//! Each task executes in three non-preemptable phases: **copy-in** (`l_i`,
//! load data/instructions from global to local memory), **execution**
//! (`C_i`, contention-free on the core), and **copy-out** (`u_i`, write
//! results back to global memory).

use std::fmt;

use crate::curve::{ArrivalBound, ArrivalModel};
use crate::error::ModelError;
use crate::time::Time;

/// Unique task identifier within a task set.
///
/// ```
/// # use pmcs_model::TaskId;
/// assert_eq!(TaskId(3).to_string(), "τ3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Fixed task priority. **Lower numeric value = higher priority** (as in
/// most RTOS conventions). Priorities are unique within a task set.
///
/// ```
/// # use pmcs_model::Priority;
/// assert!(Priority(0).is_higher_than(Priority(5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u32);

impl Priority {
    /// `true` iff `self` denotes a strictly higher priority than `other`.
    #[inline]
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }

    /// `true` iff `self` denotes a strictly lower priority than `other`.
    #[inline]
    pub fn is_lower_than(self, other: Priority) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π{}", self.0)
    }
}

/// The three execution phases of the predictable execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Load of instructions and data into the local memory partition (`l_i`).
    CopyIn,
    /// Contention-free execution on the core (`C_i`).
    Execute,
    /// Unload of produced data back to global memory (`u_i`).
    CopyOut,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::CopyIn => "copy-in",
            Phase::Execute => "execute",
            Phase::CopyOut => "copy-out",
        };
        f.write_str(s)
    }
}

/// Whether a task is treated as latency-sensitive by the proposed protocol
/// (Section IV of the paper).
///
/// Latency-sensitive (LS) tasks can be blocked by lower-priority tasks for
/// at most **one** scheduling interval (Property 4); non-latency-sensitive
/// (NLS) tasks for at most **two** (Property 3). The flip side: an LS task
/// promoted to *urgent* performs its copy-in on the CPU, occupying the core
/// for up to `l_i + C_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sensitivity {
    /// Not latency-sensitive (the default under the greedy algorithm).
    #[default]
    Nls,
    /// Latency-sensitive.
    Ls,
}

impl Sensitivity {
    /// `true` iff latency-sensitive.
    #[inline]
    pub fn is_ls(self) -> bool {
        matches!(self, Sensitivity::Ls)
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sensitivity::Nls => "NLS",
            Sensitivity::Ls => "LS",
        })
    }
}

/// A three-phase sporadic real-time task.
///
/// Construct with [`Task::builder`]. All timing parameters are immutable
/// after construction except the [`Sensitivity`] marking, which the greedy
/// algorithm of Section VI toggles via [`Task::set_sensitivity`].
///
/// # Example
///
/// ```
/// use pmcs_model::prelude::*;
///
/// let t = Task::builder(TaskId(7))
///     .exec(Time::from_millis(3))
///     .copy_in(Time::from_millis(1))
///     .copy_out(Time::from_millis(1))
///     .sporadic(Time::from_millis(40))
///     .deadline(Time::from_millis(20))
///     .priority(Priority(2))
///     .build()?;
/// assert_eq!(t.utilization(), 3.0 / 40.0);
/// # Ok::<(), pmcs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    id: TaskId,
    name: Option<String>,
    exec: Time,
    copy_in: Time,
    copy_out: Time,
    arrival: ArrivalModel,
    deadline: Time,
    priority: Priority,
    sensitivity: Sensitivity,
}

impl Task {
    /// Starts building a task with the given identifier.
    pub fn builder(id: TaskId) -> TaskBuilder {
        TaskBuilder::new(id)
    }

    /// Task identifier.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Optional human-readable name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Worst-case execution time of the execution phase (`C_i`).
    #[inline]
    pub fn exec(&self) -> Time {
        self.exec
    }

    /// Worst-case copy-in duration (`l_i`).
    #[inline]
    pub fn copy_in(&self) -> Time {
        self.copy_in
    }

    /// Worst-case copy-out duration (`u_i`).
    #[inline]
    pub fn copy_out(&self) -> Time {
        self.copy_out
    }

    /// Arrival model bounding release events.
    #[inline]
    pub fn arrival(&self) -> &ArrivalModel {
        &self.arrival
    }

    /// Relative deadline (`D_i`).
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Unique fixed priority (`π_i`); lower value = higher priority.
    #[inline]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Current latency-sensitivity marking.
    #[inline]
    pub fn sensitivity(&self) -> Sensitivity {
        self.sensitivity
    }

    /// `true` iff currently marked latency-sensitive.
    #[inline]
    pub fn is_ls(&self) -> bool {
        self.sensitivity.is_ls()
    }

    /// Updates the latency-sensitivity marking (greedy algorithm, Sec. VI).
    pub fn set_sensitivity(&mut self, sensitivity: Sensitivity) {
        self.sensitivity = sensitivity;
    }

    /// Total serialized demand `l_i + C_i + u_i` — the WCET under classical
    /// non-preemptive scheduling where memory phases run on the CPU.
    #[inline]
    pub fn wcet_serialized(&self) -> Time {
        self.copy_in + self.exec + self.copy_out
    }

    /// CPU demand when executing as an *urgent* LS task (`l_i + C_i`,
    /// rule R5).
    #[inline]
    pub fn urgent_demand(&self) -> Time {
        self.copy_in + self.exec
    }

    /// Utilization `C_i / T_i`, using the model's minimum inter-arrival
    /// time. Returns `f64::INFINITY` if the arrival model allows bursts.
    pub fn utilization(&self) -> f64 {
        match self.arrival.min_inter_arrival() {
            Some(t) if t > Time::ZERO => self.exec.as_f64() / t.as_f64(),
            _ => f64::INFINITY,
        }
    }

    /// Maximum releases in any half-open window of length `delta`
    /// (shorthand for `self.arrival().eta(delta)`).
    #[inline]
    pub fn eta(&self, delta: Time) -> u64 {
        self.arrival.eta(delta)
    }

    /// `true` iff the relative deadline does not exceed the minimum
    /// inter-arrival time (constrained deadline).
    pub fn is_constrained_deadline(&self) -> bool {
        match self.arrival.min_inter_arrival() {
            Some(t) => self.deadline <= t,
            None => false,
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] C={} l={} u={} D={} {} {}",
            self.id,
            self.name.as_deref().unwrap_or("-"),
            self.exec,
            self.copy_in,
            self.copy_out,
            self.deadline,
            self.arrival,
            self.sensitivity,
        )
    }
}

/// Builder for [`Task`] (see [`Task::builder`]).
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    name: Option<String>,
    exec: Option<Time>,
    copy_in: Time,
    copy_out: Time,
    arrival: Option<ArrivalModel>,
    deadline: Option<Time>,
    priority: Option<Priority>,
    sensitivity: Sensitivity,
}

impl TaskBuilder {
    fn new(id: TaskId) -> Self {
        TaskBuilder {
            id,
            name: None,
            exec: None,
            copy_in: Time::ZERO,
            copy_out: Time::ZERO,
            arrival: None,
            deadline: None,
            priority: None,
            sensitivity: Sensitivity::Nls,
        }
    }

    /// Sets a human-readable name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the worst-case execution time `C_i` (required, positive).
    pub fn exec(mut self, exec: Time) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Sets the worst-case copy-in duration `l_i` (default 0).
    pub fn copy_in(mut self, copy_in: Time) -> Self {
        self.copy_in = copy_in;
        self
    }

    /// Sets the worst-case copy-out duration `u_i` (default 0).
    pub fn copy_out(mut self, copy_out: Time) -> Self {
        self.copy_out = copy_out;
        self
    }

    /// Sets a sporadic arrival model with the given minimum inter-arrival
    /// time (shorthand for [`TaskBuilder::arrival`]).
    pub fn sporadic(mut self, min_inter_arrival: Time) -> Self {
        self.arrival = Some(ArrivalModel::sporadic(min_inter_arrival));
        self
    }

    /// Sets an arbitrary arrival model (required unless
    /// [`TaskBuilder::sporadic`] is used).
    pub fn arrival(mut self, arrival: ArrivalModel) -> Self {
        self.arrival = Some(arrival);
        self
    }

    /// Sets the relative deadline `D_i` (required, positive).
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the unique priority (required).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Sets the initial latency-sensitivity marking (default NLS).
    pub fn sensitivity(mut self, sensitivity: Sensitivity) -> Self {
        self.sensitivity = sensitivity;
        self
    }

    /// Finalizes the task.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingField`] if `exec`, `arrival`/`sporadic`,
    /// `deadline` or `priority` were not provided, and
    /// [`ModelError::InvalidDuration`] if any duration is negative, the
    /// execution time is zero, or the deadline is non-positive.
    pub fn build(self) -> Result<Task, ModelError> {
        let exec = self.exec.ok_or(ModelError::MissingField {
            entity: "Task",
            field: "exec",
        })?;
        let arrival = self.arrival.ok_or(ModelError::MissingField {
            entity: "Task",
            field: "arrival",
        })?;
        let deadline = self.deadline.ok_or(ModelError::MissingField {
            entity: "Task",
            field: "deadline",
        })?;
        let priority = self.priority.ok_or(ModelError::MissingField {
            entity: "Task",
            field: "priority",
        })?;
        if exec <= Time::ZERO {
            return Err(ModelError::InvalidDuration {
                field: "exec",
                reason: format!("execution time must be positive, got {exec}"),
            });
        }
        for (field, value) in [("copy_in", self.copy_in), ("copy_out", self.copy_out)] {
            if !value.is_duration() {
                return Err(ModelError::InvalidDuration {
                    field,
                    reason: format!("must be non-negative, got {value}"),
                });
            }
        }
        if deadline <= Time::ZERO {
            return Err(ModelError::InvalidDuration {
                field: "deadline",
                reason: format!("deadline must be positive, got {deadline}"),
            });
        }
        Ok(Task {
            id: self.id,
            name: self.name,
            exec,
            copy_in: self.copy_in,
            copy_out: self.copy_out,
            arrival,
            deadline,
            priority,
            sensitivity: self.sensitivity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::builder(TaskId(1))
            .name("t1")
            .exec(Time::from_ticks(30))
            .copy_in(Time::from_ticks(10))
            .copy_out(Time::from_ticks(5))
            .sporadic(Time::from_ticks(100))
            .deadline(Time::from_ticks(80))
            .priority(Priority(4))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_task() {
        let t = task();
        assert_eq!(t.id(), TaskId(1));
        assert_eq!(t.name(), Some("t1"));
        assert_eq!(t.exec(), Time::from_ticks(30));
        assert_eq!(t.copy_in(), Time::from_ticks(10));
        assert_eq!(t.copy_out(), Time::from_ticks(5));
        assert_eq!(t.deadline(), Time::from_ticks(80));
        assert_eq!(t.priority(), Priority(4));
        assert_eq!(t.sensitivity(), Sensitivity::Nls);
        assert!(!t.is_ls());
    }

    #[test]
    fn derived_quantities() {
        let t = task();
        assert_eq!(t.wcet_serialized(), Time::from_ticks(45));
        assert_eq!(t.urgent_demand(), Time::from_ticks(40));
        assert!((t.utilization() - 0.3).abs() < 1e-12);
        assert!(t.is_constrained_deadline());
        assert_eq!(t.eta(Time::from_ticks(250)), 3);
    }

    #[test]
    fn sensitivity_toggle() {
        let mut t = task();
        t.set_sensitivity(Sensitivity::Ls);
        assert!(t.is_ls());
        assert_eq!(t.sensitivity().to_string(), "LS");
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = Task::builder(TaskId(0))
            .exec(Time::from_ticks(5))
            .sporadic(Time::from_ticks(50))
            .deadline(Time::from_ticks(50))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::MissingField {
                entity: "Task",
                field: "priority"
            }
        );
    }

    #[test]
    fn zero_exec_is_rejected() {
        let err = Task::builder(TaskId(0))
            .exec(Time::ZERO)
            .sporadic(Time::from_ticks(50))
            .deadline(Time::from_ticks(50))
            .priority(Priority(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidDuration { field: "exec", .. }
        ));
    }

    #[test]
    fn negative_copy_phase_is_rejected() {
        let err = Task::builder(TaskId(0))
            .exec(Time::from_ticks(5))
            .copy_in(Time::from_ticks(-1))
            .sporadic(Time::from_ticks(50))
            .deadline(Time::from_ticks(50))
            .priority(Priority(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidDuration {
                field: "copy_in",
                ..
            }
        ));
    }

    #[test]
    fn priority_ordering_helpers() {
        assert!(Priority(0).is_higher_than(Priority(1)));
        assert!(Priority(2).is_lower_than(Priority(1)));
        assert!(!Priority(1).is_higher_than(Priority(1)));
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::CopyIn.to_string(), "copy-in");
        assert_eq!(Phase::Execute.to_string(), "execute");
        assert_eq!(Phase::CopyOut.to_string(), "copy-out");
    }

    #[test]
    fn task_display_mentions_id_and_marking() {
        let t = task();
        let s = t.to_string();
        assert!(s.contains("τ1"));
        assert!(s.contains("NLS"));
    }

    #[test]
    fn bursty_arrival_has_infinite_utilization() {
        let t = Task::builder(TaskId(0))
            .exec(Time::from_ticks(5))
            .arrival(ArrivalModel::periodic_with_jitter(
                Time::from_ticks(10),
                Time::from_ticks(20),
            ))
            .deadline(Time::from_ticks(50))
            .priority(Priority(0))
            .build()
            .unwrap();
        assert!(t.utilization().is_infinite());
        assert!(!t.is_constrained_deadline());
    }
}
