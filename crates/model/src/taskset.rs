//! Per-core task sets with unique fixed priorities.

use std::fmt;

use crate::error::ModelError;
use crate::task::{Sensitivity, Task, TaskId};
use crate::time::Time;

/// A set of tasks statically partitioned to one core, ordered by decreasing
/// priority (index 0 = highest priority).
///
/// Invariants enforced at construction:
/// * at least one task;
/// * unique task identifiers;
/// * unique priorities.
///
/// # Example
///
/// ```
/// use pmcs_model::prelude::*;
///
/// let mk = |id: u32, c: i64, t: i64, p: u32| {
///     Task::builder(TaskId(id))
///         .exec(Time::from_ticks(c))
///         .sporadic(Time::from_ticks(t))
///         .deadline(Time::from_ticks(t))
///         .priority(Priority(p))
///         .build()
///         .unwrap()
/// };
/// let set = TaskSet::new(vec![mk(0, 10, 100, 2), mk(1, 5, 50, 1)])?;
/// // Sorted by priority: τ1 (π1) first.
/// assert_eq!(set.tasks()[0].id(), TaskId(1));
/// assert_eq!(set.higher_priority(TaskId(0)).count(), 1);
/// # Ok::<(), pmcs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Builds a task set, sorting by decreasing priority.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyTaskSet`], [`ModelError::DuplicateTaskId`]
    /// or [`ModelError::DuplicatePriority`] when the respective invariant is
    /// violated.
    pub fn new(mut tasks: Vec<Task>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::EmptyTaskSet);
        }
        tasks.sort_by_key(|t| t.priority());
        for pair in tasks.windows(2) {
            if pair[0].priority() == pair[1].priority() {
                return Err(ModelError::DuplicatePriority {
                    first: pair[0].id(),
                    second: pair[1].id(),
                });
            }
        }
        let mut ids: Vec<TaskId> = tasks.iter().map(Task::id).collect();
        ids.sort();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(ModelError::DuplicateTaskId(pair[0]));
            }
        }
        Ok(TaskSet { tasks })
    }

    /// Tasks in decreasing priority order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false` (a valid set has ≥ 1 task); provided for API
    /// completeness alongside [`TaskSet::len`].
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Looks up a task by id.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Looks up a task by id, returning an error for unknown ids.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] if the id is not in the set.
    pub fn require(&self, id: TaskId) -> Result<&Task, ModelError> {
        self.get(id).ok_or(ModelError::UnknownTask(id))
    }

    /// Iterates over tasks in decreasing priority order.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Tasks with strictly higher priority than `id` (`hp(τ_i)`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the set.
    pub fn higher_priority(&self, id: TaskId) -> impl Iterator<Item = &Task> {
        let pivot = self.require(id).expect("task must be in set").priority();
        self.tasks
            .iter()
            .filter(move |t| t.priority().is_higher_than(pivot))
    }

    /// Tasks with strictly lower priority than `id` (`lp(τ_i)`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the set.
    pub fn lower_priority(&self, id: TaskId) -> impl Iterator<Item = &Task> {
        let pivot = self.require(id).expect("task must be in set").priority();
        self.tasks
            .iter()
            .filter(move |t| t.priority().is_lower_than(pivot))
    }

    /// All latency-sensitive tasks (`Γ_LS`).
    pub fn latency_sensitive(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(|t| t.is_ls())
    }

    /// All non-latency-sensitive tasks (`Γ_NLS`).
    pub fn non_latency_sensitive(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(|t| !t.is_ls())
    }

    /// Total utilization `Σ C_i / T_i`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Largest copy-in duration over all tasks (`max_j l_j`), used by the
    /// boundary constraints 12 and 15 of the analysis.
    pub fn max_copy_in(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::copy_in)
            .fold(Time::ZERO, Time::max)
    }

    /// Largest copy-out duration over all tasks (`max_j u_j`).
    pub fn max_copy_out(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::copy_out)
            .fold(Time::ZERO, Time::max)
    }

    /// Returns a copy of the set with the given task's sensitivity changed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] if the id is not in the set.
    pub fn with_sensitivity(
        &self,
        id: TaskId,
        sensitivity: Sensitivity,
    ) -> Result<TaskSet, ModelError> {
        let mut tasks = self.tasks.clone();
        let task = tasks
            .iter_mut()
            .find(|t| t.id() == id)
            .ok_or(ModelError::UnknownTask(id))?;
        task.set_sensitivity(sensitivity);
        Ok(TaskSet { tasks })
    }

    /// Returns a copy of the set with **all** tasks marked NLS (the starting
    /// point of the greedy algorithm of Section VI).
    pub fn all_nls(&self) -> TaskSet {
        let mut tasks = self.tasks.clone();
        for t in &mut tasks {
            t.set_sensitivity(Sensitivity::Nls);
        }
        TaskSet { tasks }
    }

    /// `true` iff every task has a constrained deadline (`D_i ≤ T_i`).
    pub fn has_constrained_deadlines(&self) -> bool {
        self.tasks.iter().all(Task::is_constrained_deadline)
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "task set (n={}, U={:.3}):",
            self.len(),
            self.utilization()
        )?;
        for t in &self.tasks {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Priority;

    fn mk(id: u32, c: i64, t: i64, p: u32) -> Task {
        Task::builder(TaskId(id))
            .exec(Time::from_ticks(c))
            .copy_in(Time::from_ticks(c / 10))
            .copy_out(Time::from_ticks(c / 10))
            .sporadic(Time::from_ticks(t))
            .deadline(Time::from_ticks(t))
            .priority(Priority(p))
            .build()
            .unwrap()
    }

    fn set() -> TaskSet {
        TaskSet::new(vec![mk(0, 20, 100, 2), mk(1, 10, 50, 0), mk(2, 30, 200, 1)]).unwrap()
    }

    #[test]
    fn tasks_are_sorted_by_priority() {
        let s = set();
        let ids: Vec<_> = s.iter().map(Task::id).collect();
        assert_eq!(ids, vec![TaskId(1), TaskId(2), TaskId(0)]);
    }

    #[test]
    fn hp_and_lp_partitions() {
        let s = set();
        let hp: Vec<_> = s.higher_priority(TaskId(2)).map(Task::id).collect();
        let lp: Vec<_> = s.lower_priority(TaskId(2)).map(Task::id).collect();
        assert_eq!(hp, vec![TaskId(1)]);
        assert_eq!(lp, vec![TaskId(0)]);
        assert_eq!(s.higher_priority(TaskId(1)).count(), 0);
        assert_eq!(s.lower_priority(TaskId(0)).count(), 0);
    }

    #[test]
    fn empty_set_is_rejected() {
        assert_eq!(TaskSet::new(vec![]).unwrap_err(), ModelError::EmptyTaskSet);
    }

    #[test]
    fn duplicate_priority_is_rejected() {
        let err = TaskSet::new(vec![mk(0, 10, 100, 1), mk(1, 10, 100, 1)]).unwrap_err();
        assert!(matches!(err, ModelError::DuplicatePriority { .. }));
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let err = TaskSet::new(vec![mk(3, 10, 100, 0), mk(3, 10, 100, 1)]).unwrap_err();
        assert_eq!(err, ModelError::DuplicateTaskId(TaskId(3)));
    }

    #[test]
    fn utilization_sums_task_utilizations() {
        let s = set();
        let expected = 20.0 / 100.0 + 10.0 / 50.0 + 30.0 / 200.0;
        assert!((s.utilization() - expected).abs() < 1e-12);
    }

    #[test]
    fn max_copy_phases() {
        let s = set();
        assert_eq!(s.max_copy_in(), Time::from_ticks(3));
        assert_eq!(s.max_copy_out(), Time::from_ticks(3));
    }

    #[test]
    fn sensitivity_update_is_persistent_and_pure() {
        let s = set();
        let s2 = s.with_sensitivity(TaskId(2), Sensitivity::Ls).unwrap();
        assert!(!s.get(TaskId(2)).unwrap().is_ls());
        assert!(s2.get(TaskId(2)).unwrap().is_ls());
        assert_eq!(s2.latency_sensitive().count(), 1);
        assert_eq!(s2.non_latency_sensitive().count(), 2);
        let s3 = s2.all_nls();
        assert_eq!(s3.latency_sensitive().count(), 0);
    }

    #[test]
    fn unknown_task_errors() {
        let s = set();
        assert_eq!(
            s.with_sensitivity(TaskId(99), Sensitivity::Ls).unwrap_err(),
            ModelError::UnknownTask(TaskId(99))
        );
        assert!(s.require(TaskId(99)).is_err());
        assert!(s.get(TaskId(99)).is_none());
    }

    #[test]
    fn constrained_deadline_check() {
        let s = set();
        assert!(s.has_constrained_deadlines());
    }

    #[test]
    fn into_iterator_and_display() {
        let s = set();
        let count = (&s).into_iter().count();
        assert_eq!(count, 3);
        assert!(s.to_string().contains("n=3"));
    }
}
