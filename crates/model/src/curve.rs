//! Arrival curves bounding task release events (Section II of the paper).
//!
//! An arrival curve `η(δ)` upper-bounds the number of release events of a
//! task in **any** half-open time window of length `δ`. A sporadic task with
//! minimum inter-arrival time `T` has `η(δ) = ⌈δ/T⌉`.
//!
//! The analyses additionally need the *closed-window* count
//! `η⁺(δ) = η(δ + 1 tick)` (releases in a window including both endpoints),
//! used e.g. by the classical non-preemptive start-time recurrence.

use std::fmt;

use crate::time::Time;

/// Upper bound on release events in any window of a given length.
///
/// Implementations must be **monotone**: `δ₁ ≤ δ₂ ⇒ η(δ₁) ≤ η(δ₂)`, and must
/// satisfy `η(0) = 0` (a zero-length half-open window contains no events).
pub trait ArrivalBound {
    /// Maximum number of releases in any half-open window of length `delta`.
    ///
    /// # Panics
    ///
    /// May panic if `delta` is negative.
    fn eta(&self, delta: Time) -> u64;

    /// Maximum number of releases in any *closed* window of length `delta`
    /// (both endpoints included). Equals `eta(delta + 1 tick)`.
    fn eta_closed(&self, delta: Time) -> u64 {
        self.eta(delta + Time::TICK)
    }

    /// Smallest window length that can contain `n` releases
    /// (pseudo-inverse of the curve); `Time::ZERO` for `n ≤ 1`.
    ///
    /// Used by simulators generating adversarial release patterns. The
    /// default implementation performs a galloping + binary search on `eta`
    /// and is correct for any monotone curve.
    fn min_distance(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        // Find delta such that eta(delta + 1) >= n (closed window of length
        // delta containing n releases) with the smallest such delta.
        let mut hi = Time::TICK;
        while self.eta_closed(hi) < n {
            let next = hi * 2i64;
            assert!(next > hi, "min_distance: overflow while searching");
            hi = next;
        }
        let mut lo = Time::ZERO;
        while lo < hi {
            let mid = Time::from_ticks((lo.as_ticks() + hi.as_ticks()) / 2);
            if self.eta_closed(mid) >= n {
                hi = mid;
            } else {
                lo = mid + Time::TICK;
            }
        }
        lo
    }
}

/// The arrival models supported natively by the workspace.
///
/// This is a closed enum (rather than a trait object) so that tasks remain
/// `Clone + PartialEq + Hash`; it implements [`ArrivalBound`], and exotic
/// shapes can be expressed with [`ArrivalModel::Staircase`].
///
/// # Example
///
/// ```
/// use pmcs_model::{ArrivalBound, ArrivalModel, Time};
///
/// let sporadic = ArrivalModel::sporadic(Time::from_millis(10));
/// assert_eq!(sporadic.eta(Time::ZERO), 0);
/// assert_eq!(sporadic.eta(Time::from_millis(10)), 1);
/// assert_eq!(sporadic.eta(Time::from_millis(25)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ArrivalModel {
    /// Sporadic releases separated by at least the minimum inter-arrival
    /// time: `η(δ) = ⌈δ/T⌉` (the model used by the paper's evaluation).
    Sporadic {
        /// Minimum inter-arrival time `T` (must be positive).
        min_inter_arrival: Time,
    },
    /// Periodic releases with release jitter: `η(δ) = ⌈(δ + J)/T⌉` for
    /// `δ > 0`, and `0` for `δ = 0`.
    PeriodicJitter {
        /// Period `T` (must be positive).
        period: Time,
        /// Release jitter `J ≥ 0`.
        jitter: Time,
    },
    /// An explicit staircase curve.
    Staircase(StaircaseCurve),
}

impl ArrivalModel {
    /// Convenience constructor for a sporadic model.
    pub fn sporadic(min_inter_arrival: Time) -> Self {
        assert!(
            min_inter_arrival > Time::ZERO,
            "sporadic minimum inter-arrival time must be positive"
        );
        ArrivalModel::Sporadic { min_inter_arrival }
    }

    /// Convenience constructor for a periodic-with-jitter model.
    pub fn periodic_with_jitter(period: Time, jitter: Time) -> Self {
        assert!(period > Time::ZERO, "period must be positive");
        assert!(jitter.is_duration(), "jitter must be non-negative");
        ArrivalModel::PeriodicJitter { period, jitter }
    }

    /// The minimum inter-arrival time implied by this model, i.e. the
    /// largest `T` with `η(T) ≤ 1`; `None` if bursts of ≥ 2 simultaneous
    /// releases are possible.
    pub fn min_inter_arrival(&self) -> Option<Time> {
        match self {
            ArrivalModel::Sporadic { min_inter_arrival } => Some(*min_inter_arrival),
            ArrivalModel::PeriodicJitter { period, jitter } => {
                if *jitter >= *period {
                    None
                } else {
                    Some(*period - *jitter)
                }
            }
            ArrivalModel::Staircase(c) => {
                if c.eta(Time::TICK) > 1 {
                    None
                } else {
                    Some(c.min_distance(2))
                }
            }
        }
    }
}

impl ArrivalBound for ArrivalModel {
    fn eta(&self, delta: Time) -> u64 {
        assert!(
            delta.is_duration(),
            "eta: window length must be non-negative"
        );
        if delta.is_zero() {
            return 0;
        }
        match self {
            ArrivalModel::Sporadic { min_inter_arrival } => delta.div_ceil(*min_inter_arrival),
            ArrivalModel::PeriodicJitter { period, jitter } => (delta + *jitter).div_ceil(*period),
            ArrivalModel::Staircase(c) => c.eta(delta),
        }
    }
}

/// An explicit, finite staircase arrival curve.
///
/// Defined by steps `(δ_k, n_k)`: for window length `δ`, `η(δ)` is the
/// largest `n_k` with `δ_k ≤ δ`; beyond the last step the curve continues
/// with a long-run rate (`extra` events every `tail_period`).
///
/// # Example
///
/// ```
/// use pmcs_model::{ArrivalBound, StaircaseCurve, Time};
///
/// // A bursty source: 3 releases back-to-back, then 1 per 10 ms.
/// let burst = StaircaseCurve::new(
///     vec![(Time::TICK, 3)],
///     Time::from_millis(10),
/// );
/// assert_eq!(burst.eta(Time::TICK), 3);
/// assert_eq!(burst.eta_closed(Time::from_millis(10)), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StaircaseCurve {
    /// Step points `(window length, cumulative count)`, strictly increasing
    /// in both components.
    steps: Vec<(Time, u64)>,
    /// Long-run inter-arrival time applied after the last explicit step.
    tail_period: Time,
}

impl StaircaseCurve {
    /// Creates a staircase curve from explicit steps and a tail rate.
    ///
    /// # Panics
    ///
    /// Panics if steps are not strictly increasing in both window length and
    /// count, if any window length is non-positive, or if `tail_period` is
    /// non-positive.
    pub fn new(steps: Vec<(Time, u64)>, tail_period: Time) -> Self {
        assert!(tail_period > Time::ZERO, "tail period must be positive");
        for w in steps.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 < w[1].1,
                "staircase steps must be strictly increasing"
            );
        }
        if let Some(first) = steps.first() {
            assert!(first.0 > Time::ZERO, "step window lengths must be positive");
        }
        StaircaseCurve { steps, tail_period }
    }

    /// The explicit steps of this curve.
    pub fn steps(&self) -> &[(Time, u64)] {
        &self.steps
    }

    /// The long-run inter-arrival time applied after the last explicit
    /// step.
    pub fn tail_period(&self) -> Time {
        self.tail_period
    }
}

impl ArrivalBound for StaircaseCurve {
    fn eta(&self, delta: Time) -> u64 {
        assert!(
            delta.is_duration(),
            "eta: window length must be non-negative"
        );
        if delta.is_zero() {
            return 0;
        }
        match self.steps.last() {
            None => delta.div_ceil(self.tail_period),
            Some(&(last_delta, last_count)) => {
                if delta <= last_delta {
                    // Largest step with δ_k ≤ δ; before the first step the
                    // curve is at least 1 (a single event fits any window).
                    let mut count = 1;
                    for &(d, n) in &self.steps {
                        if d <= delta {
                            count = n;
                        } else {
                            break;
                        }
                    }
                    count
                } else {
                    // Half-open window: the (last_count + k)-th extra event
                    // arrives k full tail periods after the last step.
                    last_count + (delta - last_delta).div_floor(self.tail_period)
                }
            }
        }
    }
}

impl From<StaircaseCurve> for ArrivalModel {
    fn from(curve: StaircaseCurve) -> Self {
        ArrivalModel::Staircase(curve)
    }
}

impl fmt::Display for ArrivalModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalModel::Sporadic { min_inter_arrival } => {
                write!(f, "sporadic(T={min_inter_arrival})")
            }
            ArrivalModel::PeriodicJitter { period, jitter } => {
                write!(f, "periodic(T={period}, J={jitter})")
            }
            ArrivalModel::Staircase(c) => write!(f, "staircase({} steps)", c.steps.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sporadic_eta_matches_ceiling_formula() {
        let m = ArrivalModel::sporadic(Time::from_ticks(10));
        assert_eq!(m.eta(Time::ZERO), 0);
        assert_eq!(m.eta(Time::from_ticks(1)), 1);
        assert_eq!(m.eta(Time::from_ticks(10)), 1);
        assert_eq!(m.eta(Time::from_ticks(11)), 2);
        assert_eq!(m.eta(Time::from_ticks(100)), 10);
    }

    #[test]
    fn closed_window_counts_one_more_at_multiples() {
        let m = ArrivalModel::sporadic(Time::from_ticks(10));
        assert_eq!(m.eta_closed(Time::ZERO), 1);
        assert_eq!(m.eta_closed(Time::from_ticks(10)), 2);
        assert_eq!(m.eta_closed(Time::from_ticks(9)), 1);
    }

    #[test]
    fn jitter_shifts_the_curve() {
        let m = ArrivalModel::periodic_with_jitter(Time::from_ticks(10), Time::from_ticks(4));
        assert_eq!(m.eta(Time::ZERO), 0);
        assert_eq!(m.eta(Time::from_ticks(1)), 1);
        assert_eq!(m.eta(Time::from_ticks(7)), 2); // (7+4)/10 -> ceil = 2
        assert_eq!(m.min_inter_arrival(), Some(Time::from_ticks(6)));
    }

    #[test]
    fn jitter_at_least_period_allows_bursts() {
        let m = ArrivalModel::periodic_with_jitter(Time::from_ticks(10), Time::from_ticks(10));
        assert_eq!(m.min_inter_arrival(), None);
    }

    #[test]
    fn staircase_burst_then_rate() {
        let c = StaircaseCurve::new(vec![(Time::TICK, 3)], Time::from_ticks(10));
        assert_eq!(c.eta(Time::ZERO), 0);
        assert_eq!(c.eta(Time::TICK), 3);
        assert_eq!(c.eta(Time::from_ticks(5)), 3);
        assert_eq!(c.eta(Time::from_ticks(11)), 4);
        assert_eq!(c.eta(Time::from_ticks(21)), 5);
    }

    #[test]
    fn staircase_without_steps_is_pure_rate() {
        let c = StaircaseCurve::new(vec![], Time::from_ticks(5));
        assert_eq!(c.eta(Time::from_ticks(12)), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn staircase_rejects_non_monotone_steps() {
        let _ = StaircaseCurve::new(
            vec![(Time::from_ticks(5), 2), (Time::from_ticks(5), 3)],
            Time::from_ticks(10),
        );
    }

    #[test]
    fn min_distance_inverts_eta() {
        let m = ArrivalModel::sporadic(Time::from_ticks(10));
        assert_eq!(m.min_distance(1), Time::ZERO);
        assert_eq!(m.min_distance(2), Time::from_ticks(10));
        assert_eq!(m.min_distance(4), Time::from_ticks(30));
    }

    #[test]
    fn min_distance_for_bursty_curve() {
        let c = StaircaseCurve::new(vec![(Time::TICK, 3)], Time::from_ticks(10));
        let m = ArrivalModel::from(c);
        // Two releases can be simultaneous (burst of 3 in a 1-tick window
        // means distance 0 between consecutive releases).
        assert_eq!(m.min_distance(2), Time::ZERO);
        assert_eq!(m.min_distance(3), Time::ZERO);
        // Fourth release needs the tail rate.
        assert!(m.min_distance(4) > Time::ZERO);
    }

    #[test]
    fn sporadic_constructor_display() {
        let m = ArrivalModel::sporadic(Time::from_millis(10));
        assert_eq!(m.to_string(), "sporadic(T=10ms)");
        assert_eq!(m.min_inter_arrival(), Some(Time::from_millis(10)));
    }
}
