//! Job instances of tasks, shared between the simulator and the analyses.

use std::fmt;

use crate::task::TaskId;
use crate::time::Time;

/// Identifies one job: the releasing task plus a per-task sequence number.
///
/// ```
/// # use pmcs_model::{JobId, TaskId};
/// let j = JobId::new(TaskId(2), 5);
/// assert_eq!(j.to_string(), "τ2#5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId {
    task: TaskId,
    index: u64,
}

impl JobId {
    /// Creates a job id for the `index`-th job (0-based) of `task`.
    pub fn new(task: TaskId, index: u64) -> Self {
        JobId { task, index }
    }

    /// The releasing task.
    pub fn task(self) -> TaskId {
        self.task
    }

    /// Zero-based job sequence number.
    pub fn index(self) -> u64 {
        self.index
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.task, self.index)
    }
}

/// A released job instance.
///
/// A job is *ready* from its release until its copy-in starts, *pending*
/// until its copy-out completes (Section II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    id: JobId,
    release: Time,
    absolute_deadline: Time,
}

impl Job {
    /// Creates a job released at `release` with the given absolute deadline.
    ///
    /// # Panics
    ///
    /// Panics if the deadline precedes the release.
    pub fn new(id: JobId, release: Time, absolute_deadline: Time) -> Self {
        assert!(
            absolute_deadline >= release,
            "job deadline must not precede its release"
        );
        Job {
            id,
            release,
            absolute_deadline,
        }
    }

    /// Job identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Release instant.
    pub fn release(&self) -> Time {
        self.release
    }

    /// Absolute deadline.
    pub fn absolute_deadline(&self) -> Time {
        self.absolute_deadline
    }

    /// Response time if the job completes at `completion`.
    ///
    /// # Panics
    ///
    /// Panics if `completion` precedes the release.
    pub fn response_time(&self, completion: Time) -> Time {
        assert!(
            completion >= self.release,
            "completion must not precede release"
        );
        completion - self.release
    }

    /// `true` iff completing at `completion` meets the deadline.
    pub fn meets_deadline(&self, completion: Time) -> bool {
        completion <= self.absolute_deadline
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} released@{} deadline@{}",
            self.id, self.release, self.absolute_deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_accessors() {
        let j = Job::new(
            JobId::new(TaskId(1), 3),
            Time::from_ticks(100),
            Time::from_ticks(180),
        );
        assert_eq!(j.id().task(), TaskId(1));
        assert_eq!(j.id().index(), 3);
        assert_eq!(j.release(), Time::from_ticks(100));
        assert_eq!(j.absolute_deadline(), Time::from_ticks(180));
    }

    #[test]
    fn response_time_and_deadline_check() {
        let j = Job::new(
            JobId::new(TaskId(0), 0),
            Time::from_ticks(10),
            Time::from_ticks(60),
        );
        assert_eq!(j.response_time(Time::from_ticks(45)), Time::from_ticks(35));
        assert!(j.meets_deadline(Time::from_ticks(60)));
        assert!(!j.meets_deadline(Time::from_ticks(61)));
    }

    #[test]
    #[should_panic(expected = "deadline must not precede")]
    fn deadline_before_release_panics() {
        let _ = Job::new(JobId::new(TaskId(0), 0), Time::from_ticks(10), Time::ZERO);
    }

    #[test]
    fn job_id_ordering_is_by_task_then_index() {
        let a = JobId::new(TaskId(0), 5);
        let b = JobId::new(TaskId(1), 0);
        let c = JobId::new(TaskId(1), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_formats() {
        let j = Job::new(JobId::new(TaskId(4), 2), Time::ZERO, Time::from_ticks(5));
        assert!(j.to_string().contains("τ4#2"));
    }
}
