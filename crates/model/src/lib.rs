//! # pmcs-model
//!
//! Task, time, and arrival-curve model shared by every crate in the `pmcs`
//! workspace — a reproduction of *"Predictable Memory-CPU Co-Scheduling with
//! Support for Latency-Sensitive Tasks"* (Casini, Pazzaglia, Biondi,
//! Di Natale, Buttazzo — DAC 2020).
//!
//! The model follows Section II of the paper:
//!
//! * a platform of identical cores, each with a dual-ported local memory
//!   (two partitions) and a private DMA engine ([`platform`]);
//! * independent sporadic real-time tasks executing in **three phases**
//!   (copy-in `l`, execution `C`, copy-out `u`) under non-preemptive
//!   fixed-priority partitioned scheduling ([`task`]);
//! * release events bounded by **arrival curves** `η(δ)` ([`curve`]);
//! * per-core task sets with unique priorities ([`taskset`]).
//!
//! Time is modeled with an integer tick type ([`time::Time`], 1 tick = 1 µs)
//! so that simulation and analysis are exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use pmcs_model::prelude::*;
//!
//! let task = Task::builder(TaskId(0))
//!     .name("sensor-fusion")
//!     .exec(Time::from_millis(2))
//!     .copy_in(Time::from_micros(400))
//!     .copy_out(Time::from_micros(400))
//!     .sporadic(Time::from_millis(20))
//!     .deadline(Time::from_millis(10))
//!     .priority(Priority(1))
//!     .build()?;
//! assert_eq!(task.wcet_serialized(), Time::from_micros(2_800));
//! # Ok::<(), pmcs_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bus;
pub mod curve;
pub mod error;
pub mod job;
pub mod platform;
pub mod task;
pub mod taskset;
pub mod time;

pub use bus::BusModel;
pub use curve::{ArrivalBound, ArrivalModel, StaircaseCurve};
pub use error::ModelError;
pub use job::{Job, JobId};
pub use platform::{CoreId, Platform, PlatformBuilder};
pub use task::{Phase, Priority, Sensitivity, Task, TaskBuilder, TaskId};
pub use taskset::TaskSet;
pub use time::Time;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::bus::BusModel;
    pub use crate::curve::{ArrivalBound, ArrivalModel};
    pub use crate::error::ModelError;
    pub use crate::job::{Job, JobId};
    pub use crate::platform::{CoreId, Platform};
    pub use crate::task::{Phase, Priority, Sensitivity, Task, TaskId};
    pub use crate::taskset::TaskSet;
    pub use crate::time::Time;
}
