//! Platform model (Section II of the paper).
//!
//! The target platform has `P` identical cores; each core owns a private
//! dual-ported local memory split into **two partitions** and a private DMA
//! engine. A crossbar provides contention-free point-to-point paths, so all
//! memory contention is folded into the `l_i`/`u_i` bounds of the tasks
//! (computed with the techniques of references [7, 8] of the paper).
//!
//! Since scheduling and analysis are strictly per-core (partitioned), the
//! platform type mainly documents the assumptions and carries per-core task
//! assignments for multi-core experiments.

use std::fmt;

use crate::error::ModelError;
use crate::taskset::TaskSet;

/// Identifier of a core (`p_m` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A multicore platform with statically partitioned task sets.
///
/// # Example
///
/// ```
/// use pmcs_model::prelude::*;
///
/// let t = Task::builder(TaskId(0))
///     .exec(Time::from_ticks(10))
///     .sporadic(Time::from_ticks(100))
///     .deadline(Time::from_ticks(100))
///     .priority(Priority(0))
///     .build()?;
/// let platform = Platform::builder()
///     .core(TaskSet::new(vec![t])?)
///     .build()?;
/// assert_eq!(platform.num_cores(), 1);
/// # Ok::<(), pmcs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    cores: Vec<TaskSet>,
}

impl Platform {
    /// Starts building a platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder { cores: Vec::new() }
    }

    /// Number of cores `P`.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Task set partitioned to the given core.
    pub fn core(&self, id: CoreId) -> Option<&TaskSet> {
        self.cores.get(id.0 as usize)
    }

    /// Iterates over `(core, task set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CoreId, &TaskSet)> {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, ts)| (CoreId(i as u32), ts))
    }

    /// Total utilization across all cores.
    pub fn utilization(&self) -> f64 {
        self.cores.iter().map(TaskSet::utilization).sum()
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "platform with {} core(s):", self.num_cores())?;
        for (id, ts) in self.iter() {
            writeln!(f, "{id}: {ts}")?;
        }
        Ok(())
    }
}

/// Builder for [`Platform`].
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    cores: Vec<TaskSet>,
}

impl PlatformBuilder {
    /// Adds a core hosting the given task set.
    pub fn core(mut self, tasks: TaskSet) -> Self {
        self.cores.push(tasks);
        self
    }

    /// Finalizes the platform.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPlatform`] if no core was added.
    pub fn build(self) -> Result<Platform, ModelError> {
        if self.cores.is_empty() {
            return Err(ModelError::EmptyPlatform);
        }
        Ok(Platform { cores: self.cores })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Priority, Task, TaskId};
    use crate::time::Time;

    fn ts(base: u32) -> TaskSet {
        let t = Task::builder(TaskId(base))
            .exec(Time::from_ticks(10))
            .sporadic(Time::from_ticks(100))
            .deadline(Time::from_ticks(100))
            .priority(Priority(0))
            .build()
            .unwrap();
        TaskSet::new(vec![t]).unwrap()
    }

    #[test]
    fn empty_platform_is_rejected() {
        assert_eq!(
            Platform::builder().build().unwrap_err(),
            ModelError::EmptyPlatform
        );
    }

    #[test]
    fn cores_are_indexed_in_insertion_order() {
        let p = Platform::builder()
            .core(ts(0))
            .core(ts(10))
            .build()
            .unwrap();
        assert_eq!(p.num_cores(), 2);
        assert_eq!(p.core(CoreId(1)).unwrap().tasks()[0].id(), TaskId(10));
        assert!(p.core(CoreId(2)).is_none());
    }

    #[test]
    fn utilization_sums_over_cores() {
        let p = Platform::builder().core(ts(0)).core(ts(1)).build().unwrap();
        assert!((p.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_core_ids() {
        let p = Platform::builder().core(ts(0)).build().unwrap();
        let ids: Vec<_> = p.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![CoreId(0)]);
        assert_eq!(CoreId(0).to_string(), "p0");
    }
}
