//! Platform model (Section II of the paper, plus an explicit bus).
//!
//! The target platform has `P` identical cores; each core owns a private
//! dual-ported local memory split into **two partitions** and a private DMA
//! engine. The memory interconnect comes in two flavors, selected by the
//! platform's [`BusModel`]:
//!
//! * **Contention-free crossbar** (the paper's assumption, and the
//!   default): point-to-point paths mean per-core DMA transfers never
//!   interfere, so all memory contention is folded into the `l_i`/`u_i`
//!   bounds of the tasks (computed with the techniques of references
//!   [7, 8] of the paper). Scheduling and analysis are then strictly
//!   per-core.
//! * **Regulated shared bus**: the per-core DMA engines contend on one
//!   bus/DRAM controller under MemGuard-style per-core bandwidth budgets
//!   replenished every period. Per-core analysis still applies after the
//!   copy-phase bounds are inflated by the contention model in
//!   `pmcs_core::contention`.
//!
//! The platform type carries per-core task assignments plus the bus for
//! multi-core experiments.

use std::fmt;

use crate::bus::BusModel;
use crate::error::ModelError;
use crate::taskset::TaskSet;

/// Identifier of a core (`p_m` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A multicore platform with statically partitioned task sets.
///
/// # Example
///
/// ```
/// use pmcs_model::prelude::*;
///
/// let t = Task::builder(TaskId(0))
///     .exec(Time::from_ticks(10))
///     .sporadic(Time::from_ticks(100))
///     .deadline(Time::from_ticks(100))
///     .priority(Priority(0))
///     .build()?;
/// let platform = Platform::builder()
///     .core(TaskSet::new(vec![t])?)
///     .build()?;
/// assert_eq!(platform.num_cores(), 1);
/// # Ok::<(), pmcs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    cores: Vec<TaskSet>,
    bus: BusModel,
}

impl Platform {
    /// Starts building a platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder {
            cores: Vec::new(),
            bus: BusModel::contention_free(),
        }
    }

    /// Number of cores `P`.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The memory-bus model (contention-free crossbar by default).
    pub fn bus(&self) -> &BusModel {
        &self.bus
    }

    /// Task set partitioned to the given core.
    pub fn core(&self, id: CoreId) -> Option<&TaskSet> {
        self.cores.get(id.0 as usize)
    }

    /// Iterates over `(core, task set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CoreId, &TaskSet)> {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, ts)| (CoreId(i as u32), ts))
    }

    /// Total utilization across all cores.
    pub fn utilization(&self) -> f64 {
        self.cores.iter().map(TaskSet::utilization).sum()
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "platform with {} core(s), {}:",
            self.num_cores(),
            self.bus
        )?;
        for (id, ts) in self.iter() {
            writeln!(f, "{id}: {ts}")?;
        }
        Ok(())
    }
}

/// Builder for [`Platform`].
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    cores: Vec<TaskSet>,
    bus: BusModel,
}

impl PlatformBuilder {
    /// Adds a core hosting the given task set.
    pub fn core(mut self, tasks: TaskSet) -> Self {
        self.cores.push(tasks);
        self
    }

    /// Sets the memory-bus model (default: contention-free crossbar).
    pub fn bus(mut self, bus: BusModel) -> Self {
        self.bus = bus;
        self
    }

    /// Finalizes the platform.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPlatform`] if no core was added, and
    /// [`ModelError::InvalidBus`] if a regulated bus was configured with
    /// a budget count different from the number of cores.
    pub fn build(self) -> Result<Platform, ModelError> {
        if self.cores.is_empty() {
            return Err(ModelError::EmptyPlatform);
        }
        if !self.bus.is_contention_free() && self.bus.num_cores() != self.cores.len() {
            return Err(ModelError::InvalidBus {
                reason: format!(
                    "bus regulates {} core(s) but the platform has {}",
                    self.bus.num_cores(),
                    self.cores.len()
                ),
            });
        }
        Ok(Platform {
            cores: self.cores,
            bus: self.bus,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Priority, Task, TaskId};
    use crate::time::Time;

    fn ts(base: u32) -> TaskSet {
        let t = Task::builder(TaskId(base))
            .exec(Time::from_ticks(10))
            .sporadic(Time::from_ticks(100))
            .deadline(Time::from_ticks(100))
            .priority(Priority(0))
            .build()
            .unwrap();
        TaskSet::new(vec![t]).unwrap()
    }

    #[test]
    fn empty_platform_is_rejected() {
        assert_eq!(
            Platform::builder().build().unwrap_err(),
            ModelError::EmptyPlatform
        );
    }

    #[test]
    fn cores_are_indexed_in_insertion_order() {
        let p = Platform::builder()
            .core(ts(0))
            .core(ts(10))
            .build()
            .unwrap();
        assert_eq!(p.num_cores(), 2);
        assert_eq!(p.core(CoreId(1)).unwrap().tasks()[0].id(), TaskId(10));
        assert!(p.core(CoreId(2)).is_none());
    }

    #[test]
    fn utilization_sums_over_cores() {
        let p = Platform::builder().core(ts(0)).core(ts(1)).build().unwrap();
        assert!((p.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn platforms_default_to_the_crossbar() {
        let p = Platform::builder().core(ts(0)).build().unwrap();
        assert!(p.bus().is_contention_free());
    }

    #[test]
    fn regulated_bus_must_match_the_core_count() {
        let bus = BusModel::regulated(Time::from_ticks(100), vec![Time::from_ticks(20)]).unwrap();
        let err = Platform::builder()
            .core(ts(0))
            .core(ts(1))
            .bus(bus.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidBus { .. }), "{err}");
        let p = Platform::builder()
            .core(ts(0))
            .bus(bus.clone())
            .build()
            .unwrap();
        assert_eq!(p.bus(), &bus);
    }

    #[test]
    fn iter_yields_core_ids() {
        let p = Platform::builder().core(ts(0)).build().unwrap();
        let ids: Vec<_> = p.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![CoreId(0)]);
        assert_eq!(CoreId(0).to_string(), "p0");
    }
}
