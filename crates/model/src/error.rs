//! Error types for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::task::TaskId;

/// Errors produced when building or validating model entities.
///
/// # Example
///
/// ```
/// use pmcs_model::prelude::*;
///
/// let err = Task::builder(TaskId(0)).build().unwrap_err();
/// assert!(matches!(err, ModelError::MissingField { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A required builder field was not provided.
    MissingField {
        /// Entity being built (e.g. `"Task"`).
        entity: &'static str,
        /// Name of the missing field.
        field: &'static str,
    },
    /// A duration field was negative or otherwise out of range.
    InvalidDuration {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// Two tasks in the same task set share a priority level.
    DuplicatePriority {
        /// First task at this priority.
        first: TaskId,
        /// Second task at this priority.
        second: TaskId,
    },
    /// Two tasks in the same task set share an identifier.
    DuplicateTaskId(TaskId),
    /// A referenced task does not exist in the task set.
    UnknownTask(TaskId),
    /// The task set is empty where at least one task is required.
    EmptyTaskSet,
    /// A platform was configured with no cores.
    EmptyPlatform,
    /// A bus model was configured inconsistently (non-positive period,
    /// zero budget, budgets exceeding the period, or a budget count
    /// that disagrees with the platform's core count).
    InvalidBus {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingField { entity, field } => {
                write!(
                    f,
                    "missing required field `{field}` while building {entity}"
                )
            }
            ModelError::InvalidDuration { field, reason } => {
                write!(f, "invalid duration for `{field}`: {reason}")
            }
            ModelError::DuplicatePriority { first, second } => {
                write!(f, "tasks {first} and {second} share a priority level")
            }
            ModelError::DuplicateTaskId(id) => write!(f, "duplicate task id {id}"),
            ModelError::UnknownTask(id) => write!(f, "unknown task id {id}"),
            ModelError::EmptyTaskSet => write!(f, "task set must contain at least one task"),
            ModelError::EmptyPlatform => write!(f, "platform must have at least one core"),
            ModelError::InvalidBus { reason } => write!(f, "invalid bus model: {reason}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let err = ModelError::MissingField {
            entity: "Task",
            field: "exec",
        };
        let msg = err.to_string();
        assert!(msg.starts_with("missing required field"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }

    #[test]
    fn duplicate_priority_mentions_both_tasks() {
        let err = ModelError::DuplicatePriority {
            first: TaskId(1),
            second: TaskId(2),
        };
        let msg = err.to_string();
        assert!(msg.contains("τ1") && msg.contains("τ2"));
    }
}
