//! Test-runner support types: configuration, case outcome, and the
//! deterministic generator driving case generation.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of *passing* cases required for the test to succeed.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single generated case (mirrors proptest's type of the same
/// name, reduced to what the macros need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; the stored string is the
    /// rejected condition.
    Reject(&'static str),
    /// A `prop_assert*!` failed with the stored message.
    Fail(String),
}

/// Deterministic generator used for case generation (xoshiro256\*\*,
/// seeded from the test's name so every test draws an independent,
/// reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("beta");
        assert_ne!(TestRng::for_test("alpha").next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("below");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn config_accessors() {
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
