//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate re-implements the subset of the proptest
//! 1.x API used by the pmcs test suites:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`Strategy`](strategy::Strategy) for numeric ranges, tuples,
//!   [`any::<T>()`](arbitrary::any), `prop_map`, and
//!   [`prop::collection::vec`](collection::vec),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Semantics differ from the real crate in one deliberate way: failing
//! cases are **not shrunk** — the panic message instead reports the exact
//! generated inputs, which for the small strategies used here is enough to
//! reproduce. Case generation is deterministic per test name, so a failure
//! reproduces on every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirror of proptest's `prelude`: everything the `proptest!` suites use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the real prelude's `prop` module alias
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// Mirrors the real macro's surface for the forms used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    // Rendered before the body runs: the body may move the
                    // generated values. Cheap relative to the body for the
                    // small inputs these suites draw.
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&::std::format!("{:?}", &$arg));
                            s.push_str("\n  ");
                        )+
                        s
                    };
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {
                            __passed += 1;
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __config.cases.saturating_mul(64).max(1_024),
                                "prop_assume! rejected too many cases \
                                 ({__rejected} rejections for {__passed} passes)"
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case #{} failed: {}\n  inputs:\n  {}",
                                __passed + 1,
                                msg,
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current test case with a formatted message unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: `{:?}` != `{:?}`", ::std::format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}: both sides are `{:?}`", ::std::format!($($fmt)+), l
        );
    }};
}

/// Discards the current test case (it counts as neither pass nor failure)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
