//! The [`Strategy`] trait and its implementations for the range, tuple and
//! mapped strategies used by the pmcs test suites.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of type [`Self::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// draws a fresh value per case.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for each generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: core::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: core::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = below128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = below128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty, $unit:ident);*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + ($unit(rng)) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + ($unit(rng)) * (hi - lo)
            }
        }
    )*};
}

fn unit_f64(rng: &mut TestRng) -> f64 {
    rng.unit_f64()
}

fn unit_f32(rng: &mut TestRng) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

float_range_strategy!(f64, unit_f64; f32, unit_f32);

fn below128(rng: &mut TestRng, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128) * span) >> 64
    } else {
        rng.next_u64() as u128 % span
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = TestRng::for_test("int_ranges");
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = (-2i64..=2).generate(&mut rng);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
            let w = (0usize..4).generate(&mut rng);
            assert!(w < 4);
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn float_ranges_respected() {
        let mut rng = TestRng::for_test("float_ranges");
        for _ in 0..10_000 {
            let v = (0.5f64..=2.5).generate(&mut rng);
            assert!((0.5..=2.5).contains(&v));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::for_test("tuples");
        let strat = (1i32..=3, 0.0f64..1.0).prop_map(|(a, b)| (a * 10, b));
        let (a, b) = strat.generate(&mut rng);
        assert!((10..=30).contains(&a) && a % 10 == 0);
        assert!((0.0..1.0).contains(&b));
    }

    #[test]
    fn just_clones_value() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
