//! Collection strategies: `prop::collection::vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A vector length specification: a fixed `usize` or a range of lengths.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty vec size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length is
/// drawn from `size` (a `usize`, `Range<usize>` or `RangeInclusive<usize>`).
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::for_test("vec_lengths");
        let fixed = vec(0i32..=10, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
        let ranged = vec(0i32..=10, 2..=5usize);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..=10).contains(x)));
        }
    }
}
