//! `any::<T>()` support: the [`Arbitrary`] trait and its canonical
//! strategy, [`Any`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + core::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = TestRng::for_test("any_bool");
        let strat = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(strat.generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
