//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate provides the subset of the criterion 0.5
//! API the pmcs benches use — [`Criterion::benchmark_group`],
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — with a deliberately simple measurement model: each
//! benchmark runs a fixed, small number of timed iterations and prints the
//! mean wall-clock time per iteration. There is no statistical analysis, no
//! report output, and no `--bench` CLI beyond ignoring unknown arguments.
//!
//! The goal is that `cargo bench` and `cargo clippy --all-targets` compile
//! and run the bench targets, not that measurements are publication-grade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for one benchmark within a group, mirroring criterion's
/// `BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(full_name: &str, iterations: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!("bench {full_name:<40} {:>12.3} µs/iter", per_iter * 1e6);
}

/// The benchmark harness entry point, mirroring criterion's `Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.to_string(),
            sample_size,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs a single benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
        c.bench_function("free_standing", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
