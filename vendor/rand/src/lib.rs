//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the real `rand` cannot
//! be fetched. This crate re-implements the *subset* of the rand 0.8 API
//! the workspace uses — [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — on top of a
//! xoshiro256\*\* generator. Streams differ from the real crate, but every
//! consumer in this workspace only relies on *seeded determinism*, not on
//! specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Sampling a value of type `T` from the "standard" distribution
/// (uniform over `[0, 1)` for floats, uniform over all values for
/// integers and `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform draw from `[0, span)` via 128-bit multiply (unbiased enough for
/// simulation workloads; `span` never remotely approaches `2^64` here).
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128) * span) >> 64
    } else {
        // Not reachable with the integer widths used above, but keep a
        // correct fallback.
        rng.next_u64() as u128 % span
    }
}

/// The subset of rand 0.8's `Rng` extension trait used by this workspace.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the standard distribution (uniform `[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for rand's `StdRng`: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Deterministic per seed; streams do *not* match the real `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn float_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0f64..=4.0);
            assert!((2.0..=4.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
